//! # region-inference — *Region Inference for an Object-Oriented Language*
//!
//! A complete Rust implementation of Chin, Craciun, Qin & Rinard's PLDI 2004
//! region inference system for Core-Java: fully automatic derivation of
//! region-polymorphic class and method annotations that guarantee
//! region-based memory management **never creates a dangling reference**.
//!
//! ## The pipeline
//!
//! ```text
//! source ──parse──▶ AST ──normal typecheck──▶ kernel ──region inference──▶
//!     annotated program ──region check──▶ ✓ ──interpret──▶ value + space stats
//! ```
//!
//! - [`diag`]: the shared structured-diagnostics subsystem (spans, error
//!   codes, caret snippets, JSON);
//! - [`frontend`]: Core-Java lexer, parser, class table, normal type system;
//! - [`regions`]: region variables, outlives/equality constraints, solver,
//!   constraint abstractions and their fixed-point analysis;
//! - [`infer`]: the paper's contribution — class/method region inference,
//!   three region-subtyping modes, region-polymorphic recursion, `letreg`
//!   localization, override conflict resolution, downcast safety;
//! - [`check`]: the separate region type checker (Theorem 1 oracle);
//! - [`downcast`]: the Sec 5 backward flow analysis;
//! - [`runtime`]: a lexically scoped region allocator and interpreter with
//!   space accounting;
//! - [`vm`]: the `cj-vm` bytecode VM — lowering to register-resolved
//!   bytecode and execution over real bump-arena regions, observationally
//!   identical to the interpreter but an integer factor faster;
//! - [`rvm`]: the `cj-rvm` register machine — a second lowering from the
//!   stack bytecode to fused register instructions, dispatched through a
//!   dense handler table; the fastest tier, still bit-identical;
//! - [`benchmarks`]: the Fig 8 and Fig 9 program suites;
//! - [`driver`]: the demand-driven, incrementally recompiling
//!   [`driver::Workspace`] (multi-file inputs, per-SCC re-solving, the `Q`
//!   query API), the staged single-file [`Session`] facade, and the
//!   JSON-lines compile server behind `cjrc serve`.
//!
//! ## Quick start — the `Session` driver
//!
//! ```
//! use region_inference::prelude::*;
//!
//! let source = "
//!     class Pair { Object fst; Object snd;
//!       void swap() {
//!         Object t = this.fst; this.fst = this.snd; this.snd = t;
//!       }
//!     }";
//! let mut session = Session::new(source, SessionOptions::default());
//! let compilation = session.check()?;
//! // `swap` mutates both fields, so its precondition forces the two field
//! // regions to coincide — exactly Fig 2(a)'s `where r2 = r3`.
//! println!("{}", session.annotate()?);
//! // Staged artifacts are cached: a second subtype mode reuses the same
//! // parsed and typechecked kernel.
//! session.check_with(InferOptions::with_mode(SubtypeMode::Object))?;
//! assert_eq!(session.pass_counts().typecheck, 1);
//! # let _ = compilation;
//! # Ok::<(), region_inference::diag::Diagnostics>(())
//! ```
//!
//! Failures at every stage are structured [`diag::Diagnostics`] — spans,
//! stable error codes, caret-snippet rendering, JSON — never
//! `Box<dyn Error>` or strings.
#![forbid(unsafe_code)]

pub use cj_benchmarks as benchmarks;
pub use cj_check as check;
pub use cj_diag as diag;
pub use cj_downcast as downcast;
pub use cj_driver as driver;
pub use cj_frontend as frontend;
pub use cj_infer as infer;
pub use cj_liveness as liveness;
pub use cj_regions as regions;
pub use cj_runtime as runtime;
pub use cj_rvm as rvm;
pub use cj_vm as vm;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::{annotate, compile, compile_and_run};
    pub use cj_check::check;
    pub use cj_diag::{Diagnostic, Diagnostics, Emitter, IntoDiagnostic, IntoDiagnostics};
    pub use cj_driver::{
        compile_many, Compilation, CompileResult, PassCounts, Server, Session, SessionOptions,
        SourceInput, Workspace,
    };
    pub use cj_infer::{
        infer_source, DowncastPolicy, ExtentMode, InferOptions, InferStats, RProgram, SubtypeMode,
    };
    pub use cj_runtime::{run_main, run_main_big_stack, Engine, Outcome, RunConfig, Value};
    pub use cj_rvm::RvmProgram;
    pub use cj_vm::{lower_program, CompiledProgram};
}

use cj_diag::Diagnostics;
use cj_driver::{Session, SessionOptions};
use cj_infer::{InferOptions, RProgram};

/// Parses, normal-typechecks, region-infers and region-checks a Core-Java
/// program.
///
/// This is the one-shot convenience over [`Session`]; use a session
/// directly to reuse staged artifacts across inference options.
///
/// # Errors
///
/// Structured diagnostics from any stage: front-end errors, inference
/// policy failures, or (indicating a bug — Theorem 1) checker violations.
pub fn compile(src: &str, opts: InferOptions) -> Result<RProgram, Diagnostics> {
    let mut session = Session::new(src, SessionOptions::with_infer(opts));
    let compilation = session.check()?;
    // Dropping the session releases its cached Arc, making the unwrap
    // clone-free.
    drop(session);
    match std::sync::Arc::try_unwrap(compilation) {
        Ok(compilation) => Ok(compilation.program),
        Err(arc) => Ok(arc.program.clone()),
    }
}

/// Renders the annotated program in the paper's notation.
pub fn annotate(p: &RProgram) -> String {
    cj_infer::pretty::program_to_string(p)
}

/// Compiles and immediately executes `main` with integer arguments.
///
/// # Errors
///
/// Compilation diagnostics or runtime faults, all structured.
///
/// # Examples
///
/// ```
/// use region_inference::{compile_and_run, infer::InferOptions};
///
/// let out = compile_and_run(
///     "class M { static int main(int n) { n * 2 } }",
///     InferOptions::default(),
///     &[21],
/// )?;
/// assert_eq!(out.value, region_inference::runtime::Value::Int(42));
/// # Ok::<(), region_inference::diag::Diagnostics>(())
/// ```
pub fn compile_and_run(
    src: &str,
    opts: InferOptions,
    args: &[i64],
) -> Result<cj_runtime::Outcome, Diagnostics> {
    Session::new(src, SessionOptions::with_infer(opts)).run(args)
}
