//! `cjrc` — the Core-Java region compiler driver.
//!
//! ```text
//! cjrc infer  <file> [--mode M] [--downcast D] [--extents X] [--cache-dir DIR] [--stats] [--json]
//! cjrc check  <file> [--policy <file.cjpolicy>]
//!                    [--mode M] [--downcast D] [--extents X] [--cache-dir DIR] [--json]
//! cjrc query  <file> <inv.C|pre.m|pre.C.m> [--entails ATOM]
//!                    [--mode M] [--downcast D] [--extents X] [--cache-dir DIR] [--json]
//! cjrc run    <file> [--engine vm|rvm|interp] [--fuel N] [--max-depth N]
//!                    [--mode M] [--downcast D] [--extents X] [--cache-dir DIR] [--json] [args…]
//! cjrc flows  <file> [--json]                                       downcast-set report
//! cjrc serve         [--mode M] [--downcast D] [--extents X] [--cache-dir DIR]
//!                                                                   JSON-lines compile server
//! cjrc daemon        [--addr H:P | --socket PATH] [--workers N]
//!                    [--solve-threads N] [--cache-dir DIR]
//!                    [--max-clients N] [--idle-timeout SECS]
//!                    [--metrics-addr H:P]
//!                    [--mode M] [--downcast D] [--extents X]        multi-client compile daemon
//! cjrc trace-summary <trace.json>                                   self-time table of a trace
//! ```
//!
//! `infer`/`check`/`run`/`serve`/`daemon` accept `--trace-out FILE`:
//! structured spans from every pipeline phase (parse, typecheck, per-SCC
//! solve, extent rewriting, policy check, lowering, VM execution) and the
//! daemon internals (reactor dispatch, queue wait, worker handling,
//! persist flush) are recorded and written as Chrome trace-event JSON —
//! load the file in Perfetto / `chrome://tracing`, or render a self-time
//! table with `cjrc trace-summary`. Tracing off costs one atomic load per
//! span. `serve`/`daemon` also accept `--metrics-addr H:P`, an HTTP
//! scrape endpoint (`GET /metrics` text exposition, `GET /metrics.json`)
//! over the same registry the in-protocol `metrics` request reads.
//!
//! `M` ∈ {no-sub, object-sub, field-sub} (default field-sub; the short
//! aliases none/object/field are accepted); `D` ∈ {reject, equate-first,
//! padding} (default equate-first; alias equate); `X` ∈ {paper, liveness}
//! (default paper) selects `letreg` extent placement — `liveness` runs the
//! cj-liveness flow-sensitive tightening pass after inference, shrinking
//! region lifetimes without changing observable behaviour. `--cache-dir`
//! persists solved constraint-abstraction SCCs (via `cj-persist`) so a
//! later invocation — or a restarted server/daemon — starts warm,
//! reporting `sccs_disk_hits` while producing output bit-identical to a
//! cold build.
//!
//! `run` executes on the `cj-vm` bytecode VM by default; `--engine rvm`
//! selects the register-machine tier (`cj-rvm` lowers the stack bytecode
//! to direct-threaded register code) and `--engine interp` the
//! tree-walking interpreter. Program output, space statistics and
//! runtime errors are identical across all three engines (enforced by
//! the differential test suites). `--fuel` and `--max-depth` bound
//! execution steps and call depth uniformly on every engine.
//!
//! Errors are rendered as caret-style source snippets on stderr, or — with
//! `--json` — as a JSON array of structured diagnostics (severity, code,
//! message, span, labels, notes) on stdout. `check` additionally surfaces
//! the Sec 5 *bound-to-fail* downcast warnings in both modes.
//!
//! `check --policy` additionally enforces user-written region-effect
//! rules (`cj-policy`): `no-escape C`, `confine C to D` and
//! `separate S from [D.]m`, reported as first-class `E071x` diagnostics
//! whose secondary label points at the rule declaration; any violation
//! exits non-zero. `query` answers one-shot questions against the closed
//! constraint environment `Q` — print an abstraction, or decide
//! `--entails "r2>=r1"` — without a serve round-trip.
//!
//! `serve` reads one JSON request per line on stdin and writes one JSON
//! response per line on stdout (`open`/`edit`/`close`/`check`/`annotate`/
//! `run`/`query`/`stats`/`shutdown`); every response carries the workspace
//! `revision` and the `passes_executed` delta, so clients can observe
//! incremental recompilation. See the README protocol reference.
//!
//! `daemon` serves the same protocol to many concurrent socket clients
//! (default `127.0.0.1:4871`), one workspace per connection, all feeding
//! one shared content-addressed SCC solve memo; a client sends
//! `{"cmd":"shutdown","scope":"daemon"}` to stop the daemon itself.

use cj_diag::{codes, Diagnostic, Diagnostics, IntoDiagnostic, Span};
use cj_driver::{Daemon, DaemonConfig, Frontend, Server, Session, SessionOptions, Workspace};
use cj_infer::{DowncastPolicy, ExtentMode, InferOptions, SubtypeMode};
use cj_runtime::Engine;
use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("cjrc: {}", e.message);
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    if cli.trace_out.is_some() {
        cj_trace::install();
    }
    let outcome = execute(&cli);
    if let Some(path) = &cli.trace_out {
        // Every recording thread (daemon workers, reactor, flusher) has
        // been joined by now; their buffers flushed to the sink on exit.
        let events = cj_trace::uninstall();
        match std::fs::write(path, cj_trace::chrome_trace_json(&events)) {
            Ok(()) => eprintln!("cjrc: wrote {} trace event(s) to {path}", events.len()),
            Err(e) => eprintln!("cjrc: warning: could not write trace file `{path}`: {e}"),
        }
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            let Failure { session, diags } = *failure;
            // Workspace-driven paths (`query`, `check --policy`) render
            // their own diagnostics and fail with an empty batch.
            if cli.json {
                if !diags.is_empty() {
                    println!("{}", session.emitter().render_json_all(&diags));
                }
            } else {
                eprint!("{}", session.emitter().render_all(&diags));
            }
            ExitCode::FAILURE
        }
    }
}

// ---- argument parsing ------------------------------------------------------

/// One parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    command: Command,
    file: String,
    opts: InferOptions,
    stats: bool,
    json: bool,
    run_args: Vec<i64>,
    /// `daemon`: connection front end (default event).
    frontend: Option<Frontend>,
    /// `daemon`: TCP listen address (`host:port`).
    addr: Option<String>,
    /// `daemon`: Unix-socket path (conflicts with `addr`).
    socket: Option<String>,
    /// `daemon`: connection worker threads (default 4).
    workers: Option<usize>,
    /// `daemon`: per-compilation solver threads (default 1).
    solve_threads: Option<usize>,
    /// On-disk compilation cache directory (every command but `flows`).
    cache_dir: Option<String>,
    /// `daemon`: backpressure bound on in-flight connections (0 = off).
    max_clients: Option<usize>,
    /// `daemon`: per-connection idle eviction in seconds (0 = off).
    idle_timeout: Option<u64>,
    /// `run`: execution engine (default vm).
    engine: Option<Engine>,
    /// `run`: execution step budget.
    fuel: Option<u64>,
    /// `run`: call-depth budget.
    max_depth: Option<u32>,
    /// `check`: path of a `.cjpolicy` rule file to enforce.
    policy: Option<String>,
    /// `query`: the abstraction name (`inv.C`, `pre.m`, or `pre.C.m`).
    query_name: Option<String>,
    /// `query`: positional atom to test against the abstraction.
    entails: Option<String>,
    /// Chrome trace-event JSON output path (tracing stays off without it).
    trace_out: Option<String>,
    /// `serve`/`daemon`: TCP address of the HTTP metrics scrape endpoint.
    metrics_addr: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Infer,
    Check,
    Run,
    Flows,
    Query,
    Serve,
    Daemon,
    TraceSummary,
}

/// Default TCP listen address of `cjrc daemon`.
const DEFAULT_DAEMON_ADDR: &str = "127.0.0.1:4871";

/// A command-line usage error.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CliError {
    message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }
}

impl IntoDiagnostic for CliError {
    fn into_diagnostic(self) -> Diagnostic {
        Diagnostic::error(self.message, Span::DUMMY).with_code(codes::CLI)
    }
}

fn usage() -> String {
    format!(
        "usage: cjrc <infer|check|run|flows> <file.cj> [--mode {m}] \
         [--downcast {d}] [--extents {x}] [--cache-dir DIR] [--stats] [--json] [run args…]\n       \
         cjrc check <file.cj> --policy <file.cjpolicy> [--json]\n       \
         cjrc run <file.cj> [--engine {e}] [--fuel N] [--max-depth N] [args…]\n       \
         cjrc query <file.cj> <inv.C|pre.m|pre.C.m> [--entails ATOM] [--json]\n       \
         cjrc serve [--mode {m}] [--downcast {d}] [--extents {x}] [--cache-dir DIR]\n       \
         cjrc daemon [--frontend event|threads] [--addr host:port | --socket path] \
         [--workers N] [--solve-threads N] [--cache-dir DIR] [--max-clients N] \
         [--idle-timeout SECS] [--metrics-addr host:port] \
         [--mode {m}] [--downcast {d}] [--extents {x}] [--json]\n       \
         cjrc trace-summary <trace.json>      (any command above accepts --trace-out FILE)",
        m = SubtypeMode::NAMES[..3].join("|"),
        d = DowncastPolicy::NAMES[..3].join("|"),
        x = ExtentMode::NAMES.join("|"),
        e = Engine::NAMES.join("|"),
    )
}

fn parse_cli(args: Vec<String>) -> Result<Cli, CliError> {
    let mut args = args.into_iter();
    let command = match args.next().as_deref() {
        Some("infer") => Command::Infer,
        Some("check") => Command::Check,
        Some("run") => Command::Run,
        Some("flows") => Command::Flows,
        Some("query") => Command::Query,
        Some("serve") => Command::Serve,
        Some("daemon") => Command::Daemon,
        Some("trace-summary") => Command::TraceSummary,
        Some(other) => return Err(CliError::new(format!("unknown command `{other}`"))),
        None => return Err(CliError::new("missing command")),
    };
    let mut file = None;
    let mut opts = InferOptions::default();
    let mut stats = false;
    let mut json = false;
    let mut run_args = Vec::new();
    let mut frontend = None;
    let mut addr = None;
    let mut socket = None;
    let mut workers = None;
    let mut solve_threads = None;
    let mut cache_dir = None;
    let mut max_clients = None;
    let mut idle_timeout = None;
    let mut engine = None;
    let mut fuel = None;
    let mut max_depth = None;
    let mut policy = None;
    let mut query_name = None;
    let mut entails = None;
    let mut trace_out = None;
    let mut metrics_addr = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--mode needs a value"))?;
                opts.mode = value.parse().map_err(|e| CliError::new(format!("{e}")))?;
            }
            "--downcast" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--downcast needs a value"))?;
                opts.downcast = value.parse().map_err(|e| CliError::new(format!("{e}")))?;
            }
            "--extents" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--extents needs a value"))?;
                opts.extent = value.parse().map_err(|e| CliError::new(format!("{e}")))?;
            }
            "--frontend" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--frontend needs a value (event|threads)"))?;
                frontend = Some(value.parse::<Frontend>().map_err(CliError::new)?);
            }
            "--addr" => {
                addr = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--addr needs a host:port value"))?,
                );
            }
            "--socket" => {
                socket = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--socket needs a path value"))?,
                );
            }
            "--workers" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--workers needs a value"))?;
                workers = Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                    || {
                        CliError::new(format!(
                            "--workers needs a positive integer, found `{value}`"
                        ))
                    },
                )?);
            }
            "--solve-threads" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--solve-threads needs a value"))?;
                solve_threads = Some(value.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(
                    || {
                        CliError::new(format!(
                            "--solve-threads needs a positive integer, found `{value}`"
                        ))
                    },
                )?);
            }
            "--cache-dir" => {
                cache_dir = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--cache-dir needs a directory value"))?,
                );
            }
            "--max-clients" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--max-clients needs a value"))?;
                max_clients = Some(value.parse::<usize>().map_err(|_| {
                    CliError::new(format!(
                        "--max-clients needs a whole number (0 = unbounded), found `{value}`"
                    ))
                })?);
            }
            "--idle-timeout" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--idle-timeout needs a value in seconds"))?;
                idle_timeout = Some(value.parse::<u64>().map_err(|_| {
                    CliError::new(format!(
                        "--idle-timeout needs a whole number of seconds (0 disables), \
                         found `{value}`"
                    ))
                })?);
            }
            "--engine" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--engine needs a value"))?;
                engine = Some(value.parse::<Engine>().map_err(CliError::new)?);
            }
            "--fuel" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--fuel needs a value"))?;
                fuel = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            CliError::new(format!(
                                "--fuel needs a positive integer, found `{value}`"
                            ))
                        })?,
                );
            }
            "--max-depth" => {
                let value = args
                    .next()
                    .ok_or_else(|| CliError::new("--max-depth needs a value"))?;
                max_depth = Some(value.parse::<u32>().ok().filter(|&n| n >= 1).ok_or_else(
                    || {
                        CliError::new(format!(
                            "--max-depth needs a positive integer, found `{value}`"
                        ))
                    },
                )?);
            }
            "--policy" => {
                policy = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--policy needs a rule-file value"))?,
                );
            }
            "--entails" => {
                entails = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--entails needs an atom value"))?,
                );
            }
            "--trace-out" => {
                trace_out = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--trace-out needs a file value"))?,
                );
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    args.next()
                        .ok_or_else(|| CliError::new("--metrics-addr needs a host:port value"))?,
                );
            }
            "--stats" => stats = true,
            "--json" => json = true,
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown option `{flag}`")));
            }
            other if file.is_none() => file = Some(other.to_string()),
            other if command == Command::Query && query_name.is_none() => {
                query_name = Some(other.to_string());
            }
            other => {
                let value = other.parse::<i64>().map_err(|_| {
                    CliError::new(format!("expected integer argument, found `{other}`"))
                })?;
                run_args.push(value);
            }
        }
    }
    if !matches!(command, Command::Daemon)
        && (frontend.is_some()
            || addr.is_some()
            || socket.is_some()
            || workers.is_some()
            || solve_threads.is_some()
            || max_clients.is_some()
            || idle_timeout.is_some())
    {
        return Err(CliError::new(
            "--frontend/--addr/--socket/--workers/--solve-threads/--max-clients/\
             --idle-timeout apply to `daemon` only",
        ));
    }
    if matches!(command, Command::Flows) && cache_dir.is_some() {
        return Err(CliError::new(
            "--cache-dir does not apply to `flows` (no region inference to cache)",
        ));
    }
    if !matches!(command, Command::Serve | Command::Daemon) && metrics_addr.is_some() {
        return Err(CliError::new(
            "--metrics-addr applies to `serve` and `daemon` only",
        ));
    }
    if matches!(
        command,
        Command::Flows | Command::Query | Command::TraceSummary
    ) && trace_out.is_some()
    {
        return Err(CliError::new(
            "--trace-out applies to `infer`, `check`, `run`, `serve` and `daemon`",
        ));
    }
    if matches!(command, Command::TraceSummary) {
        if stats || json || !run_args.is_empty() || cache_dir.is_some() {
            return Err(CliError::new(
                "`trace-summary` accepts no options, just a trace file",
            ));
        }
        if file.is_none() {
            return Err(CliError::new(
                "`trace-summary` needs a trace file (written by --trace-out)",
            ));
        }
    }
    if !matches!(command, Command::Run)
        && (engine.is_some() || fuel.is_some() || max_depth.is_some())
    {
        return Err(CliError::new(
            "--engine/--fuel/--max-depth apply to `run` only",
        ));
    }
    if !matches!(command, Command::Check) && policy.is_some() {
        return Err(CliError::new("--policy applies to `check` only"));
    }
    if !matches!(command, Command::Query) && entails.is_some() {
        return Err(CliError::new("--entails applies to `query` only"));
    }
    if matches!(command, Command::Query) {
        if query_name.is_none() {
            return Err(CliError::new(
                "`query` needs an abstraction name (`inv.C`, `pre.m`, or `pre.C.m`)",
            ));
        }
        if !run_args.is_empty() {
            return Err(CliError::new("`query` takes no run arguments"));
        }
    }
    let file = match command {
        Command::Serve | Command::Daemon => {
            let name = if command == Command::Serve {
                "serve"
            } else {
                "daemon"
            };
            if let Some(extra) = file {
                return Err(CliError::new(format!(
                    "`{name}` takes no input file (sources arrive over the \
                     protocol), found `{extra}`"
                )));
            }
            // `daemon --json` switches the exit summary to one JSON
            // line; everything else stays rejected, and `serve` (whose
            // stdout *is* the protocol) accepts none of them.
            let json_ok = command == Command::Daemon;
            if stats || (json && !json_ok) || !run_args.is_empty() {
                return Err(CliError::new(format!(
                    "`{name}` accepts no --stats/--json/run arguments"
                )));
            }
            if addr.is_some() && socket.is_some() {
                return Err(CliError::new("--addr and --socket are mutually exclusive"));
            }
            String::new()
        }
        _ => file.ok_or_else(|| CliError::new("missing input file"))?,
    };
    Ok(Cli {
        command,
        file,
        opts,
        stats,
        json,
        run_args,
        frontend,
        addr,
        socket,
        workers,
        solve_threads,
        cache_dir,
        max_clients,
        idle_timeout,
        engine,
        fuel,
        max_depth,
        policy,
        query_name,
        entails,
        trace_out,
        metrics_addr,
    })
}

// ---- execution -------------------------------------------------------------

/// A failed invocation: the diagnostics plus the session whose source they
/// render against.
struct Failure {
    session: Session,
    diags: Diagnostics,
}

/// Opens the `--cache-dir` cache, if requested. Failing to *open* it is a
/// hard error (the flag would otherwise silently do nothing); a corrupt
/// cache under an openable directory is merely a cold start.
fn open_cache(cli: &Cli) -> Result<Option<std::sync::Arc<cj_persist::SccDiskCache>>, Diagnostics> {
    match &cli.cache_dir {
        None => Ok(None),
        Some(dir) => cj_persist::SccDiskCache::open(dir)
            .map(|c| {
                if c.is_read_only() {
                    eprintln!(
                        "cjrc: warning: cache directory `{dir}` is locked by another \
                         process; continuing read-only (nothing new will be persisted)"
                    );
                }
                Some(std::sync::Arc::new(c))
            })
            .map_err(|e| {
                Diagnostics::from_one(
                    Diagnostic::error(
                        format!("cannot open cache directory `{dir}`: {e}"),
                        Span::DUMMY,
                    )
                    .with_code(codes::IO),
                )
            }),
    }
}

fn execute(cli: &Cli) -> Result<(), Box<Failure>> {
    let mut opts = SessionOptions::with_infer(cli.opts);
    if let Some(engine) = cli.engine {
        opts.run.engine = engine;
    }
    if let Some(fuel) = cli.fuel {
        opts.run.step_limit = fuel;
    }
    if let Some(depth) = cli.max_depth {
        opts.run.max_depth = depth;
    }
    if cli.command == Command::Serve {
        return serve(opts, cli).map_err(|diags| {
            Box::new(Failure {
                session: Session::new("", SessionOptions::default()).with_name("serve".to_string()),
                diags,
            })
        });
    }
    if cli.command == Command::Daemon {
        return daemon(opts, cli).map_err(|e| {
            Box::new(Failure {
                session: Session::new("", SessionOptions::default()).with_name("cjrcd".to_string()),
                diags: Diagnostics::from_one(
                    Diagnostic::error(format!("daemon failed: {e}"), Span::DUMMY)
                        .with_code(codes::IO),
                ),
            })
        });
    }
    if cli.command == Command::TraceSummary {
        return trace_summary_cmd(&cli.file).map_err(|message| {
            Box::new(Failure {
                session: Session::new("", SessionOptions::default()).with_name(cli.file.clone()),
                diags: Diagnostics::from_one(
                    Diagnostic::error(message, Span::DUMMY).with_code(codes::IO),
                ),
            })
        });
    }
    if cli.command == Command::Query || (cli.command == Command::Check && cli.policy.is_some()) {
        // Workspace-driven paths: they render their own diagnostics (the
        // workspace knows both the program and the policy file), so a
        // failure carries an empty batch back to `main`.
        let outcome = if cli.command == Command::Query {
            query_cmd(opts, cli)
        } else {
            policy_cmd(opts, cli)
        };
        return outcome.map_err(|()| {
            Box::new(Failure {
                session: Session::new("", SessionOptions::default()).with_name(cli.file.clone()),
                diags: Diagnostics::new(),
            })
        });
    }
    let mut session = match Session::from_file(&cli.file, opts) {
        Ok(s) => s,
        Err(diags) => {
            return Err(Box::new(Failure {
                session: Session::new("", SessionOptions::default()).with_name(cli.file.clone()),
                diags,
            }))
        }
    };
    let cache = match open_cache(cli) {
        Ok(cache) => cache,
        Err(diags) => return Err(Box::new(Failure { session, diags })),
    };
    if let Some(cache) = cache {
        session.attach_disk_cache(cache);
    }
    let outcome = dispatch(cli, &mut session);
    // Persist what this invocation solved, whatever the outcome — an
    // O(new entries) journal append (the journal auto-compacts past its
    // byte budget, so hit-only runs cost nothing). A write failure must
    // not eclipse the compile result, so it is a warning.
    if cli.cache_dir.is_some() {
        if let Err(e) = session.flush_disk_cache() {
            eprintln!("cjrc: warning: could not write compilation cache: {e}");
        }
    }
    match outcome {
        Ok(()) => Ok(()),
        Err(diags) => Err(Box::new(Failure { session, diags })),
    }
}

fn dispatch(cli: &Cli, session: &mut Session) -> Result<(), Diagnostics> {
    match cli.command {
        Command::Infer => {
            let compilation = session.infer()?;
            let annotated = session.annotate()?;
            let stats = &compilation.stats;
            if cli.json {
                println!(
                    "{{\"annotated\":{},\"extents\":\"{}\",\"stats\":{}}}",
                    cj_diag::json_string(&annotated),
                    cli.opts.extent,
                    stats_json(stats)
                );
            } else {
                print!("{annotated}");
            }
            if cli.stats && !cli.json {
                eprintln!(
                    "regions: {}  letregs: {}  fixpoint iterations: {}  repairs: {}",
                    stats.regions_created,
                    stats.localized_regions,
                    stats.fixpoint_iterations,
                    stats.override_repairs
                );
            }
            Ok(())
        }
        Command::Check => {
            session.check()?;
            // Sec 5 bound-to-fail downcast warnings surface here too, not
            // only under `flows`.
            let kernel = session.typecheck()?;
            let warnings = session.downcast_analysis()?.diagnostics(&kernel);
            if cli.json {
                println!(
                    "{{\"status\":\"well-region-typed\",\"file\":{},\"mode\":\"{}\",\
                     \"extents\":\"{}\",\"warnings\":{}}}",
                    cj_diag::json_string(session.name()),
                    cli.opts.mode,
                    cli.opts.extent,
                    session.emitter().render_json_all(&warnings)
                );
            } else {
                eprint!("{}", session.emitter().render_all(&warnings));
                if cli.opts.extent == ExtentMode::Paper {
                    println!("{}: well-region-typed ({})", session.name(), cli.opts.mode);
                } else {
                    println!(
                        "{}: well-region-typed ({}; {} extents)",
                        session.name(),
                        cli.opts.mode,
                        cli.opts.extent
                    );
                }
            }
            Ok(())
        }
        Command::Serve | Command::Daemon | Command::Query | Command::TraceSummary => {
            unreachable!("serve/daemon/query/trace-summary are dispatched before file loading")
        }
        Command::Run => {
            let engine = session.options().run.engine;
            let out = session.run(&cli.run_args)?;
            if cli.json {
                let prints: Vec<String> =
                    out.prints.iter().map(|p| cj_diag::json_string(p)).collect();
                println!(
                    "{{\"result\":{},\"prints\":[{}],\"engine\":\"{engine}\",\
                     \"extents\":\"{}\",\"steps\":{},\
                     \"space\":{{\"peak_live\":{},\
                     \"total_allocated\":{},\"ratio\":{:.4},\"regions\":{}}}}}",
                    cj_diag::json_string(&out.value.to_string()),
                    prints.join(","),
                    cli.opts.extent,
                    out.steps,
                    out.space.peak_live,
                    out.space.total_allocated,
                    out.space.space_ratio(),
                    out.space.regions_created
                );
            } else {
                for line in &out.prints {
                    println!("{line}");
                }
                println!("result: {}", out.value);
                println!(
                    "space: peak {} / total {} bytes (ratio {:.4}), {} regions",
                    out.space.peak_live,
                    out.space.total_allocated,
                    out.space.space_ratio(),
                    out.space.regions_created
                );
            }
            Ok(())
        }
        Command::Flows => {
            let kp = session.typecheck()?;
            let analysis = session.downcast_analysis()?;
            let warnings = analysis.diagnostics(&kp);
            if cli.json {
                let sites: Vec<String> = analysis
                    .sites
                    .iter()
                    .map(|site| {
                        let classes: Vec<String> = analysis
                            .site_sets
                            .get(&site.id)
                            .map(|set| {
                                set.iter()
                                    .map(|&c| cj_diag::json_string(kp.table.name(c).as_str()))
                                    .collect()
                            })
                            .unwrap_or_default();
                        format!(
                            "{{\"class\":{},\"method\":{},\"downcast_to\":[{}],\
                             \"bound_to_fail\":{}}}",
                            cj_diag::json_string(kp.table.name(site.class).as_str()),
                            cj_diag::json_string(&kp.method_name(site.method)),
                            classes.join(","),
                            analysis.doomed_sites.contains(&site.id)
                        )
                    })
                    .collect();
                println!(
                    "{{\"downcasts\":{},\"sites\":[{}],\"warnings\":{}}}",
                    analysis.downcast_count,
                    sites.join(","),
                    session.emitter().render_json_all(&warnings)
                );
            } else {
                println!("{} downcast(s)", analysis.downcast_count);
                for site in &analysis.sites {
                    if let Some(set) = analysis.site_sets.get(&site.id) {
                        let classes: Vec<&str> =
                            set.iter().map(|&c| kp.table.name(c).as_str()).collect();
                        let doomed = if analysis.doomed_sites.contains(&site.id) {
                            " [bound to fail]"
                        } else {
                            ""
                        };
                        println!(
                            "new {} in {} -> {{{}}}{doomed}",
                            kp.table.name(site.class),
                            kp.method_name(site.method),
                            classes.join(", ")
                        );
                    }
                }
                eprint!("{}", session.emitter().render_all(&warnings));
            }
            Ok(())
        }
    }
}

// ---- workspace-driven commands (`query`, `check --policy`) ----------------

/// Renders diagnostics for a workspace-driven command: caret snippets on
/// stderr, or a JSON array on stdout with `--json`.
fn ws_report(ws: &Workspace, json: bool, diags: &Diagnostics) {
    if json {
        println!("{}", ws.render_json(diags));
    } else {
        eprint!("{}", ws.render(diags));
    }
}

/// Reads a file into a string, reporting failures through the workspace
/// renderer.
fn ws_read(ws: &Workspace, json: bool, path: &str) -> Result<String, ()> {
    std::fs::read_to_string(path).map_err(|e| {
        let d = Diagnostics::from_one(
            Diagnostic::error(format!("cannot read `{path}`: {e}"), Span::DUMMY)
                .with_code(codes::IO),
        );
        ws_report(ws, json, &d);
    })
}

/// A workspace holding the program file named on the command line (under
/// its real name, so diagnostics point at it), with the `--cache-dir`
/// cache attached when requested.
fn ws_open(opts: SessionOptions, cli: &Cli) -> Result<Workspace, ()> {
    let mut ws = Workspace::new(opts);
    match open_cache(cli) {
        Ok(Some(cache)) => {
            ws.attach_disk_cache(cache);
        }
        Ok(None) => {}
        Err(d) => {
            ws_report(&ws, cli.json, &d);
            return Err(());
        }
    }
    let text = ws_read(&ws, cli.json, &cli.file)?;
    if let Err(d) = ws.set_source(&cli.file, text) {
        ws_report(&ws, cli.json, &d);
        return Err(());
    }
    Ok(ws)
}

/// Persists newly solved SCCs when `--cache-dir` was given; failures are
/// warnings, never the command's outcome.
fn ws_flush(ws: &Workspace, cli: &Cli) {
    if cli.cache_dir.is_some() {
        if let Err(e) = ws.flush_disk_cache() {
            eprintln!("cjrc: warning: could not write compilation cache: {e}");
        }
    }
}

/// `cjrc query <file> <name> [--entails ATOM]`: one-shot access to the
/// closed constraint environment `Q`.
fn query_cmd(opts: SessionOptions, cli: &Cli) -> Result<(), ()> {
    let infer_opts = opts.infer;
    let mut ws = ws_open(opts, cli)?;
    let name = cli.query_name.as_deref().expect("validated by parse_cli");
    let unknown = |ws: &Workspace| {
        let d = Diagnostics::from_one(
            Diagnostic::error(format!("unknown abstraction `{name}`"), Span::DUMMY)
                .with_code(codes::CLI),
        );
        ws_report(ws, cli.json, &d);
    };
    let result = if let Some(atom) = &cli.entails {
        match ws.entails_with(infer_opts, name, atom) {
            Ok(Some(holds)) => {
                if cli.json {
                    println!(
                        "{{\"name\":{},\"atom\":{},\"entails\":{holds}}}",
                        cj_diag::json_string(name),
                        cj_diag::json_string(atom)
                    );
                } else {
                    println!("{name} entails {atom}: {holds}");
                }
                Ok(())
            }
            Ok(None) => {
                unknown(&ws);
                Err(())
            }
            Err(d) => {
                ws_report(&ws, cli.json, &d);
                Err(())
            }
        }
    } else {
        match ws.q_with(infer_opts, name) {
            Ok(Some(abs)) => {
                if cli.json {
                    println!(
                        "{{\"name\":{},\"params\":{},\"abs\":{}}}",
                        cj_diag::json_string(name),
                        abs.params.len(),
                        cj_diag::json_string(&abs.to_string())
                    );
                } else {
                    println!("{abs}");
                }
                Ok(())
            }
            Ok(None) => {
                unknown(&ws);
                Err(())
            }
            Err(d) => {
                ws_report(&ws, cli.json, &d);
                Err(())
            }
        }
    };
    ws_flush(&ws, cli);
    result
}

/// `cjrc check <file> --policy <rules>`: compile, region-check, then
/// enforce the user's region-effect rules; violations exit non-zero.
fn policy_cmd(opts: SessionOptions, cli: &Cli) -> Result<(), ()> {
    let infer_opts = opts.infer;
    let mut ws = ws_open(opts, cli)?;
    let policy_path = cli.policy.as_deref().expect("validated by parse_cli");
    let rules_text = ws_read(&ws, cli.json, policy_path)?;
    if let Err(d) = ws.set_policy(policy_path, rules_text) {
        ws_report(&ws, cli.json, &d);
        return Err(());
    }
    if let Err(d) = ws.check_with(infer_opts) {
        ws_report(&ws, cli.json, &d);
        ws_flush(&ws, cli);
        return Err(());
    }
    let outcome = match ws.check_policy_with(infer_opts) {
        Ok(outcome) => outcome,
        Err(d) => {
            ws_report(&ws, cli.json, &d);
            ws_flush(&ws, cli);
            return Err(());
        }
    };
    let rules = ws.policy().map_or(0, |set| set.rules.len());
    let status = if outcome.ok() {
        "policy-ok"
    } else {
        "policy-violations"
    };
    if cli.json {
        println!(
            "{{\"status\":\"{status}\",\"file\":{},\"policy\":{},\"rules\":{rules},\
             \"violations\":{},\"rule_errors\":{},\"diagnostics\":{}}}",
            cj_diag::json_string(&cli.file),
            cj_diag::json_string(policy_path),
            outcome.violations,
            outcome.rule_errors,
            ws.render_json(&outcome.diagnostics)
        );
    } else {
        eprint!("{}", ws.render(&outcome.diagnostics));
        if outcome.ok() {
            println!("{}: policy-ok ({rules} rule(s))", cli.file);
        } else {
            println!(
                "{}: {} policy violation(s), {} rule error(s)",
                cli.file, outcome.violations, outcome.rule_errors
            );
        }
    }
    ws_flush(&ws, cli);
    if outcome.ok() {
        Ok(())
    } else {
        Err(())
    }
}

/// The `cjrc daemon` front end: bind the requested socket, announce the
/// address on stdout (so scripts can connect), and serve until a
/// daemon-scope shutdown.
fn daemon(opts: SessionOptions, cli: &Cli) -> std::io::Result<()> {
    let defaults = DaemonConfig::default();
    let config = DaemonConfig {
        opts,
        frontend: cli.frontend.unwrap_or_default(),
        workers: cli.workers.unwrap_or(4),
        solve_threads: cli.solve_threads.unwrap_or(1),
        cache_dir: cli.cache_dir.as_ref().map(std::path::PathBuf::from),
        max_clients: cli.max_clients.unwrap_or(0),
        idle_timeout: cli
            .idle_timeout
            .map(std::time::Duration::from_secs)
            .unwrap_or(defaults.idle_timeout),
        metrics_addr: cli.metrics_addr.clone(),
        ..defaults
    };
    let daemon = match &cli.socket {
        #[cfg(unix)]
        Some(path) => Daemon::bind_unix(std::path::Path::new(path), config)?,
        #[cfg(not(unix))]
        Some(_) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "--socket requires a Unix platform; use --addr",
            ))
        }
        None => {
            let addr = cli.addr.as_deref().unwrap_or(DEFAULT_DAEMON_ADDR);
            Daemon::bind_tcp(addr, config)?
        }
    };
    if let Some(dir) = &cli.cache_dir {
        eprintln!(
            "cjrcd: warm-loaded {} cached SCC(s) from {dir}",
            daemon.cache_entries_loaded()
        );
        if daemon.cache_read_only() {
            eprintln!(
                "cjrcd: warning: cache directory `{dir}` is locked by another \
                 process; running read-only (nothing new will be persisted)"
            );
        }
    }
    println!("cjrcd listening on {}", daemon.describe_addr());
    std::io::stdout().flush()?;
    if let Some(addr) = daemon.metrics_local_addr() {
        eprintln!("cjrcd: metrics endpoint on http://{addr}/metrics");
    }
    let frontend = cli.frontend.unwrap_or_default();
    let summary = daemon.run()?;
    if cli.json {
        // One machine-readable exit summary on stdout (the listening
        // banner above is the only other stdout line) — the same
        // serializer as the `stats` response's `"daemon"` object.
        println!("{}", summary.to_json());
        return Ok(());
    }
    if cli.cache_dir.is_some() {
        eprintln!(
            "cjrcd: persisted {} SCC(s) to the cache",
            summary.cache_entries_persisted
        );
    }
    eprintln!(
        "cjrcd: served {} client(s) ({} rejected at capacity, peak {} concurrent, \
         {} front end), bye",
        summary.clients_served,
        summary.clients_rejected,
        summary.connections_peak,
        frontend.name(),
    );
    Ok(())
}

/// The `cjrc serve` loop: one JSON request per stdin line, one JSON
/// response per stdout line, until EOF or a `shutdown` request. With
/// `--cache-dir`, solved SCCs are warm-loaded before the first request
/// and persisted when the loop ends.
fn serve(opts: SessionOptions, cli: &Cli) -> Result<(), Diagnostics> {
    let mut server = Server::new(opts);
    if let Some(cache) = open_cache(cli)? {
        server.workspace().attach_disk_cache(cache);
    }
    // The optional HTTP scrape endpoint, over the same telemetry hub the
    // in-protocol `metrics` request reads.
    let metrics_stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let metrics_thread = match &cli.metrics_addr {
        Some(addr) => {
            let io_diag = |e: std::io::Error| {
                Diagnostics::from_one(
                    Diagnostic::error(
                        format!("cannot serve metrics on `{addr}`: {e}"),
                        Span::DUMMY,
                    )
                    .with_code(codes::IO),
                )
            };
            let listener = std::net::TcpListener::bind(addr).map_err(io_diag)?;
            if let Ok(bound) = listener.local_addr() {
                eprintln!("cjrc: metrics endpoint on http://{bound}/metrics");
            }
            let memo = server.workspace().shared_memo();
            Some(
                cj_driver::telemetry::spawn_metrics_endpoint(
                    listener,
                    std::sync::Arc::clone(server.telemetry()),
                    Some(memo),
                    None,
                    std::sync::Arc::clone(&metrics_stop),
                )
                .map_err(io_diag)?,
            )
        }
        None => None,
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = server.handle_line(&line);
        let _ = writeln!(stdout, "{response}");
        let _ = stdout.flush();
        if server.is_done() {
            break;
        }
    }
    metrics_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    if let Some(thread) = metrics_thread {
        let _ = thread.join();
    }
    if cli.cache_dir.is_some() {
        if let Err(e) = server.workspace().flush_disk_cache() {
            eprintln!("cjrc: warning: could not write compilation cache: {e}");
        }
    }
    Ok(())
}

/// `cjrc trace-summary <trace.json>`: re-reads a `--trace-out` file and
/// prints the per-phase count / self-time / total-time table.
fn trace_summary_cmd(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let events = parse_trace_file(&text).map_err(|e| format!("malformed trace `{path}`: {e}"))?;
    if events.is_empty() {
        println!("(no trace events)");
        return Ok(());
    }
    print!(
        "{}",
        cj_trace::render_summary(&cj_trace::summarize(&events))
    );
    Ok(())
}

/// Reconstructs [`cj_trace::Event`]s from a Chrome trace-event file.
/// `Event` borrows its names as `&'static str` (recording must not
/// allocate); a one-shot CLI read gets them by interning each distinct
/// name once and leaking it — bounded by the span taxonomy, not the
/// event count.
fn parse_trace_file(text: &str) -> Result<Vec<cj_trace::Event>, String> {
    let root = cj_driver::parse_json(text.trim())?;
    let Some(cj_driver::Json::Arr(items)) = root.get("traceEvents") else {
        return Err("missing `traceEvents` array".to_string());
    };
    let mut names: std::collections::HashMap<String, &'static str> =
        std::collections::HashMap::new();
    let mut intern = move |s: &str| -> &'static str {
        if let Some(&interned) = names.get(s) {
            return interned;
        }
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        names.insert(s.to_string(), leaked);
        leaked
    };
    let mut events = Vec::with_capacity(items.len());
    for item in items {
        if item.get_str("ph") != Some("X") {
            continue; // only complete events carry durations
        }
        let num = |key: &str| -> Result<u64, String> {
            match item.get(key) {
                Some(cj_driver::Json::Num(n)) if *n >= 0.0 => Ok(*n as u64),
                _ => Err(format!("event missing numeric `{key}`")),
            }
        };
        let mut counters = Vec::new();
        if let Some(cj_driver::Json::Obj(args)) = item.get("args") {
            for (key, value) in args {
                if key == "depth" {
                    continue; // exporter metadata, not a span counter
                }
                if let cj_driver::Json::Num(n) = value {
                    counters.push((intern(key), *n as u64));
                }
            }
        }
        events.push(cj_trace::Event {
            cat: intern(item.get_str("cat").unwrap_or("")),
            name: intern(item.get_str("name").ok_or("event missing `name`")?),
            tid: num("tid")?,
            ts_us: num("ts")?,
            dur_us: num("dur")?,
            depth: 0, // recomputed by summarize's containment pass
            counters,
        });
    }
    Ok(events)
}

fn stats_json(stats: &cj_infer::InferStats) -> String {
    format!(
        "{{\"global_iterations\":{},\"fixpoint_iterations\":{},\"regions_created\":{},\
         \"localized_regions\":{},\"override_repairs\":{},\"downcast_sites\":{},\
         \"methods_inferred\":{},\"methods_reused\":{},\"sccs_solved\":{},\"sccs_reused\":{},\
         \"sccs_shared_hits\":{},\"sccs_disk_hits\":{}}}",
        stats.global_iterations,
        stats.fixpoint_iterations,
        stats.regions_created,
        stats.localized_regions,
        stats.override_repairs,
        stats.downcast_sites,
        stats.methods_inferred,
        stats.methods_reused,
        stats.sccs_solved,
        stats.sccs_reused,
        stats.sccs_shared_hits,
        stats.sccs_disk_hits
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_modes_in_both_spellings() {
        for (spelling, mode) in [
            ("none", SubtypeMode::None),
            ("no-sub", SubtypeMode::None),
            ("object", SubtypeMode::Object),
            ("object-sub", SubtypeMode::Object),
            ("field", SubtypeMode::Field),
            ("field-sub", SubtypeMode::Field),
        ] {
            let cli = parse_cli(argv(&["infer", "x.cj", "--mode", spelling])).unwrap();
            assert_eq!(cli.opts.mode, mode, "spelling {spelling}");
        }
    }

    #[test]
    fn parses_downcast_policies() {
        for (spelling, policy) in [
            ("reject", DowncastPolicy::Reject),
            ("equate", DowncastPolicy::EquateFirst),
            ("equate-first", DowncastPolicy::EquateFirst),
            ("padding", DowncastPolicy::Padding),
        ] {
            let cli = parse_cli(argv(&["check", "x.cj", "--downcast", spelling])).unwrap();
            assert_eq!(cli.opts.downcast, policy, "spelling {spelling}");
        }
    }

    #[test]
    fn parses_extent_modes() {
        for (spelling, mode) in [
            ("paper", ExtentMode::Paper),
            ("liveness", ExtentMode::Liveness),
        ] {
            for cmd in ["infer", "check", "run"] {
                let cli = parse_cli(argv(&[cmd, "x.cj", "--extents", spelling])).unwrap();
                assert_eq!(cli.opts.extent, mode, "{cmd} --extents {spelling}");
            }
        }
        // serve/daemon accept it as their session default.
        let cli = parse_cli(argv(&["serve", "--extents", "liveness"])).unwrap();
        assert_eq!(cli.opts.extent, ExtentMode::Liveness);
        let cli = parse_cli(argv(&["daemon", "--extents", "liveness"])).unwrap();
        assert_eq!(cli.opts.extent, ExtentMode::Liveness);
        assert!(parse_cli(argv(&["check", "x.cj", "--extents"]))
            .unwrap_err()
            .message
            .contains("--extents needs a value"));
        assert!(parse_cli(argv(&["check", "x.cj", "--extents", "nll"]))
            .unwrap_err()
            .message
            .contains("extent mode"));
    }

    #[test]
    fn usage_text_matches_accepted_spellings() {
        // The historic drift: usage said `equate` while the enum printed
        // `equate-first`. Both must now parse, and usage lists canonical
        // names that round-trip through FromStr.
        let text = usage();
        for canonical in ["no-sub", "object-sub", "field-sub"] {
            assert!(text.contains(canonical), "usage misses {canonical}");
            assert!(canonical.parse::<SubtypeMode>().is_ok());
        }
        for canonical in ["reject", "equate-first", "padding"] {
            assert!(text.contains(canonical), "usage misses {canonical}");
            assert!(canonical.parse::<DowncastPolicy>().is_ok());
        }
        for canonical in ExtentMode::NAMES {
            assert!(text.contains(canonical), "usage misses {canonical}");
            assert!(canonical.parse::<ExtentMode>().is_ok());
        }
    }

    #[test]
    fn policy_flag_is_check_only() {
        let cli = parse_cli(argv(&["check", "x.cj", "--policy", "rules.cjpolicy"])).unwrap();
        assert_eq!(cli.command, Command::Check);
        assert_eq!(cli.policy.as_deref(), Some("rules.cjpolicy"));
        for cmd in ["infer", "run", "flows", "query"] {
            let mut args = vec![cmd, "x.cj"];
            if cmd == "query" {
                args.push("inv.Pair");
            }
            args.extend(["--policy", "rules.cjpolicy"]);
            let err = parse_cli(argv(&args)).unwrap_err();
            assert!(
                err.message.contains("--policy applies to `check` only"),
                "{cmd}: {}",
                err.message
            );
        }
        assert!(parse_cli(argv(&["check", "x.cj", "--policy"]))
            .unwrap_err()
            .message
            .contains("--policy needs a rule-file value"));
    }

    #[test]
    fn query_parses_name_and_entails() {
        let cli = parse_cli(argv(&["query", "x.cj", "inv.Pair"])).unwrap();
        assert_eq!(cli.command, Command::Query);
        assert_eq!(cli.query_name.as_deref(), Some("inv.Pair"));
        assert!(cli.entails.is_none());
        let cli = parse_cli(argv(&[
            "query",
            "x.cj",
            "pre.Pair.get",
            "--entails",
            "r2>=r1",
            "--json",
        ]))
        .unwrap();
        assert_eq!(cli.query_name.as_deref(), Some("pre.Pair.get"));
        assert_eq!(cli.entails.as_deref(), Some("r2>=r1"));
        assert!(cli.json);
        assert!(parse_cli(argv(&["query", "x.cj"]))
            .unwrap_err()
            .message
            .contains("abstraction name"));
        assert!(parse_cli(argv(&["check", "x.cj", "--entails", "r2>=r1"]))
            .unwrap_err()
            .message
            .contains("--entails applies to `query` only"));
    }

    #[test]
    fn trace_and_metrics_flags_parse_and_validate() {
        // --trace-out rides on every compiling command plus serve/daemon.
        for args in [
            vec!["infer", "x.cj", "--trace-out", "t.json"],
            vec!["check", "x.cj", "--trace-out", "t.json"],
            vec!["run", "x.cj", "--trace-out", "t.json"],
            vec!["serve", "--trace-out", "t.json"],
            vec!["daemon", "--trace-out", "t.json"],
        ] {
            let cli = parse_cli(argv(&args)).unwrap();
            assert_eq!(cli.trace_out.as_deref(), Some("t.json"), "{args:?}");
        }
        for args in [
            vec!["flows", "x.cj", "--trace-out", "t.json"],
            vec!["query", "x.cj", "inv.Pair", "--trace-out", "t.json"],
        ] {
            let err = parse_cli(argv(&args)).unwrap_err();
            assert!(err.message.contains("--trace-out applies"), "{err:?}");
        }
        assert!(parse_cli(argv(&["infer", "x.cj", "--trace-out"]))
            .unwrap_err()
            .message
            .contains("--trace-out needs a file value"));

        // --metrics-addr is a serving concern only.
        let cli = parse_cli(argv(&["daemon", "--metrics-addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(cli.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        let cli = parse_cli(argv(&["serve", "--metrics-addr", "127.0.0.1:0"])).unwrap();
        assert_eq!(cli.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        let err = parse_cli(argv(&["infer", "x.cj", "--metrics-addr", "127.0.0.1:0"])).unwrap_err();
        assert!(
            err.message
                .contains("--metrics-addr applies to `serve` and `daemon`"),
            "{err:?}"
        );

        // trace-summary takes exactly one trace file.
        let cli = parse_cli(argv(&["trace-summary", "t.json"])).unwrap();
        assert_eq!(cli.command, Command::TraceSummary);
        assert_eq!(cli.file, "t.json");
        assert!(parse_cli(argv(&["trace-summary"]))
            .unwrap_err()
            .message
            .contains("needs a trace file"));
        assert!(parse_cli(argv(&["trace-summary", "t.json", "--json"]))
            .unwrap_err()
            .message
            .contains("accepts no options"));
    }

    #[test]
    fn trace_file_round_trips_through_the_summary_parser() {
        // What --trace-out writes, trace-summary must read back.
        let events = vec![
            cj_trace::Event {
                cat: "pipeline",
                name: "infer",
                tid: 1,
                ts_us: 0,
                dur_us: 100,
                depth: 0,
                counters: vec![("methods_inferred", 3)],
            },
            cj_trace::Event {
                cat: "pipeline",
                name: "solve-scc",
                tid: 1,
                ts_us: 10,
                dur_us: 40,
                depth: 1,
                counters: vec![],
            },
        ];
        let parsed = parse_trace_file(&cj_trace::chrome_trace_json(&events)).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "infer");
        assert_eq!(parsed[0].counters, vec![("methods_inferred", 3)]);
        let rows = cj_trace::summarize(&parsed);
        let infer = rows.iter().find(|r| r.name == "infer").unwrap();
        assert_eq!(infer.total_us, 100);
        assert_eq!(infer.self_us, 60, "child solve-scc time is not self time");
    }

    #[test]
    fn stats_json_and_run_args_collected() {
        let cli = parse_cli(argv(&["run", "x.cj", "--stats", "--json", "3", "-7"])).unwrap();
        assert!(cli.stats);
        assert!(cli.json);
        assert_eq!(cli.run_args, vec![3, -7]);
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.file, "x.cj");
    }

    #[test]
    fn serve_needs_no_file() {
        let cli = parse_cli(argv(&["serve"])).unwrap();
        assert_eq!(cli.command, Command::Serve);
        let cli = parse_cli(argv(&["serve", "--mode", "object"])).unwrap();
        assert_eq!(cli.opts.mode, SubtypeMode::Object);
        // The other commands still require one.
        assert!(parse_cli(argv(&["check"]))
            .unwrap_err()
            .message
            .contains("input file"));
        // Arguments `serve` would silently ignore are rejected instead.
        let err = parse_cli(argv(&["serve", "main.cj"])).unwrap_err();
        assert!(err.message.contains("takes no input file"), "{err:?}");
        let err = parse_cli(argv(&["serve", "--json"])).unwrap_err();
        assert!(err.message.contains("no --stats/--json/run"));
    }

    #[test]
    fn daemon_flags_parse_and_validate() {
        let cli = parse_cli(argv(&["daemon"])).unwrap();
        assert_eq!(cli.command, Command::Daemon);
        assert_eq!(cli.frontend, None, "front end defaults downstream");
        assert_eq!(cli.addr, None);
        assert_eq!(cli.workers, None);
        assert_eq!(cli.solve_threads, None);
        let cli = parse_cli(argv(&[
            "daemon",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "8",
            "--solve-threads",
            "2",
            "--mode",
            "object",
        ]))
        .unwrap();
        assert_eq!(cli.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cli.workers, Some(8));
        assert_eq!(cli.solve_threads, Some(2));
        assert_eq!(cli.opts.mode, SubtypeMode::Object);
        let cli = parse_cli(argv(&["daemon", "--socket", "/tmp/cjrcd.sock"])).unwrap();
        assert_eq!(cli.socket.as_deref(), Some("/tmp/cjrcd.sock"));
        let cli = parse_cli(argv(&["daemon", "--frontend", "threads"])).unwrap();
        assert_eq!(cli.frontend, Some(Frontend::Threads));
        let cli = parse_cli(argv(&["daemon", "--frontend", "event"])).unwrap();
        assert_eq!(cli.frontend, Some(Frontend::Event));
        // `--json` selects the machine-readable exit summary.
        let cli = parse_cli(argv(&["daemon", "--json"])).unwrap();
        assert!(cli.json);

        // Invalid combinations are rejected.
        let err = parse_cli(argv(&["daemon", "--frontend", "fibers"])).unwrap_err();
        assert!(err.message.contains("unknown front end"), "{err:?}");
        let err = parse_cli(argv(&["check", "x.cj", "--frontend", "event"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
        let err = parse_cli(argv(&["daemon", "--stats"])).unwrap_err();
        assert!(err.message.contains("no --stats"));
        let err = parse_cli(argv(&["daemon", "--addr", "a:1", "--socket", "/tmp/x"])).unwrap_err();
        assert!(err.message.contains("mutually exclusive"));
        let err = parse_cli(argv(&["daemon", "main.cj"])).unwrap_err();
        assert!(err.message.contains("takes no input file"));
        let err = parse_cli(argv(&["daemon", "--workers", "0"])).unwrap_err();
        assert!(err.message.contains("positive integer"));
        let err = parse_cli(argv(&["check", "x.cj", "--addr", "a:1"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
        let err = parse_cli(argv(&["serve", "--workers", "2"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
        // Even when the flag value equals the daemon default.
        let err = parse_cli(argv(&["check", "x.cj", "--workers", "4"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
        let err = parse_cli(argv(&["check", "x.cj", "--solve-threads", "1"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
    }

    #[test]
    fn cache_dir_parses_everywhere_but_flows() {
        for cmd in [
            argv(&["infer", "x.cj", "--cache-dir", "/tmp/cj-cache"]),
            argv(&["check", "x.cj", "--cache-dir", "/tmp/cj-cache"]),
            argv(&["run", "x.cj", "--cache-dir", "/tmp/cj-cache", "3"]),
            argv(&["serve", "--cache-dir", "/tmp/cj-cache"]),
            argv(&["daemon", "--cache-dir", "/tmp/cj-cache"]),
        ] {
            let cli = parse_cli(cmd).unwrap();
            assert_eq!(cli.cache_dir.as_deref(), Some("/tmp/cj-cache"));
        }
        let err = parse_cli(argv(&["flows", "x.cj", "--cache-dir", "/tmp/c"])).unwrap_err();
        assert!(err.message.contains("does not apply to `flows`"));
        let err = parse_cli(argv(&["infer", "x.cj", "--cache-dir"])).unwrap_err();
        assert!(err.message.contains("--cache-dir needs a directory"));
    }

    #[test]
    fn backpressure_and_idle_flags_are_daemon_only() {
        let cli = parse_cli(argv(&[
            "daemon",
            "--max-clients",
            "64",
            "--idle-timeout",
            "0",
        ]))
        .unwrap();
        assert_eq!(cli.max_clients, Some(64));
        assert_eq!(cli.idle_timeout, Some(0), "0 disables eviction");
        // 0 explicitly requests the default unbounded behavior, mirroring
        // --idle-timeout 0.
        let cli = parse_cli(argv(&["daemon", "--max-clients", "0"])).unwrap();
        assert_eq!(cli.max_clients, Some(0));
        let err = parse_cli(argv(&["daemon", "--max-clients", "many"])).unwrap_err();
        assert!(err.message.contains("whole number"));
        let err = parse_cli(argv(&["daemon", "--idle-timeout", "soon"])).unwrap_err();
        assert!(err.message.contains("whole number of seconds"));
        let err = parse_cli(argv(&["check", "x.cj", "--max-clients", "4"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
        let err = parse_cli(argv(&["serve", "--idle-timeout", "600"])).unwrap_err();
        assert!(err.message.contains("apply to `daemon` only"));
    }

    #[test]
    fn engine_and_limit_flags_are_run_only() {
        let cli = parse_cli(argv(&[
            "run",
            "x.cj",
            "--engine",
            "interp",
            "--fuel",
            "5000",
            "--max-depth",
            "64",
            "3",
        ]))
        .unwrap();
        assert_eq!(cli.engine, Some(Engine::Interp));
        assert_eq!(cli.fuel, Some(5000));
        assert_eq!(cli.max_depth, Some(64));
        assert_eq!(cli.run_args, vec![3]);
        let cli = parse_cli(argv(&["run", "x.cj", "--engine", "vm"])).unwrap();
        assert_eq!(cli.engine, Some(Engine::Vm));
        assert_eq!(cli.fuel, None, "defaults come from RunConfig");
        let cli = parse_cli(argv(&["run", "x.cj", "--engine", "rvm"])).unwrap();
        assert_eq!(cli.engine, Some(Engine::Rvm));

        let err = parse_cli(argv(&["run", "x.cj", "--engine", "jit"])).unwrap_err();
        assert!(err.message.contains("unknown engine"));
        let err = parse_cli(argv(&["run", "x.cj", "--fuel", "0"])).unwrap_err();
        assert!(err.message.contains("positive integer"));
        let err = parse_cli(argv(&["run", "x.cj", "--max-depth", "never"])).unwrap_err();
        assert!(err.message.contains("positive integer"));
        for bad in [
            argv(&["check", "x.cj", "--engine", "vm"]),
            argv(&["infer", "x.cj", "--fuel", "10"]),
            argv(&["serve", "--max-depth", "10"]),
        ] {
            let err = parse_cli(bad).unwrap_err();
            assert!(err.message.contains("apply to `run` only"), "{err:?}");
        }
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        let err = parse_cli(argv(&["infer", "x.cj", "--frobnicate"])).unwrap_err();
        assert!(err.message.contains("unknown option `--frobnicate`"));
        let err = parse_cli(argv(&["explode", "x.cj"])).unwrap_err();
        assert!(err.message.contains("unknown command `explode`"));
    }

    #[test]
    fn rejects_missing_pieces() {
        assert!(parse_cli(argv(&[]))
            .unwrap_err()
            .message
            .contains("command"));
        assert!(parse_cli(argv(&["infer"]))
            .unwrap_err()
            .message
            .contains("input file"));
        assert!(parse_cli(argv(&["infer", "x.cj", "--mode"]))
            .unwrap_err()
            .message
            .contains("--mode needs a value"));
        let err = parse_cli(argv(&["run", "x.cj", "seven"])).unwrap_err();
        assert!(err.message.contains("expected integer argument"));
    }

    #[test]
    fn unknown_mode_error_lists_alternatives() {
        let err = parse_cli(argv(&["infer", "x.cj", "--mode", "both"])).unwrap_err();
        assert!(err.message.contains("unknown subtype mode `both`"));
        assert!(err.message.contains("field-sub"));
    }

    #[test]
    fn cli_error_becomes_structured_diagnostic() {
        let d = CliError::new("boom").into_diagnostic();
        assert_eq!(d.code, Some(codes::CLI));
        assert_eq!(d.message, "boom");
    }
}
