//! `cjrc` — the Core-Java region compiler driver.
//!
//! ```text
//! cjrc infer  <file> [--mode M] [--downcast D] [--stats]   annotate and print
//! cjrc check  <file> [--mode M] [--downcast D]             infer + region-check
//! cjrc run    <file> [--mode M] [--downcast D] [args…]     compile and run main
//! cjrc flows  <file>                                       downcast-set report
//! ```
//!
//! `M` ∈ {none, object, field} (default field);
//! `D` ∈ {reject, equate, padding} (default equate).

use cj_infer::{DowncastPolicy, InferOptions, SubtypeMode};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("cjrc: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Cli {
    command: String,
    file: String,
    opts: InferOptions,
    stats: bool,
    run_args: Vec<i64>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut file = None;
    let mut mode = SubtypeMode::Field;
    let mut downcast = DowncastPolicy::EquateFirst;
    let mut stats = false;
    let mut run_args = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => {
                mode = match args.next().as_deref() {
                    Some("none") => SubtypeMode::None,
                    Some("object") => SubtypeMode::Object,
                    Some("field") => SubtypeMode::Field,
                    other => return Err(format!("unknown mode {other:?}")),
                }
            }
            "--downcast" => {
                downcast = match args.next().as_deref() {
                    Some("reject") => DowncastPolicy::Reject,
                    Some("equate") => DowncastPolicy::EquateFirst,
                    Some("padding") => DowncastPolicy::Padding,
                    other => return Err(format!("unknown downcast policy {other:?}")),
                }
            }
            "--stats" => stats = true,
            other if file.is_none() => file = Some(other.to_string()),
            other => run_args.push(
                other
                    .parse::<i64>()
                    .map_err(|_| format!("expected integer argument, found `{other}`"))?,
            ),
        }
    }
    Ok(Cli {
        command,
        file: file.ok_or_else(usage)?,
        opts: InferOptions { mode, downcast },
        stats,
        run_args,
    })
}

fn usage() -> String {
    "usage: cjrc <infer|check|run|flows> <file.cj> [--mode none|object|field] \
     [--downcast reject|equate|padding] [--stats] [run args…]"
        .to_string()
}

fn run() -> Result<(), String> {
    let cli = parse_cli()?;
    let src =
        std::fs::read_to_string(&cli.file).map_err(|e| format!("cannot read {}: {e}", cli.file))?;
    match cli.command.as_str() {
        "infer" => {
            let (p, stats) = cj_infer::infer_source(&src, cli.opts).map_err(|e| e.to_string())?;
            print!("{}", cj_infer::pretty::program_to_string(&p));
            if cli.stats {
                eprintln!(
                    "regions: {}  letregs: {}  fixpoint iterations: {}  repairs: {}",
                    stats.regions_created,
                    stats.localized_regions,
                    stats.fixpoint_iterations,
                    stats.override_repairs
                );
            }
            Ok(())
        }
        "check" => {
            let (p, _) = cj_infer::infer_source(&src, cli.opts).map_err(|e| e.to_string())?;
            cj_check::check(&p).map_err(|e| format!("region check failed:\n{e}"))?;
            println!("{}: well-region-typed ({})", cli.file, cli.opts.mode);
            Ok(())
        }
        "run" => {
            let (p, _) = cj_infer::infer_source(&src, cli.opts).map_err(|e| e.to_string())?;
            cj_check::check(&p).map_err(|e| format!("region check failed:\n{e}"))?;
            let args: Vec<cj_runtime::Value> = cli
                .run_args
                .iter()
                .map(|&v| cj_runtime::Value::Int(v))
                .collect();
            let out = cj_runtime::run_main_big_stack(&p, &args, cj_runtime::RunConfig::default())
                .map_err(|e| e.to_string())?;
            for line in &out.prints {
                println!("{line}");
            }
            println!("result: {}", out.value);
            println!(
                "space: peak {} / total {} bytes (ratio {:.4}), {} regions",
                out.space.peak_live,
                out.space.total_allocated,
                out.space.space_ratio(),
                out.space.regions_created
            );
            Ok(())
        }
        "flows" => {
            let kp = cj_frontend::typecheck::check_source(&src).map_err(|e| e.to_string())?;
            let analysis = cj_downcast::analyze(&kp);
            println!("{} downcast(s)", analysis.downcast_count);
            for site in &analysis.sites {
                if let Some(set) = analysis.site_sets.get(&site.id) {
                    let classes: Vec<&str> =
                        set.iter().map(|&c| kp.table.name(c).as_str()).collect();
                    let doomed = if analysis.doomed_sites.contains(&site.id) {
                        " [bound to fail]"
                    } else {
                        ""
                    };
                    println!(
                        "new {} in {} -> {{{}}}{doomed}",
                        kp.table.name(site.class),
                        kp.method_name(site.method),
                        classes.join(", ")
                    );
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}
