//! Region-erasure bisimulation (Sec 4.5): "By region erasure, we can show
//! that both programs have the same observable behaviour (through
//! bisimulation) in the absence of dangling accesses."
//!
//! We validate the executable consequence: running each annotated benchmark
//! with regions *active* and with regions *erased* (everything heap-
//! allocated, `letreg` a no-op) must produce identical results and
//! identical `print` traces — the region discipline only changes *where*
//! objects live and *when* memory is reclaimed, never what the program
//! computes.

use region_inference::prelude::*;

#[test]
fn erased_and_region_runs_are_observably_equal() {
    for b in cj_benchmarks::all_benchmarks() {
        let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        let with_regions = run_main_big_stack(&p, &args, RunConfig::default())
            .unwrap_or_else(|e| panic!("{} (regions): {e}", b.name));
        let erased = run_main_big_stack(
            &p,
            &args,
            RunConfig {
                erase_regions: true,
                ..RunConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} (erased): {e}", b.name));
        assert_eq!(
            format!("{}", with_regions.value),
            format!("{}", erased.value),
            "{}: results diverge under erasure",
            b.name
        );
        assert_eq!(
            with_regions.prints, erased.prints,
            "{}: print traces diverge under erasure",
            b.name
        );
        // Erased execution reclaims nothing.
        assert!(
            erased.space.space_ratio() > 0.999,
            "{}: erased run should not reuse space",
            b.name
        );
        // And the region run never uses more memory at peak.
        assert!(
            with_regions.space.peak_live <= erased.space.peak_live,
            "{}: regions made peak memory worse",
            b.name
        );
    }
}

/// Region reclamation can only help peak memory, never the total.
#[test]
fn totals_are_identical_across_semantics() {
    for b in cj_benchmarks::regjava_benchmarks() {
        let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        let a = run_main_big_stack(&p, &args, RunConfig::default()).unwrap();
        let e = run_main_big_stack(
            &p,
            &args,
            RunConfig {
                erase_regions: true,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            a.space.total_allocated, e.space.total_allocated,
            "{}: allocation totals must agree",
            b.name
        );
        assert_eq!(a.steps, e.steps, "{}: step counts must agree", b.name);
    }
}
