//! End-to-end proof of incrementality (the PR's acceptance criterion):
//! in a multi-file, multi-class, multi-SCC workspace, editing one method
//! body re-parses only the edited file and re-solves only the dirty
//! abstraction SCCs — strictly fewer infer/solve executions than the
//! initial compile — while query results for untouched SCCs stay
//! byte-identical, and the whole result matches a from-scratch compile.

use region_inference::prelude::*;

const LIST_CJ: &str = "
class List { Object value; List next;
  Object getValue() { this.value }
  List getNext() { this.next }
  static bool isNull(List l) { l == null }
  static List join(List xs, List ys) {
    if (isNull(xs)) { ys } else {
      List r = join(xs.getNext(), ys);
      new List(xs.getValue(), r)
    }
  }
}";

const STACK_CJ: &str = "
class Stack { List top;
  void push(Object o) { this.top = new List(o, this.top); }
  Object peek() { this.top.getValue() }
  List drain() { List t = this.top; this.top = (List) null; t }
}";

const MAIN_CJ: &str = "
class Main {
  static Object roundtrip(Stack s, Object o) {
    s.push(o);
    s.peek()
  }
  static List merge(Stack a, Stack b) {
    join(a.drain(), b.drain())
  }
}";

/// `Main.roundtrip` with an edited body (same signature).
const MAIN_EDITED_CJ: &str = "
class Main {
  static Object roundtrip(Stack s, Object o) {
    s.push(o);
    s.push(s.peek());
    s.peek()
  }
  static List merge(Stack a, Stack b) {
    join(a.drain(), b.drain())
  }
}";

fn dump_q(p: &cj_infer::RProgram) -> Vec<String> {
    p.q.iter().map(|a| a.to_string()).collect()
}

#[test]
fn one_body_edit_recompiles_one_file_and_only_dirty_sccs() {
    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("list.cj", LIST_CJ).unwrap();
    ws.set_source("stack.cj", STACK_CJ).unwrap();
    ws.set_source("main.cj", MAIN_CJ).unwrap();

    // ---- cold compile ----------------------------------------------------
    let cold_compilation = ws.check().unwrap();
    let cold = ws.pass_counts();
    assert_eq!(cold.parse, 3, "three files parsed");
    assert!(cold.sccs_solved > 4, "multi-SCC program: {cold:?}");
    let total_methods = cold_compilation.stats.methods_inferred;
    assert_eq!(total_methods, 9, "all nine methods inferred cold");

    // Untouched-SCC observables, before the edit.
    let join_before = ws.q("pre.join").unwrap().expect("join solved");
    let inv_list_before = ws.invariant("List").unwrap().expect("inv.List");
    let push_before = ws.precondition(Some("Stack"), "push").unwrap().unwrap();

    // ---- the edit: one method body in main.cj ---------------------------
    ws.set_source("main.cj", MAIN_EDITED_CJ).unwrap();
    let warm_compilation = ws.check().unwrap();
    let warm = ws.pass_counts().since(cold);

    // Only the edited file re-parses; the merged program re-typechecks once.
    assert_eq!(warm.parse, 1, "only main.cj re-parses: {warm:?}");
    assert_eq!(warm.typecheck, 1);
    assert_eq!(warm.infer, 1);

    // Only the edited body re-infers; everything else is replayed.
    assert_eq!(warm.methods_inferred, 1, "{warm:?}");
    assert_eq!(warm.methods_reused, 8, "{warm:?}");

    // Strictly fewer SCC solves than the initial compile, with reuse.
    assert!(
        warm.sccs_solved < cold.sccs_solved,
        "dirty SCCs ({}) must be strictly fewer than cold ({})",
        warm.sccs_solved,
        cold.sccs_solved
    );
    assert!(warm.sccs_reused > 0, "{warm:?}");

    // ---- untouched SCCs: byte-identical query answers -------------------
    let join_after = ws.q("pre.join").unwrap().expect("join solved");
    assert_eq!(join_before.to_string(), join_after.to_string());
    let inv_list_after = ws.invariant("List").unwrap().expect("inv.List");
    assert_eq!(inv_list_before.to_string(), inv_list_after.to_string());
    let push_after = ws.precondition(Some("Stack"), "push").unwrap().unwrap();
    assert_eq!(push_before.to_string(), push_after.to_string());

    // ---- equivalence with a from-scratch compile ------------------------
    // The workspace merges files in name order: list.cj, main.cj, stack.cj.
    let concatenated = format!("{LIST_CJ}{MAIN_EDITED_CJ}{STACK_CJ}");
    let mut scratch = Session::new(concatenated, SessionOptions::default());
    let scratch_compilation = scratch.check().unwrap();
    assert_eq!(
        region_inference::annotate(&warm_compilation.program),
        region_inference::annotate(&scratch_compilation.program),
        "incremental result must be bit-identical to from-scratch"
    );
    assert_eq!(
        dump_q(&warm_compilation.program),
        dump_q(&scratch_compilation.program)
    );
}

#[test]
fn one_body_edit_relowers_only_that_files_changed_methods() {
    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("list.cj", LIST_CJ).unwrap();
    ws.set_source("stack.cj", STACK_CJ).unwrap();
    ws.set_source("main.cj", MAIN_CJ).unwrap();
    let opts = ws.options().infer;

    ws.compiled_with(opts).unwrap();
    let cold = ws.pass_counts();
    assert_eq!(cold.lower, 1);
    assert_eq!(cold.methods_lowered, 9, "all nine methods lowered cold");
    assert_eq!(cold.methods_lower_reused, 0);
    // Re-requesting the compiled program is a pure cache read.
    ws.compiled_with(opts).unwrap();
    assert_eq!(ws.pass_counts(), cold);

    // Editing one body re-lowers exactly that method: lowering
    // fingerprints are α-invariant in region ids (which drift globally
    // with any edit), and the inference layer replays unchanged bodies
    // verbatim, so every other method hashes identically.
    ws.set_source("main.cj", MAIN_EDITED_CJ).unwrap();
    ws.compiled_with(opts).unwrap();
    let warm = ws.pass_counts().since(cold);
    assert_eq!(warm.lower, 1);
    assert_eq!(warm.methods_lowered, 1, "{warm:?}");
    assert_eq!(warm.methods_lower_reused, 8, "{warm:?}");
}

#[test]
fn one_body_edit_register_relowers_only_that_files_changed_methods() {
    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("list.cj", LIST_CJ).unwrap();
    ws.set_source("stack.cj", STACK_CJ).unwrap();
    ws.set_source("main.cj", MAIN_CJ).unwrap();
    let opts = ws.options().infer;

    ws.rvm_with(opts).unwrap();
    let cold = ws.pass_counts();
    assert_eq!(cold.rvm_lower, 1);
    assert_eq!(
        cold.methods_rvm_lowered, 9,
        "all nine methods register-lowered cold"
    );
    assert_eq!(cold.methods_rvm_reused, 0);
    // Re-requesting the register program is a pure cache read.
    ws.rvm_with(opts).unwrap();
    assert_eq!(ws.pass_counts(), cold);

    // Editing one body re-translates exactly that method: the register
    // memo keys on pointer identity of the per-method stack bytecode,
    // whose own memo is α-invariant in region ids — so the stack tier
    // replays eight methods verbatim and the register tier follows.
    ws.set_source("main.cj", MAIN_EDITED_CJ).unwrap();
    ws.rvm_with(opts).unwrap();
    let warm = ws.pass_counts().since(cold);
    assert_eq!(warm.rvm_lower, 1);
    assert_eq!(warm.methods_rvm_lowered, 1, "{warm:?}");
    assert_eq!(warm.methods_rvm_reused, 8, "{warm:?}");
    assert_eq!(warm.methods_lowered, 1, "{warm:?}");
    assert_eq!(warm.methods_lower_reused, 8, "{warm:?}");
}

#[test]
fn queries_are_demand_driven_and_cached() {
    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("list.cj", LIST_CJ).unwrap();
    // The first query runs the pipeline on demand…
    let join = ws.q("pre.join").unwrap().expect("join");
    assert!(!join.params.is_empty());
    let counts = ws.pass_counts();
    assert_eq!(counts.infer, 1);
    // …subsequent queries (and entailment checks) re-run nothing.
    assert!(ws.entails("pre.join", "r1=r1").unwrap().is_some());
    ws.invariant("List").unwrap().unwrap();
    assert_eq!(ws.pass_counts(), counts);
}

#[test]
fn fig6_join_precondition_queryable_through_workspace() {
    // The Fig 6(d) fixed point pre.join = r2>=r8 & r5>=r8, asked through
    // the positional `entails` query API.
    let src = "
    class List { Object value; List next;
      Object getValue() { this.value }
      List getNext() { this.next }
      static bool isNull(List l) { l == null }
      static List join(List xs, List ys) {
        if (isNull(xs)) {
          if (isNull(ys)) { (List) null } else { join(ys, xs) }
        } else {
          Object x; List res;
          x = xs.getValue();
          xs = xs.getNext();
          res = join(ys, xs);
          new List(x, res)
        }
      }
    }";
    let mut ws = Workspace::new(SessionOptions::with_infer(InferOptions::with_mode(
        SubtypeMode::Object,
    )));
    ws.set_source("join.cj", src).unwrap();
    assert_eq!(ws.entails("pre.join", "r2>=r8").unwrap(), Some(true));
    assert_eq!(ws.entails("pre.join", "r5>=r8").unwrap(), Some(true));
    assert_eq!(ws.entails("pre.join", "r1=r2").unwrap(), Some(false));
}

#[test]
fn policy_recheck_after_edit_reevaluates_only_affected_methods() {
    // The ISSUE's incrementality criterion for the policy engine: after an
    // edit, `rules_checked` grows by strictly less than a cold check — only
    // methods whose bodies or closed imports changed are re-evaluated —
    // while the verdict stays identical to a from-scratch workspace.
    const CELL_CJ: &str = "
    class Cell { Object v; }
    class Box { Cell c;
      void fill() { this.c = new Cell(null); }
    }";
    const MAIN_CJ: &str = "
    class Main {
      static Cell leak() { new Cell(null) }
      static void main() { Box b = new Box(null); b.fill(); }
    }";
    // Same shape, different `main` body; `leak` and `Box.fill` untouched.
    const MAIN_EDITED_CJ: &str = "
    class Main {
      static Cell leak() { new Cell(null) }
      static void main() { Box b = new Box(null); b.fill(); b.fill(); }
    }";
    const RULES: &str = "no-escape Cell\nconfine Cell to Box\n";

    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("cell.cj", CELL_CJ).unwrap();
    ws.set_source("main.cj", MAIN_CJ).unwrap();
    ws.set_policy("rules.cjpolicy", RULES).unwrap();

    // ---- cold policy check ----------------------------------------------
    ws.check().unwrap();
    let cold_outcome = ws.check_policy().unwrap();
    let cold = ws.pass_counts();
    assert!(cold.rules_checked > 0, "{cold:?}");
    assert_eq!(cold.policy_violations, cold_outcome.violations);
    assert!(cold_outcome.violations > 0, "leak() must violate no-escape");

    // ---- same revision: pure replay, no evaluation, same verdict --------
    let replay_outcome = ws.check_policy().unwrap();
    let replay = ws.pass_counts().since(cold);
    assert_eq!(replay.rules_checked, 0, "replay must not re-evaluate");
    assert_eq!(replay.policy_violations, 0, "replay must not re-count");
    assert_eq!(
        ws.render(&replay_outcome.diagnostics),
        ws.render(&cold_outcome.diagnostics)
    );

    // ---- one body edit: only the edited method is re-evaluated ----------
    ws.set_source("main.cj", MAIN_EDITED_CJ).unwrap();
    ws.check().unwrap();
    let warm_outcome = ws.check_policy().unwrap();
    let warm = ws.pass_counts().since(cold);
    assert!(warm.rules_checked > 0, "edit must re-check something");
    assert!(
        warm.rules_checked < cold.rules_checked,
        "edit re-evaluated {} of {} cold rule checks — affected methods only",
        warm.rules_checked,
        cold.rules_checked
    );
    // Verdict unchanged (the edit is policy-neutral): the violations all
    // live in untouched `leak`, so they are *replayed*, not re-found —
    // the counter stays flat while the outcome still reports them.
    assert_eq!(warm_outcome.violations, cold_outcome.violations);
    assert_eq!(
        warm.policy_violations, 0,
        "replayed violations not re-counted"
    );

    // ---- cross-check against a from-scratch workspace -------------------
    let mut scratch = Workspace::new(SessionOptions::default());
    scratch.set_source("cell.cj", CELL_CJ).unwrap();
    scratch.set_source("main.cj", MAIN_EDITED_CJ).unwrap();
    scratch.set_policy("rules.cjpolicy", RULES).unwrap();
    scratch.check().unwrap();
    let scratch_outcome = scratch.check_policy().unwrap();
    assert_eq!(
        scratch.render(&scratch_outcome.diagnostics),
        ws.render(&warm_outcome.diagnostics),
        "incremental verdict must match from-scratch"
    );
}
