//! Theorem 1 (Correctness), validated end to end: for every benchmark
//! program in both suites and every subtyping mode, region inference
//! succeeds, the result is well-region-typed (the separate checker
//! accepts it), and execution on the region runtime never performs a
//! dangling access.

use region_inference::prelude::*;

fn exercise(b: &cj_benchmarks::Benchmark, mode: SubtypeMode) {
    let (p, stats) = infer_source(b.source, InferOptions::with_mode(mode))
        .unwrap_or_else(|e| panic!("{} [{mode}]: inference failed: {e}", b.name));
    check(&p).unwrap_or_else(|e| panic!("{} [{mode}]: region check failed:\n{e}", b.name));
    assert!(stats.regions_created > 0, "{}: no regions created", b.name);

    let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
    match run_main_big_stack(&p, &args, RunConfig::default()) {
        Ok(out) => {
            assert!(
                out.steps > 0,
                "{} [{mode}]: program did not execute",
                b.name
            );
        }
        Err(e) => panic!("{} [{mode}]: runtime error: {e}", b.name),
    }
}

#[test]
fn regjava_suite_infers_checks_and_runs_no_sub() {
    for b in cj_benchmarks::regjava_benchmarks() {
        exercise(&b, SubtypeMode::None);
    }
}

#[test]
fn regjava_suite_infers_checks_and_runs_object_sub() {
    for b in cj_benchmarks::regjava_benchmarks() {
        exercise(&b, SubtypeMode::Object);
    }
}

#[test]
fn regjava_suite_infers_checks_and_runs_field_sub() {
    for b in cj_benchmarks::regjava_benchmarks() {
        exercise(&b, SubtypeMode::Field);
    }
}

#[test]
fn olden_suite_infers_checks_and_runs_field_sub() {
    for b in cj_benchmarks::olden_benchmarks() {
        exercise(&b, SubtypeMode::Field);
    }
}

#[test]
fn olden_suite_infers_checks_and_runs_no_sub() {
    for b in cj_benchmarks::olden_benchmarks() {
        exercise(&b, SubtypeMode::None);
    }
}

/// Deterministic results across modes: the region discipline must not
/// change observable behaviour (the paper's bisimulation-by-erasure
/// property).
#[test]
fn results_agree_across_modes() {
    for b in cj_benchmarks::all_benchmarks() {
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        let mut values = Vec::new();
        for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
            let (p, _) = infer_source(b.source, InferOptions::with_mode(mode)).unwrap();
            let out = run_main_big_stack(&p, &args, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            values.push(format!("{}", out.value));
        }
        assert!(
            values.windows(2).all(|w| w[0] == w[1]),
            "{}: results diverge across modes: {values:?}",
            b.name
        );
    }
}

/// Fig 8's space-reuse shape, on the smaller test inputs: programs the
/// paper reports at ratio 1 must show (almost) no reuse; the reusers must
/// reuse.
#[test]
fn space_reuse_shape_matches_fig8() {
    let no_reuse = [
        "Sieve of Eratosthenes",
        "Naive Life",
        "Optimized Life (dangling)",
        "Optimized Life (stack)",
    ];
    for name in no_reuse {
        let b = cj_benchmarks::by_name(name).unwrap();
        let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
        let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default()).unwrap();
        assert!(
            out.space.space_ratio() > 0.95,
            "{name}: expected no reuse, ratio {}",
            out.space.space_ratio()
        );
    }
    for (name, bound) in [
        ("Ackermann", 0.05),
        ("Mandelbrot", 0.05),
        ("Merge Sort", 0.5),
    ] {
        let b = cj_benchmarks::by_name(name).unwrap();
        let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
        let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default()).unwrap();
        assert!(
            out.space.space_ratio() < bound,
            "{name}: expected reuse below {bound}, ratio {}",
            out.space.space_ratio()
        );
    }
}

/// The two subtyping-sensitive rows of Fig 8: Reynolds3 reuses only under
/// field subtyping; foo-sum improves sharply from no-sub to object-sub.
#[test]
fn fig8_crossovers_reproduce() {
    let reynolds = cj_benchmarks::by_name("Reynolds3").unwrap();
    let mut ratios = Vec::new();
    for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
        let (p, _) = infer_source(reynolds.source, InferOptions::with_mode(mode)).unwrap();
        let args: Vec<Value> = reynolds
            .paper_input
            .iter()
            .map(|&v| Value::Int(v))
            .collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default()).unwrap();
        ratios.push(out.space.space_ratio());
    }
    assert!(ratios[0] > 0.95, "no-sub: {}", ratios[0]);
    assert!(ratios[1] > 0.95, "object-sub: {}", ratios[1]);
    assert!(ratios[2] < 0.05, "field-sub: {}", ratios[2]);

    let foo = cj_benchmarks::by_name("foo-sum").unwrap();
    let mut ratios = Vec::new();
    for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
        let (p, _) = infer_source(foo.source, InferOptions::with_mode(mode)).unwrap();
        let args: Vec<Value> = foo.paper_input.iter().map(|&v| Value::Int(v)).collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default()).unwrap();
        ratios.push(out.space.space_ratio());
    }
    // Paper: 0.340 / 0.010 / 0.010.
    assert!((ratios[0] - 0.34).abs() < 0.1, "no-sub: {}", ratios[0]);
    assert!(ratios[1] < 0.05, "object-sub: {}", ratios[1]);
    assert!(ratios[2] < 0.05, "field-sub: {}", ratios[2]);
}
