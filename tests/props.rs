//! Property-based tests (proptest).
//!
//! Two layers:
//!
//! 1. **Solver invariants** — entailment is reflexive/transitive, cycle
//!    collapse is sound, projection is entailed by the original set and
//!    mentions only kept variables, the escape closure contains its seeds
//!    and is upward closed.
//! 2. **Theorem 1 fuzzing** — randomly generated well-normal-typed
//!    Core-Java programs must infer, pass the region checker under every
//!    subtyping mode, and execute on the region runtime without dangling
//!    accesses.

use proptest::prelude::*;
use region_inference::prelude::*;
use region_inference::regions::{Atom, ConstraintSet, RegVar, Solver};
use std::collections::BTreeSet;

// ---------- solver properties ----------------------------------------------

fn arb_atom(nvars: u32) -> impl Strategy<Value = Atom> {
    (0..nvars, 0..nvars, any::<bool>()).prop_map(|(a, b, eq)| {
        if eq {
            Atom::eq(RegVar(a), RegVar(b))
        } else {
            Atom::outlives(RegVar(a), RegVar(b))
        }
    })
}

fn arb_set(nvars: u32, max_atoms: usize) -> impl Strategy<Value = ConstraintSet> {
    proptest::collection::vec(arb_atom(nvars), 0..max_atoms)
        .prop_map(|atoms| atoms.into_iter().collect())
}

proptest! {
    #[test]
    fn entailment_is_reflexive_on_inputs(set in arb_set(8, 12)) {
        let mut solver = Solver::from_set(&set);
        for atom in set.iter() {
            prop_assert!(solver.entails_atom(atom), "input atom {atom} lost");
        }
    }

    #[test]
    fn outlives_is_transitive(set in arb_set(6, 10)) {
        let mut solver = Solver::from_set(&set);
        for a in 0..6u32 {
            for b in 0..6u32 {
                for c in 0..6u32 {
                    let ab = solver.outlives_holds(RegVar(a), RegVar(b));
                    let bc = solver.outlives_holds(RegVar(b), RegVar(c));
                    if ab && bc {
                        prop_assert!(
                            solver.outlives_holds(RegVar(a), RegVar(c)),
                            "transitivity failed {a}>={b}>={c} in {set}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mutual_outlives_collapses_to_equality(set in arb_set(6, 10)) {
        let mut solver = Solver::from_set(&set);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if solver.outlives_holds(RegVar(a), RegVar(b))
                    && solver.outlives_holds(RegVar(b), RegVar(a))
                {
                    prop_assert!(solver.equal(RegVar(a), RegVar(b)));
                }
            }
        }
    }

    #[test]
    fn projection_is_entailed_and_scoped(
        set in arb_set(8, 14),
        keep_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let keep: BTreeSet<RegVar> = (0..8u32)
            .filter(|&i| keep_mask[i as usize])
            .map(RegVar)
            .collect();
        let mut solver = Solver::from_set(&set);
        let projected = solver.project(&keep);
        // Every projected atom mentions only kept variables (or heap)…
        for atom in projected.iter() {
            for v in atom.vars() {
                prop_assert!(
                    keep.contains(&v) || v.is_heap(),
                    "projection leaked {v} in {atom}"
                );
            }
        }
        // …and is entailed by the original constraint.
        let mut original = Solver::from_set(&set);
        prop_assert!(original.entails(&projected), "projection not entailed");
    }

    #[test]
    fn escape_closure_contains_seeds_and_is_closed(
        set in arb_set(8, 14),
        seeds_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let universe: BTreeSet<RegVar> = (0..8u32).map(RegVar).collect();
        let seeds: Vec<RegVar> = (0..8u32)
            .filter(|&i| seeds_mask[i as usize])
            .map(RegVar)
            .collect();
        let mut solver = Solver::from_set(&set);
        let escaping = solver.escape_closure(seeds.iter().copied(), &universe);
        for s in &seeds {
            prop_assert!(escaping.contains(s), "seed {s} not in closure");
        }
        // Upward closure: anything that outlives an escaping region escapes.
        for &r in &universe {
            for &e in &escaping {
                if solver.outlives_holds(r, e) {
                    prop_assert!(
                        escaping.contains(&r),
                        "{r} outlives escaping {e} but does not escape"
                    );
                }
            }
        }
    }

    #[test]
    fn heap_dominates_everything(set in arb_set(8, 14)) {
        let mut solver = Solver::from_set(&set);
        for v in 0..8u32 {
            prop_assert!(solver.outlives_holds(RegVar::HEAP, RegVar(v)));
        }
    }
}

// ---------- random-program fuzzing ------------------------------------------

/// A tiny well-typed-by-construction program shape: `nclasses` classes
/// where class `Ci` has an int field and an object field of class `C(i%k)`
/// (self-reference when i==target makes it recursive), plus a `main` that
/// performs a random sequence of allocations, assignments and field writes
/// inside optional loop/branch structure.
#[derive(Debug, Clone)]
enum Op {
    /// `vX = new C(..)` for a random class.
    Alloc(usize, usize),
    /// `vA = vB` (same class).
    Copy(usize, usize),
    /// `vA.ref = vB` (field class matches).
    Store(usize, usize),
    /// Wrap the next op in `if (flag) { .. } else { }`.
    Branch(Box<Op>),
    /// Wrap the next op in a 3-iteration loop.
    Loop(Box<Op>),
}

fn arb_op(nclasses: usize, nvars: usize) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0..nvars, 0..nclasses).prop_map(|(v, c)| Op::Alloc(v, c)),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Copy(a, b)),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Store(a, b)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|op| Op::Branch(Box::new(op))),
            inner.prop_map(|op| Op::Loop(Box::new(op))),
        ]
    })
}

/// Renders a generated program. All variables of class `C0` (one class for
/// variables keeps copies/stores type-correct); allocations may build other
/// classes via the `mk` helpers, which exercise inter-class regions.
fn render(nclasses: usize, nvars: usize, ops: &[Op]) -> String {
    let mut s = String::new();
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "class C{c} {{ int tag; C{target} link; C{c} self; }}\n"
        ));
    }
    s.push_str("class Gen {\n");
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "  static C{c} mk{c}(int depth) {{\n\
             \x20   if (depth <= 0) {{ (C{c}) null }}\n\
             \x20   else {{ new C{c}(depth, mk{target}(depth - 1), mk{c}(depth - 2)) }}\n\
             \x20 }}\n"
        ));
    }
    s.push_str("  static int main(bool flag) {\n");
    for v in 0..nvars {
        s.push_str(&format!("    C0 v{v} = mk0(2);\n"));
    }
    let mut loop_id = 0u32;
    for op in ops {
        render_op(op, &mut s, 4, &mut loop_id);
    }
    s.push_str("    int alive = 0;\n");
    for v in 0..nvars {
        s.push_str(&format!(
            "    if (v{v} != null) {{ alive = alive + v{v}.tag; }}\n"
        ));
    }
    s.push_str("    alive\n  }\n}\n");
    s
}

fn render_op(op: &Op, s: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = " ".repeat(indent);
    match op {
        Op::Alloc(v, _) => {
            s.push_str(&format!("{pad}v{v} = mk0(3);\n"));
        }
        Op::Copy(a, b) => {
            s.push_str(&format!("{pad}v{a} = v{b};\n"));
        }
        Op::Store(a, b) => {
            s.push_str(&format!("{pad}if (v{a} != null) {{ v{a}.self = v{b}; }}\n"));
        }
        Op::Branch(inner) => {
            s.push_str(&format!("{pad}if (flag) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}}}\n"));
        }
        Op::Loop(inner) => {
            let id = *loop_id;
            *loop_id += 1;
            s.push_str(&format!("{pad}int gl{id} = 0;\n"));
            s.push_str(&format!("{pad}while (gl{id} < 3) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}  gl{id} = gl{id} + 1;\n{pad}}}\n"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn theorem1_on_random_programs(
        nclasses in 1usize..4,
        nvars in 1usize..4,
        ops in proptest::collection::vec(arb_op(3, 3), 0..6),
        flag in any::<bool>(),
    ) {
        // Clamp op indices to the generated sizes.
        let clamp = |op: &Op| clamp_op(op, nclasses, nvars);
        let ops: Vec<Op> = ops.iter().map(clamp).collect();
        let src = render(nclasses, nvars, &ops);
        for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
            let (p, _) = infer_source(&src, InferOptions::with_mode(mode))
                .unwrap_or_else(|e| panic!("inference failed [{mode}]: {e}\n{src}"));
            check(&p).unwrap_or_else(|e| {
                panic!("region check failed [{mode}]:\n{e}\nprogram:\n{src}")
            });
            let out = run_main(&p, &[Value::Bool(flag)], RunConfig::default())
                .unwrap_or_else(|e| panic!("runtime [{mode}]: {e}\n{src}"));
            prop_assert!(matches!(out.value, Value::Int(_)));
        }
    }
}

fn clamp_op(op: &Op, nclasses: usize, nvars: usize) -> Op {
    match op {
        Op::Alloc(v, c) => Op::Alloc(v % nvars, c % nclasses),
        Op::Copy(a, b) => Op::Copy(a % nvars, b % nvars),
        Op::Store(a, b) => Op::Store(a % nvars, b % nvars),
        Op::Branch(inner) => Op::Branch(Box::new(clamp_op(inner, nclasses, nvars))),
        Op::Loop(inner) => Op::Loop(Box::new(clamp_op(inner, nclasses, nvars))),
    }
}
