//! The paper's worked examples, verified through the public API: Fig 2
//! (Pair/List signatures), Fig 4 (localization), Fig 5 (cycles), Fig 6
//! (fixed points), the Sec 4.4 Triple override, and the Fig 7 downcast
//! program under both preservation strategies.

use region_inference::prelude::*;
use region_inference::regions::{Atom, Solver};

const PAIR: &str = "
    class Pair { Object fst; Object snd;
      Object getFst() { this.fst }
      void setSnd(Object o) { this.snd = o; }
      Pair cloneRev() {
        Pair tmp = new Pair(null, null);
        tmp.fst = this.snd; tmp.snd = this.fst; tmp
      }
      void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
    }";

#[test]
fn fig2_pair_annotations_match_paper() {
    let p = compile(PAIR, InferOptions::default()).unwrap();
    let text = annotate(&p);
    // Class header with the no-dangling invariant.
    assert!(
        text.contains("class Pair<r1,r2,r3> extends Object<r1> where r2>=r1 & r3>=r1"),
        "unexpected class header in:\n{text}"
    );
    // getFst<r4> where r2>=r4.
    assert!(
        text.contains("Object<r4> getFst<r4>() where r2>=r4"),
        "{text}"
    );
    // setSnd<r5>(Object<r5> o) where r5>=r3.
    assert!(
        text.contains("void setSnd<r5>(Object<r5> o) where r5>=r3"),
        "{text}"
    );
    // cloneRev: r2>=r8 & r3>=r7 (the paper's r2>=r6 & r3>=r5 modulo naming).
    assert!(
        text.contains("Pair<r6,r7,r8> cloneRev<r6,r7,r8>() where r2>=r8 & r3>=r7"),
        "{text}"
    );
    // swap has no region parameters but requires r2=r3.
    assert!(text.contains("void swap() where r2=r3"), "{text}");
}

#[test]
fn fig2_list_recursive_annotation() {
    let src = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
        }";
    let p = compile(src, InferOptions::default()).unwrap();
    let text = annotate(&p);
    // List<r1,r2,r3> with next: List<r3,r2,r3> (Sec 3.1's recursive-field
    // scheme) and the paper's invariant r3>=r1 & r2>=r3 & r2>=r1.
    assert!(text.contains("class List<r1,r2,r3>"), "{text}");
    assert!(text.contains("List<r3,r2,r3> next;"), "{text}");
    let list = p.kernel.table.class_id("List").unwrap();
    let rc = p.rclass(list);
    let (r1, r2, r3) = (rc.params[0], rc.params[1], rc.params[2]);
    let mut inv = Solver::from_set(&rc.invariant);
    assert!(inv.entails_atom(Atom::outlives(r3, r1)));
    assert!(inv.entails_atom(Atom::outlives(r2, r3)));
    assert!(inv.entails_atom(Atom::outlives(r2, r1)));
}

#[test]
fn fig4_letreg_groups_nonescaping_pairs() {
    let src = format!(
        "{PAIR}
        class Main {{
          static Pair build() {{
            Pair p4 = new Pair(null, null);
            Pair p3 = new Pair(p4, null);
            Pair p2 = new Pair(null, p4);
            Pair p1 = new Pair(p2, null);
            p1.setSnd(p3);
            p2
          }}
        }}"
    );
    let p = compile(&src, InferOptions::default()).unwrap();
    let build = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "build")
        .unwrap()
        .1;
    assert_eq!(build.localized.len(), 1, "one letreg for p1+p3 (Fig 4d)");
    let text = annotate(&p);
    assert!(text.contains("letreg"), "{text}");
}

#[test]
fn fig5_cycle_forces_one_region_and_no_letreg() {
    let src = format!(
        "{PAIR}
        class Main {{
          static Pair cycle() {{
            Pair p1 = new Pair(null, null);
            Pair p2 = new Pair(p1, null);
            p1.setSnd(p2);
            p2
          }}
        }}"
    );
    let p = compile(&src, InferOptions::default()).unwrap();
    let (_, cycle) = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "cycle")
        .unwrap();
    let km = p
        .kernel
        .all_methods()
        .find(|(_, m)| m.name.as_str() == "cycle")
        .unwrap()
        .1;
    let slot = |n: &str| km.vars.iter().position(|v| v.name.as_str() == n).unwrap();
    assert_eq!(
        cycle.var_types[slot("p1")].object_region(),
        cycle.var_types[slot("p2")].object_region(),
        "cycle members share a region"
    );
    assert!(
        cycle.localized.is_empty(),
        "everything escapes via the result"
    );
}

#[test]
fn fig6_join_precondition_is_the_papers_fixed_point() {
    let src = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
          static bool isNull(List l) { l == null }
          static List join(List xs, List ys) {
            if (isNull(xs)) {
              if (isNull(ys)) { (List) null } else { join(ys, xs) }
            } else {
              Object x; List res;
              x = xs.getValue();
              xs = xs.getNext();
              res = join(ys, xs);
              new List(x, res)
            }
          }
        }";
    let p = compile(src, InferOptions::default()).unwrap();
    let (jid, join) = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "join")
        .unwrap();
    // join<r1..r9>: xs=<r1,r2,r3>, ys=<r4,r5,r6>, result=<r7,r8,r9>.
    assert_eq!(join.mparams.len(), 9);
    let (r2, r5, r8) = (join.mparams[1], join.mparams[4], join.mparams[7]);
    let mut pre = Solver::from_set(&join.precondition);
    assert!(pre.entails_atom(Atom::outlives(r2, r8)));
    assert!(pre.entails_atom(Atom::outlives(r5, r8)));
    // The *minimal displayed* precondition is exactly those two atoms.
    let shown = region_inference::infer::pretty::display_precondition(&p, jid);
    assert_eq!(shown.len(), 2, "paper's closed form has two atoms: {shown}");
}

#[test]
fn sec44_triple_override_is_resolved_and_sound() {
    let src = "
        class Pair { Object fst; Object snd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd; tmp.snd = this.fst; tmp
          }
        }
        class Triple extends Pair { Object thd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.thd; tmp.snd = this.fst; tmp
          }
        }
        class Use {
          static Pair viaBase(Pair p) { p.cloneRev() }
          static int main() {
            Triple t = new Triple(null, null, null);
            Pair r = viaBase(t);
            if (r == null) { 0 } else { 1 }
          }
        }";
    let p = compile(src, InferOptions::default()).unwrap();
    // inv.Triple ties the extra region to a Pair region (the r3a=r3 split).
    let triple = p.kernel.table.class_id("Triple").unwrap();
    let rc = p.rclass(triple);
    let mut inv = Solver::from_set(&rc.invariant);
    assert!(
        rc.params[..3]
            .iter()
            .any(|&rp| inv.entails_atom(Atom::eq(rc.params[3], rp))),
        "inv.Triple = {}",
        rc.invariant
    );
    // And the program actually runs through the dynamic dispatch.
    let out = run_main(&p, &[], RunConfig::default()).unwrap();
    assert_eq!(out.value, Value::Int(1));
}

const FIG7: &str = "
    class A { Object f1; }
    class B extends A { Object f2; }
    class C extends A { Object f3; }
    class D extends C { Object f4; }
    class E extends A { Object f5; Object f6; Object f7; }
    class Main {
        static int main(bool c1, bool c2) {
            A a; A a2;
            a2 = new A(null);
            if (c1) {
                a = new B(null, null);
            } else {
                if (c2) { a = new C(null, null); }
                else { a = new E(null, null, null, null); }
            }
            B b = (B) a;
            C c = (C) a;
            D d = (D) c;
            1
        }
    }";

#[test]
fn fig7_downcasts_under_both_strategies() {
    for policy in [DowncastPolicy::EquateFirst, DowncastPolicy::Padding] {
        let (p, _) = infer_source(
            FIG7,
            InferOptions {
                mode: SubtypeMode::Object,
                downcast: policy,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{policy}: {e}"));
        check(&p).unwrap_or_else(|e| panic!("{policy}: {e}"));
        // c1 = true: a is a B; (B) a succeeds, (C) a fails at runtime.
        let km = p.kernel.method(cj_frontend::MethodId::Static(0));
        assert_eq!(km.params.len(), 2);
        let err = cj_runtime::run_static(
            &p,
            cj_frontend::MethodId::Static(0),
            &[Value::Bool(true), Value::Bool(false)],
            RunConfig::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, cj_runtime::RuntimeError::CastFailed(_)),
            "{policy}: expected the (C) a cast to fail on a B object"
        );
    }
}

#[test]
fn fig7_padding_pads_a_to_d_arity() {
    let (p, _) = infer_source(
        FIG7,
        InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Padding,
            ..Default::default()
        },
    )
    .unwrap();
    let main_id = cj_frontend::MethodId::Static(0);
    let km = p.kernel.method(main_id);
    let rm = p.rmethod(main_id);
    let d = p.kernel.table.class_id("D").unwrap();
    let d_arity = p.rclass(d).params.len();
    let a_slot = km.vars.iter().position(|v| v.name.as_str() == "a").unwrap();
    let a2_slot = km
        .vars
        .iter()
        .position(|v| v.name.as_str() == "a2")
        .unwrap();
    match &rm.var_types[a_slot] {
        region_inference::infer::RType::Class { regions, pads, .. } => {
            assert_eq!(regions.len() + pads.len(), d_arity, "a padded to D");
            assert!(!pads.is_empty());
        }
        other => panic!("unexpected {other}"),
    }
    // a2 is never downcast: no pads.
    match &rm.var_types[a2_slot] {
        region_inference::infer::RType::Class { pads, .. } => {
            assert!(pads.is_empty(), "a2 must not be padded");
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn sec32_foo_object_subtyping_example() {
    // "Without object subtyping, the dual assignments of both a and b to
    // tmp cause their regions to be coalesced."
    let src = "
        class M {
          static void foo(Object a, Object b, bool c) {
            Object tmp;
            if (c) { tmp = a; } else { tmp = b; }
          }
        }";
    let (p_none, _) = infer_source(src, InferOptions::with_mode(SubtypeMode::None)).unwrap();
    let (p_obj, _) = infer_source(src, InferOptions::with_mode(SubtypeMode::Object)).unwrap();
    let pre_of = |p: &RProgram| {
        let m = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method_name(*id) == "foo")
            .unwrap()
            .1;
        (m.mparams[0], m.mparams[1], m.precondition.clone())
    };
    let (ra, rb, pre) = pre_of(&p_none);
    assert!(Solver::from_set(&pre).entails_atom(Atom::eq(ra, rb)));
    let (ra, rb, pre) = pre_of(&p_obj);
    assert!(!Solver::from_set(&pre).entails_atom(Atom::eq(ra, rb)));
}

#[test]
fn annotation_density_is_paper_scale() {
    // Sec 6: "the region annotations occur in around 12.3% of the
    // programs' lines" — our annotation-site count over source lines
    // should be the same order of magnitude.
    let mut total_sites = 0usize;
    let mut total_lines = 0usize;
    for b in cj_benchmarks::regjava_benchmarks() {
        let kp = cj_frontend::typecheck::check_source(b.source).unwrap();
        total_sites += cj_bench_sites(&kp);
        total_lines += cj_benchmarks::source_lines(&b);
    }
    let density = total_sites as f64 / total_lines as f64;
    assert!(
        density > 0.03 && density < 0.4,
        "annotation density {density} out of plausible range"
    );
}

fn cj_bench_sites(kp: &cj_frontend::KProgram) -> usize {
    let table = &kp.table;
    let mut n = 0;
    for info in table.classes() {
        if info.id == cj_frontend::ClassId::OBJECT {
            continue;
        }
        n += 1;
        n += info
            .own_fields
            .iter()
            .filter(|f| f.ty.is_reference())
            .count();
        n += info.own_methods.len();
    }
    n + table.statics().len()
}
