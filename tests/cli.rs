//! End-to-end tests of the `cjrc` binary: exit codes, JSON diagnostics on
//! ill-formed input, and the annotate/run outputs.

use std::io::Write;
use std::process::Command;

fn cjrc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cjrc"))
        .args(args)
        .output()
        .expect("cjrc runs")
}

fn temp_source(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("cjrc-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp source");
    f.write_all(contents.as_bytes()).expect("write temp source");
    path
}

#[test]
fn infer_json_on_ill_formed_program_emits_structured_diagnostics() {
    let path = temp_source("ill.cj", "class A { Pear p; }\n");
    let out = cjrc(&["infer", path.to_str().unwrap(), "--json"]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // A JSON array of diagnostics with code, message and span line/col.
    assert!(stdout.trim_start().starts_with('['), "not JSON: {stdout}");
    assert!(stdout.contains("\"severity\":\"error\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"E0200\""), "{stdout}");
    assert!(stdout.contains("unknown class `Pear`"), "{stdout}");
    assert!(
        stdout.contains("\"span\":{\"lo\":10,\"hi\":17,\"line\":1,\"col\":11}"),
        "{stdout}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn infer_renders_caret_snippets_without_json() {
    let path = temp_source("caret.cj", "class A { Pear p; }\n");
    let out = cjrc(&["infer", path.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("error[E0200]: unknown class `Pear`"),
        "{stderr}"
    );
    assert!(stderr.contains("^^^^^^^"), "{stderr}");
    assert!(stderr.contains("class A { Pear p; }"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn infer_annotates_well_formed_programs() {
    let path = temp_source(
        "ok.cj",
        "class Pair { Object fst; Object snd;
           void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
         }",
    );
    let out = cjrc(&["infer", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("class Pair<"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn extents_flag_selects_liveness_placement_end_to_end() {
    // A trailing tail after the last use of `b`'s region: liveness
    // placement must keep the result and prints identical while the JSON
    // reports the mode it compiled under.
    let path = temp_source(
        "extents.cj",
        "class Box { int v; }
         class M { static int main(int n) {
             Box b = new Box(n);
             int out = b.v;
             print(out);
             out + 1
         } }",
    );
    let file = path.to_str().unwrap();
    let paper = cjrc(&["run", file, "--extents", "paper", "--json", "6"]);
    let live = cjrc(&["run", file, "--extents", "liveness", "--json", "6"]);
    assert!(paper.status.success() && live.status.success());
    let paper = String::from_utf8(paper.stdout).unwrap();
    let live = String::from_utf8(live.stdout).unwrap();
    assert!(paper.contains("\"extents\":\"paper\""), "{paper}");
    assert!(live.contains("\"extents\":\"liveness\""), "{live}");
    for out in [&paper, &live] {
        assert!(out.contains("\"result\":\"7\""), "{out}");
        assert!(out.contains("\"prints\":[\"6\"]"), "{out}");
    }
    let check = cjrc(&["check", file, "--extents", "liveness"]);
    assert!(check.status.success());
    let stdout = String::from_utf8(check.stdout).unwrap();
    assert!(
        stdout.contains("well-region-typed (field-sub; liveness extents)"),
        "{stdout}"
    );
    let bad = cjrc(&["check", file, "--extents", "nll"]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8(bad.stderr).unwrap();
    assert!(stderr.contains("extent mode"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_executes_main_with_arguments() {
    let path = temp_source("run.cj", "class M { static int main(int n) { n * 3 } }");
    let out = cjrc(&["run", path.to_str().unwrap(), "14"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("result: 42"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_engines_produce_identical_output() {
    let path = temp_source(
        "engines.cj",
        "class List { int v; List next; }
         class M {
           static List build(int n) {
             if (n == 0) { (List) null } else { new List(n, build(n - 1)) }
           }
           static int main(int n) { print(n); if (build(n) != null) { n } else { 0 } }
         }",
    );
    let vm = cjrc(&["run", path.to_str().unwrap(), "--engine", "vm", "8"]);
    let interp = cjrc(&["run", path.to_str().unwrap(), "--engine", "interp", "8"]);
    assert!(vm.status.success() && interp.status.success());
    assert_eq!(
        String::from_utf8(vm.stdout).unwrap(),
        String::from_utf8(interp.stdout).unwrap(),
        "engines must print identical results and space lines"
    );
    // The default engine is the VM, surfaced in --json.
    let json = cjrc(&["run", path.to_str().unwrap(), "--json", "8"]);
    let stdout = String::from_utf8(json.stdout).unwrap();
    assert!(stdout.contains("\"engine\":\"vm\""), "{stdout}");
    assert!(stdout.contains("\"steps\":"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn run_limits_surface_structured_errors() {
    let path = temp_source(
        "limits.cj",
        "class M { static int spin(int n) { spin(n + 1) } static int main() { spin(0) } }",
    );
    for engine in ["vm", "interp"] {
        let out = cjrc(&[
            "run",
            path.to_str().unwrap(),
            "--engine",
            engine,
            "--max-depth",
            "50",
        ]);
        assert!(!out.status.success());
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error[E0600]: call depth limit exceeded"),
            "[{engine}] {stderr}"
        );
        let out = cjrc(&[
            "run",
            path.to_str().unwrap(),
            "--engine",
            engine,
            "--fuel",
            "100",
        ]);
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("error[E0600]: step limit exceeded"),
            "[{engine}] {stderr}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn run_json_reports_result_and_space() {
    let path = temp_source("runjson.cj", "class M { static int main(int n) { n + 1 } }");
    let out = cjrc(&["run", path.to_str().unwrap(), "--json", "41"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"result\":\"42\""), "{stdout}");
    assert!(stdout.contains("\"space\""), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn infer_with_cache_dir_warm_restarts_bit_identically() {
    let path = temp_source(
        "cached.cj",
        "class List { Object value; List next;
           Object getValue() { this.value }
           static List join(List xs, List ys) {
             if (xs == null) { ys } else { new List(xs.getValue(), join(xs.next, ys)) }
           }
         }",
    );
    let cache = std::env::temp_dir().join(format!("cjrc-test-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // Invocation 1 populates the cache; invocation 2 (a fresh process)
    // must report disk hits and print byte-identical JSON output.
    let cold = cjrc(&[
        "infer",
        path.to_str().unwrap(),
        "--json",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(cold.status.success());
    let cold_stdout = String::from_utf8(cold.stdout).unwrap();
    assert!(
        cold_stdout.contains("\"sccs_disk_hits\":0"),
        "{cold_stdout}"
    );
    // One-shot runs append to the journal only (it auto-compacts into a
    // snapshot past its byte budget; the daemon compacts at shutdown).
    assert!(cache.join("sccs.journal").exists(), "cache not written");

    let warm = cjrc(&[
        "infer",
        path.to_str().unwrap(),
        "--json",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(warm.status.success());
    let warm_stdout = String::from_utf8(warm.stdout).unwrap();
    assert!(
        warm_stdout.contains("\"sccs_solved\":0"),
        "warm run must solve nothing: {warm_stdout}"
    );
    let disk_hits: usize = warm_stdout
        .split("\"sccs_disk_hits\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .expect("stats carry sccs_disk_hits");
    assert!(disk_hits >= 1, "{warm_stdout}");
    // Identical annotation — only the reuse counters may differ.
    let annotated = |s: &str| {
        s.split("\"annotated\":")
            .nth(1)
            .unwrap()
            .split(",\"stats\"")
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(annotated(&cold_stdout), annotated(&warm_stdout));

    // A mangled cache cold-starts (exit 0, same annotation, no hits).
    std::fs::write(cache.join("sccs.snapshot"), b"junk").unwrap();
    std::fs::write(cache.join("sccs.journal"), b"more junk").unwrap();
    let recovered = cjrc(&[
        "infer",
        path.to_str().unwrap(),
        "--json",
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    assert!(recovered.status.success(), "corruption must not fail");
    let rec_stdout = String::from_utf8(recovered.stdout).unwrap();
    assert!(rec_stdout.contains("\"sccs_disk_hits\":0"), "{rec_stdout}");
    assert_eq!(annotated(&cold_stdout), annotated(&rec_stdout));

    std::fs::remove_file(path).ok();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn usage_errors_exit_2() {
    let out = cjrc(&["explode"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command `explode`"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    let out = cjrc(&["infer", "x.cj", "--mode", "both"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown subtype mode `both`"), "{stderr}");
}

#[test]
fn missing_file_is_an_io_diagnostic() {
    let out = cjrc(&["check", "/nonexistent/missing.cj", "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"code\":\"E0701\""), "{stdout}");
    assert!(stdout.contains("missing.cj"), "{stdout}");
}

/// A program with a downcast the `E` allocation can never satisfy (Sec 5
/// bound-to-fail): `check` must surface the warning, not only `flows`.
const DOOMED: &str = "
class A { Object f1; }
class B extends A { Object f2; }
class E extends A { Object f3; Object f4; }
class M {
  static void main(bool c) {
    A a;
    if (c) { a = new B(null, null); } else { a = new E(null, null, null); }
    B b = (B) a;
  }
}";

#[test]
fn check_surfaces_bound_to_fail_warnings_in_caret_mode() {
    let path = temp_source("doomed.cj", DOOMED);
    let out = cjrc(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "warnings must not fail the build");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("well-region-typed"), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("can never satisfy the downcasts"),
        "{stderr}"
    );
    assert!(stderr.contains("warning[E0500]"), "{stderr}");
    assert!(stderr.contains("~~~"), "warning caret marker: {stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_surfaces_bound_to_fail_warnings_in_json_mode() {
    let path = temp_source("doomedjson.cj", DOOMED);
    let out = cjrc(&["check", path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"status\":\"well-region-typed\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"warnings\":["), "{stdout}");
    assert!(stdout.contains("\"severity\":\"warning\""), "{stdout}");
    assert!(stdout.contains("\"code\":\"E0500\""), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn clean_check_reports_empty_warning_list_in_json() {
    let path = temp_source("cleanjson.cj", "class A { }");
    let out = cjrc(&["check", path.to_str().unwrap(), "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"warnings\":[\n]"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn serve_speaks_json_lines_and_observes_incrementality() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let mut child = Command::new(env!("CARGO_BIN_EXE_cjrc"))
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("cjrc serve starts");
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ask = |req: &str| -> String {
        writeln!(stdin, "{req}").expect("write request");
        lines.next().expect("one response per request").unwrap()
    };

    let r = ask(
        r#"{"cmd":"open","file":"cell.cj","text":"class Cell { Object item; Object get() { this.item } }"}"#,
    );
    assert!(
        r.contains("\"ok\":true") && r.contains("\"revision\":1"),
        "{r}"
    );
    let r = ask(
        r#"{"cmd":"open","file":"use.cj","text":"class M { static Object f(Cell c) { c.get() } }"}"#,
    );
    assert!(r.contains("\"revision\":2"), "{r}");

    let cold = ask(r#"{"cmd":"check"}"#);
    assert!(cold.contains("\"status\":\"well-region-typed\""), "{cold}");
    assert!(cold.contains("\"parse\":2"), "{cold}");

    // Edit one method body: the response's passes_executed must show one
    // re-parse, one re-inferred body, and SCC-solve reuse.
    let r = ask(
        r#"{"cmd":"edit","file":"use.cj","text":"class M { static Object f(Cell c) { c.get(); c.get() } }"}"#,
    );
    assert!(r.contains("\"revision\":3"), "{r}");
    let warm = ask(r#"{"cmd":"check"}"#);
    assert!(warm.contains("\"parse\":1"), "{warm}");
    assert!(warm.contains("\"methods_inferred\":1"), "{warm}");
    assert!(warm.contains("\"methods_reused\":1"), "{warm}");

    let q = ask(r#"{"cmd":"query","invariant":"Cell"}"#);
    assert!(q.contains("\"abs\":\"inv.Cell<"), "{q}");
    let e = ask(r#"{"cmd":"query","invariant":"Cell","entails":"r2>=r1"}"#);
    assert!(e.contains("\"entails\":true"), "{e}");

    let bye = ask(r#"{"cmd":"shutdown"}"#);
    assert!(bye.contains("\"status\":\"bye\""), "{bye}");
    let status = child.wait().expect("server exits");
    assert!(status.success());
}

#[test]
fn check_reports_mode_in_canonical_spelling() {
    let path = temp_source("mode.cj", "class A { }");
    let out = cjrc(&["check", path.to_str().unwrap(), "--mode", "object"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("well-region-typed (object-sub)"),
        "{stdout}"
    );
    std::fs::remove_file(path).ok();
}

// ---- policy and query commands ---------------------------------------------

const POLICY_PROGRAM: &str = "class Cell { Object v; }
class Box { Cell c;
  void fill() { this.c = new Cell(null); }
}
class M {
  static Cell leak() { new Cell(null) }
  static void main() { Box b = new Box(null); b.fill(); }
}
";

#[test]
fn check_policy_reports_violations_with_rule_label() {
    let prog = temp_source("polviol.cj", POLICY_PROGRAM);
    let rules = temp_source("polviol.cjpolicy", "no-escape Cell\n");
    let out = cjrc(&[
        "check",
        prog.to_str().unwrap(),
        "--policy",
        rules.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "violation must exit non-zero");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[E0711]"), "{stderr}");
    assert!(stderr.contains("must not escape"), "{stderr}");
    assert!(stderr.contains("new Cell(null)"), "caret snippet: {stderr}");
    assert!(
        stderr.contains("rule `no-escape Cell` declared here"),
        "{stderr}"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 policy violation(s)"), "{stdout}");
    std::fs::remove_file(prog).ok();
    std::fs::remove_file(rules).ok();
}

#[test]
fn check_policy_json_reports_status_and_diagnostics() {
    let prog = temp_source("poljson.cj", POLICY_PROGRAM);
    let rules = temp_source("poljson.cjpolicy", "no-escape Cell\n");
    let out = cjrc(&[
        "check",
        prog.to_str().unwrap(),
        "--policy",
        rules.to_str().unwrap(),
        "--json",
    ]);
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("\"status\":\"policy-violations\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"rules\":1"), "{stdout}");
    assert!(stdout.contains("\"violations\":1"), "{stdout}");
    assert!(stdout.contains("\"code\":\"E0711\""), "{stdout}");
    assert!(
        stdout.contains("rule `no-escape Cell` declared here"),
        "{stdout}"
    );
    std::fs::remove_file(prog).ok();
    std::fs::remove_file(rules).ok();
}

#[test]
fn check_policy_clean_program_passes() {
    let prog = temp_source("polok.cj", POLICY_PROGRAM);
    // `confine Cell to Box` alone is satisfied by `Box.fill`… except for
    // `leak`, so confine the never-allocated class instead for a clean run.
    let rules = temp_source("polok.cjpolicy", "no-escape M\n");
    let out = cjrc(&[
        "check",
        prog.to_str().unwrap(),
        "--policy",
        rules.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8(out.stderr.clone()).unwrap();
    assert!(
        out.status.success(),
        "clean policy must exit zero: {stderr}"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("policy-ok (1 rule(s))"), "{stdout}");

    let out = cjrc(&[
        "check",
        prog.to_str().unwrap(),
        "--policy",
        rules.to_str().unwrap(),
        "--json",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"status\":\"policy-ok\""), "{stdout}");
    assert!(stdout.contains("\"violations\":0"), "{stdout}");
    std::fs::remove_file(prog).ok();
    std::fs::remove_file(rules).ok();
}

#[test]
fn check_policy_malformed_rules_are_policy_errors() {
    let prog = temp_source("polbad.cj", POLICY_PROGRAM);
    let rules = temp_source("polbad.cjpolicy", "no-escape\n");
    let out = cjrc(&[
        "check",
        prog.to_str().unwrap(),
        "--policy",
        rules.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error[E0710]"), "{stderr}");
    std::fs::remove_file(prog).ok();
    std::fs::remove_file(rules).ok();
}

#[test]
fn query_prints_abstractions_and_entailment() {
    let prog = temp_source("query.cj", POLICY_PROGRAM);
    let path = prog.to_str().unwrap();

    let out = cjrc(&["query", path, "inv.Cell"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("inv.Cell<"), "{stdout}");
    assert!(stdout.contains(">="), "{stdout}");

    let out = cjrc(&["query", path, "inv.Cell", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"name\":\"inv.Cell\""), "{stdout}");
    assert!(stdout.contains("\"params\":2"), "{stdout}");
    assert!(stdout.contains("\"abs\":\"inv.Cell<"), "{stdout}");

    let out = cjrc(&["query", path, "inv.Cell", "--entails", "r2>=r1"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.trim(), "inv.Cell entails r2>=r1: true");

    let out = cjrc(&["query", path, "inv.Cell", "--entails", "r1>=r2", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"entails\":false"), "{stdout}");

    let out = cjrc(&["query", path, "inv.Ghost"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown abstraction `inv.Ghost`"),
        "{stderr}"
    );
    std::fs::remove_file(prog).ok();
}

// ---- observability ----------------------------------------------------------

#[test]
fn trace_out_writes_chrome_trace_and_trace_summary_reads_it_back() {
    let prog = temp_source(
        "traced.cj",
        "class Cell { Object item; Object get() { this.item } }
         class M { static int main(int n) {
             Cell c = new Cell(null); c.get(); n + 1 } }",
    );
    let trace =
        std::env::temp_dir().join(format!("cjrc-test-{}-run.trace.json", std::process::id()));
    let out = cjrc(&[
        "run",
        prog.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
        "41",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("42"), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("trace event(s)"), "{stderr}");

    // The file is Chrome trace-event JSON with the pipeline phases.
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.starts_with("{\"traceEvents\":["), "{text}");
    for phase in [
        "\"parse\"",
        "\"typecheck\"",
        "\"infer\"",
        "\"solve-scc\"",
        "\"lower\"",
        "\"vm-exec\"",
    ] {
        assert!(text.contains(phase), "trace lacks {phase}: {text}");
    }
    assert!(text.contains("\"ph\":\"X\""), "{text}");

    // trace-summary renders the per-phase self-time table from it.
    let out = cjrc(&["trace-summary", trace.to_str().unwrap()]);
    assert!(out.status.success());
    let table = String::from_utf8(out.stdout).unwrap();
    assert!(table.contains("phase"), "{table}");
    assert!(table.contains("self(us)"), "{table}");
    assert!(table.contains("solve-scc"), "{table}");
    assert!(table.contains("vm-exec"), "{table}");

    // Malformed input is a structured error, not a panic.
    let bogus = temp_source("bogus.trace.json", "{\"not\":\"a trace\"}");
    let out = cjrc(&["trace-summary", bogus.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("malformed trace"), "{stderr}");

    std::fs::remove_file(prog).ok();
    std::fs::remove_file(trace).ok();
    std::fs::remove_file(bogus).ok();
}

#[test]
fn tracing_stays_off_without_trace_out() {
    let prog = temp_source(
        "untraced.cj",
        "class M { static int main(int n) { n + 1 } }",
    );
    let out = cjrc(&["run", prog.to_str().unwrap(), "1"]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("trace event(s)"), "{stderr}");
    std::fs::remove_file(prog).ok();
}
