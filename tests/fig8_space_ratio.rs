//! Pinning tests for the Fig 8 Reynolds3 space-ratio drift.
//!
//! The paper reports a field-subtyping space ratio of **0.004** for
//! Reynolds3; this implementation currently measures **≈ 0.0125** (peak
//! 41 272 / total 3 314 552 bytes at tree depth 10). The gap is `letreg`
//! *placement depth*: our \[exp-block\] grouping binds one letreg per
//! conditional level of `search` (block depths 0..=3), so each recursion
//! frame's cons cell is reclaimed — hence ratio ≪ 1 — but lives for its
//! whole branch block, spanning both child recursions, instead of the
//! narrower extent the paper's placement achieves. Fixing the drift means
//! tightening those extents; these tests freeze today's behaviour and the
//! *expected direction* of any future change:
//!
//! - the ratio must never regress above ≈ 0.0125 (that would mean frames
//!   stopped reclaiming, back toward the no-subtyping ratio of 1.0);
//! - a correct improvement moves it down toward 0.004; anything below
//!   ~0.003 would beat the paper and deserves scrutiny, not celebration.

use region_inference::prelude::*;
use region_inference::runtime::RunConfig;

fn reynolds3_field() -> (std::sync::Arc<Compilation>, cj_runtime::Outcome) {
    let b = region_inference::benchmarks::by_name("Reynolds3").expect("registered");
    let mut session = Session::new(
        b.source,
        SessionOptions::with_infer(InferOptions::with_mode(SubtypeMode::Field)),
    );
    let compilation = session.check().expect("Reynolds3 compiles");
    let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
    let out = run_main_big_stack(&compilation.program, &args, RunConfig::default())
        .expect("Reynolds3 runs");
    (compilation, out)
}

#[test]
fn reynolds3_field_sub_space_ratio_is_pinned() {
    let (_, out) = reynolds3_field();
    let ratio = out.space.space_ratio();
    // Paper: 0.004. Current implementation: 0.0125 (documented drift).
    assert!(
        ratio < 0.014,
        "field-sub ratio regressed to {ratio:.4}; letreg placement must keep \
         reclaiming per-frame cells (paper target 0.004, current 0.0125)"
    );
    assert!(
        ratio > 0.003,
        "field-sub ratio {ratio:.4} beats the paper's 0.004 — if the letreg \
         placement improved, re-pin this band (previous value 0.0125)"
    );
    // Exact current behaviour, frozen: any movement is a deliberate change.
    assert!(
        (ratio - 0.0125).abs() < 0.0005,
        "space ratio drifted from the pinned 0.0125 to {ratio:.4}; if this \
         was an intentional letreg-placement change toward the paper's \
         0.004, update this pin and the ROADMAP entry"
    );
}

#[test]
fn reynolds3_letreg_placement_depth_is_pinned() {
    // The drift's mechanism, pinned structurally: `search` currently
    // carries one letreg per conditional level (depths 0..=3) — the
    // per-frame cell is bound at its branch block rather than coalesced
    // into the single tightest extent around the allocation-and-children
    // region the paper's placement implies.
    let (compilation, _) = reynolds3_field();
    let p = &compilation.program;
    let search = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method(*id).name.as_str() == "search")
        .expect("search exists")
        .1;
    assert!(
        !search.localized.is_empty(),
        "field subtyping must localize the per-frame cell"
    );

    // Collect the conditional-nesting depth of every letreg in `search`.
    fn letreg_depths(e: &cj_infer::RExpr, depth: usize, out: &mut Vec<usize>) {
        use cj_infer::RExprKind as K;
        match &e.kind {
            K::Letreg(_, inner) => {
                out.push(depth);
                letreg_depths(inner, depth, out);
            }
            K::If {
                cond,
                then_e,
                else_e,
            } => {
                letreg_depths(cond, depth, out);
                letreg_depths(then_e, depth + 1, out);
                letreg_depths(else_e, depth + 1, out);
            }
            K::While { cond, body } => {
                letreg_depths(cond, depth, out);
                letreg_depths(body, depth + 1, out);
            }
            K::Seq(a, b) | K::Binary(_, a, b) | K::AssignIndex(_, a, b) => {
                letreg_depths(a, depth, out);
                letreg_depths(b, depth, out);
            }
            K::AssignVar(_, a)
            | K::AssignField(_, _, a)
            | K::NewArray { len: a, .. }
            | K::Index(_, a)
            | K::Unary(_, a)
            | K::Print(a) => letreg_depths(a, depth, out),
            K::Let { init, body, .. } => {
                if let Some(i) = init {
                    letreg_depths(i, depth, out);
                }
                letreg_depths(body, depth, out);
            }
            _ => {}
        }
    }
    let mut depths = Vec::new();
    letreg_depths(&search.body, 0, &mut depths);
    assert!(
        !depths.is_empty(),
        "search must contain at least one letreg under field subtyping"
    );
    depths.sort_unstable();
    assert_eq!(
        depths,
        vec![0, 1, 2, 3],
        "pinned: search binds one letreg per conditional level. Any change \
         here is the letreg-placement work behind the 0.0125 → 0.004 Fig 8 \
         gap — re-pin deliberately (with the new ratio) when it lands"
    );
}

#[test]
fn reynolds3_space_stats_are_identical_on_the_vm() {
    // The pinned Fig 8 drift must hold on the bytecode VM too: its
    // bump-arena accounting reproduces the interpreter's SpaceStats
    // bit-for-bit, so the 0.0125 pin above covers both engines.
    let b = region_inference::benchmarks::by_name("Reynolds3").expect("registered");
    let mut session = Session::new(
        b.source,
        SessionOptions::with_infer(InferOptions::with_mode(SubtypeMode::Field)),
    );
    let compilation = session.check().expect("Reynolds3 compiles");
    let compiled = session.compiled().expect("Reynolds3 lowers");
    let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
    let vm = region_inference::vm::run_main(&compiled, &args, RunConfig::default())
        .expect("Reynolds3 runs on the VM");
    let interp =
        run_main_big_stack(&compilation.program, &args, RunConfig::default()).expect("runs");
    assert_eq!(vm.space, interp.space, "SpaceStats diverged across engines");
    assert_eq!(vm.value, interp.value);
    let ratio = vm.space.space_ratio();
    assert!(
        (ratio - 0.0125).abs() < 0.0005,
        "VM space ratio drifted from the pinned 0.0125 to {ratio:.4}"
    );
}

#[test]
fn reynolds3_mode_ordering_matches_fig8() {
    // Fig 8's qualitative ordering: no-sub = object-sub = 1.0 ≫ field-sub.
    let b = region_inference::benchmarks::by_name("Reynolds3").unwrap();
    let mut session = Session::new(b.source, SessionOptions::default());
    let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
    let mut ratios = Vec::new();
    for mode in SubtypeMode::ALL {
        let compilation = session.check_with(InferOptions::with_mode(mode)).unwrap();
        let out = run_main_big_stack(&compilation.program, &args, RunConfig::default()).unwrap();
        ratios.push(out.space.space_ratio());
    }
    assert!((ratios[0] - 1.0).abs() < 1e-9, "no-sub reclaims nothing");
    assert!(
        (ratios[1] - 1.0).abs() < 1e-9,
        "object-sub reclaims nothing"
    );
    assert!(ratios[2] < 0.02, "field-sub reclaims per-frame cells");
}

#[test]
fn reynolds3_liveness_extents_pin() {
    // The liveness row of the Fig 8 pin. Flow-sensitive extent inference
    // (`--extents liveness`) rewrites 4 of `search`'s letregs, but
    // Reynolds3's 0.0125 peak is *live-minimal* at region granularity:
    // the per-frame cons cell is passed into both child recursions, so
    // its (block-merged) region is genuinely live across the whole
    // branch block, and tightening extents cannot free it earlier. The
    // remaining 0.0125 → 0.004 gap is region *splitting* — un-merging
    // the one-letreg-per-block grouping so the cell's region can close
    // between the two child calls — not extent placement; see ROADMAP.
    //
    // Pinned honestly: liveness must never be worse than paper, must
    // stay below the 0.0125 band, and must agree across both engines.
    let b = region_inference::benchmarks::by_name("Reynolds3").expect("registered");
    let mut session = Session::new(b.source, SessionOptions::default());
    let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();

    let paper_opts = InferOptions::with_mode(SubtypeMode::Field);
    let live_opts = InferOptions {
        extent: ExtentMode::Liveness,
        ..paper_opts
    };
    let paper = session.check_with(paper_opts).expect("paper compiles");
    let paper_out = run_main_big_stack(&paper.program, &args, RunConfig::default()).expect("runs");
    let live = session.check_with(live_opts).expect("liveness compiles");
    let live_out = run_main_big_stack(&live.program, &args, RunConfig::default()).expect("runs");

    assert_eq!(paper_out.value, live_out.value, "modes changed the answer");
    assert_eq!(
        paper_out.space.total_allocated, live_out.space.total_allocated,
        "extent tightening changed what was allocated"
    );
    assert!(
        session.pass_counts().extent_rewrites >= 1,
        "liveness mode must actually rewrite Reynolds3 letregs"
    );
    assert!(
        live_out.space.peak_live <= paper_out.space.peak_live,
        "liveness peak {} exceeds paper peak {}",
        live_out.space.peak_live,
        paper_out.space.peak_live
    );
    let ratio = live_out.space.space_ratio();
    assert!(
        ratio < 0.0125,
        "liveness ratio {ratio:.6} must stay below the paper-mode 0.0125 band"
    );
    assert!(
        ratio > 0.003,
        "liveness ratio {ratio:.6} beats the paper's 0.004 — re-pin deliberately"
    );

    // Engine agreement under liveness placement, like the paper-mode pin.
    let compiled = session.compiled_with(live_opts).expect("lowers");
    let vm = region_inference::vm::run_main(&compiled, &args, RunConfig::default()).expect("runs");
    assert_eq!(
        vm.space, live_out.space,
        "SpaceStats diverged across engines"
    );
    assert_eq!(vm.value, live_out.value);
}
