//! Golden outputs: every benchmark's result on its test input is frozen
//! here. Any change to the front end, inference, or interpreter that
//! alters observable behaviour fails this suite.
//!
//! Several values are independently verifiable:
//! - sieve(500) = 95 primes ≤ 500;
//! - ackermann(2,3) = 9;
//! - merge sort returns the (preserved) list length, 200;
//! - treeadd(4) = 2⁴ − 1 = 15 nodes, each contributing 1;
//! - optimized life variants agree with naive life's final population for
//!   the same seed (the glider settles at the same count).

use region_inference::prelude::*;

const GOLDEN: &[(&str, &str)] = &[
    ("Sieve of Eratosthenes", "95"),
    ("Ackermann", "9"),
    ("Merge Sort", "200"),
    ("Mandelbrot", "30"),
    ("Naive Life", "27"),
    ("Optimized Life (array)", "9"),
    ("Optimized Life (dangling)", "9"),
    ("Optimized Life (stack)", "4"),
    ("Reynolds3", "0"),
    ("foo-sum", "255"),
    ("bisort", "1960"),
    ("em3d", "1"),
    ("health", "26"),
    ("mst", "213"),
    ("power", "1"),
    ("treeadd", "15"),
    ("tsp", "1"),
    ("perimeter", "324"),
    ("n-body", "1"),
    ("voronoi", "9"),
];

#[test]
fn benchmark_results_match_golden_values() {
    for (name, expected) in GOLDEN {
        let b = cj_benchmarks::by_name(name).expect("registered benchmark");
        let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            format!("{}", out.value),
            *expected,
            "{name}: output changed"
        );
    }
}

#[test]
fn independently_verifiable_values() {
    // treeadd(d) must be 2^d - 1.
    let b = cj_benchmarks::by_name("treeadd").unwrap();
    let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
    for d in 1..8 {
        let out = run_main_big_stack(&p, &[Value::Int(d)], RunConfig::default()).unwrap();
        assert_eq!(out.value, Value::Int((1 << d) - 1), "treeadd({d})");
    }
    // ackermann small values: ack(1,n) = n+2, ack(2,n) = 2n+3.
    let b = cj_benchmarks::by_name("Ackermann").unwrap();
    let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
    for n in 0..5 {
        let out =
            run_main_big_stack(&p, &[Value::Int(1), Value::Int(n)], RunConfig::default()).unwrap();
        assert_eq!(out.value, Value::Int(n + 2), "ack(1,{n})");
        let out =
            run_main_big_stack(&p, &[Value::Int(2), Value::Int(n)], RunConfig::default()).unwrap();
        assert_eq!(out.value, Value::Int(2 * n + 3), "ack(2,{n})");
    }
    // sieve: π(100) = 25, π(1000) = 168.
    let b = cj_benchmarks::by_name("Sieve of Eratosthenes").unwrap();
    let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
    for (n, primes) in [(100, 25), (1000, 168)] {
        let out = run_main_big_stack(&p, &[Value::Int(n)], RunConfig::default()).unwrap();
        assert_eq!(out.value, Value::Int(primes), "pi({n})");
    }
}

#[test]
fn life_variants_agree_on_population() {
    // All three optimized variants simulate the same 16x16 glider; the
    // array and dangling variants return the final population and must
    // agree with each other for any generation count.
    for gens in [1, 5, 10] {
        let mut pops = Vec::new();
        for name in ["Optimized Life (array)", "Optimized Life (dangling)"] {
            let b = cj_benchmarks::by_name(name).unwrap();
            let (p, _) = infer_source(b.source, InferOptions::default()).unwrap();
            let out = run_main_big_stack(&p, &[Value::Int(gens)], RunConfig::default()).unwrap();
            pops.push(format!("{}", out.value));
        }
        assert_eq!(pops[0], pops[1], "life variants diverge at {gens} gens");
    }
}
