//! Unit tests for the extent rewriter's individual narrowing rules:
//! trailing-tail trimming, unused-binding removal, loop/declaration
//! interaction — plus the point-graph invariants they rest on.

use cj_infer::localize::wrap_letreg;
use cj_infer::rast::{RExprKind, RMethod, RProgram};
use cj_infer::{infer_source, InferOptions};
use cj_liveness::extent::tighten_method;
use cj_liveness::points::PointGraph;
use cj_liveness::{ExtentInference, LivenessExtents};
use cj_regions::var::RegVar;
use cj_runtime::{run_main_big_stack, RunConfig, Value};

fn infer(src: &str) -> RProgram {
    let (p, _) = infer_source(src, InferOptions::default()).expect("inference");
    p
}

/// The single static method holding `main` in one-class test programs.
fn main_method(p: &RProgram) -> &RMethod {
    p.statics
        .iter()
        .find(|m| !m.localized.is_empty())
        .expect("a static method with a letreg")
}

fn main_method_mut(p: &mut RProgram) -> &mut RMethod {
    p.statics
        .iter_mut()
        .find(|m| !m.localized.is_empty())
        .expect("a static method with a letreg")
}

fn peak(p: &RProgram, args: &[Value]) -> usize {
    run_main_big_stack(p, args, RunConfig::default())
        .expect("runs")
        .space
        .peak_live
}

#[test]
fn trailing_tail_after_last_use_is_trimmed() {
    // `b`'s region is dead after `out = b.v`, but the paper's block-scoped
    // letreg keeps it until the end of the method body.
    let src = "class Box { int v; }
        class M { static int main(int n) {
            Box b = new Box(n);
            int out = b.v;
            int i = 0;
            while (i < 1000) { out = out + 1; i = i + 1; }
            out
        } }";
    let mut p = infer(src);
    let stats = tighten_method(main_method_mut(&mut p));
    assert_eq!(stats.letregs, 1);
    assert_eq!(stats.narrowed, 1, "the tail trim counts as a narrowing");
    assert_eq!(stats.dropped, 0);
    assert!(
        stats.extent_points_after < stats.extent_points_before,
        "extent must strictly shrink: {} !< {}",
        stats.extent_points_after,
        stats.extent_points_before
    );
    cj_check::check(&p).expect("still region-checks");
}

#[test]
fn freeing_early_lowers_peak_when_the_tail_allocates() {
    // `c` sits in a nested block, so localization gives it a letreg of
    // its own (regions within one block share a single binding, so the
    // same-block version of this program cannot split). Under paper
    // placement `b`'s region is still open when `c` is allocated, so the
    // peak holds both boxes; liveness packs `b`'s region into `out`'s
    // initializer and pops it before the branch allocates.
    let src = "class Box { int v; }
        class M { static int main(int n) {
            Box b = new Box(n);
            int out = b.v;
            int res = 0;
            if (n > 0) { Box c = new Box(out); res = c.v; } else { res = out; }
            res
        } }";
    let paper = infer(src);
    let mut live = paper.clone();
    let stats = LivenessExtents.rewrite_program(&mut live);
    assert!(stats.narrowed >= 1);
    cj_check::check(&live).expect("still region-checks");
    let args = [Value::Int(5)];
    let (pp, lp) = (peak(&paper, &args), peak(&live, &args));
    assert!(
        lp < pp,
        "expected a strict peak win: liveness {lp} vs paper {pp}"
    );
}

#[test]
fn unused_letreg_binding_is_dropped() {
    let src = "class M { static int main(int n) { n + 1 } }";
    let mut p = infer(src);
    let m = p
        .statics
        .iter_mut()
        .find(|m| m.localized.is_empty())
        .expect("main has no letregs of its own");
    // Graft a letreg whose region nothing uses; the rewriter must erase it.
    let ghost = RegVar(9_999);
    m.body = wrap_letreg(ghost, m.body.clone());
    m.localized.push(ghost);
    let stats = tighten_method(m);
    assert_eq!(stats.dropped, 1);
    assert!(m.localized.is_empty(), "dropped binding leaves `localized`");
    assert!(
        !matches!(m.body.kind, RExprKind::Letreg(_, _)),
        "the ghost letreg is gone"
    );
    cj_check::check(&p).expect("still region-checks");
    let out = run_main_big_stack(&p, &[Value::Int(41)], RunConfig::default()).unwrap();
    assert_eq!(out.value.to_string(), "42");
}

#[test]
fn declaration_before_loop_pins_the_extent_across_iterations() {
    // `b` is declared before the loop and reassigned inside it: the
    // declaration counts as a use, so the letreg may not sink into the
    // loop body (that would free per-iteration data `b` still carries).
    let src = "class Box { int v; }
        class M { static int main(int n) {
            Box b = new Box(0);
            int i = 0;
            while (i < n) { b = new Box(i); i = i + 1; }
            b.v
        } }";
    let mut p = infer(src);
    tighten_method(main_method_mut(&mut p));
    cj_check::check(&p).expect("still region-checks");
    let m = main_method(&p);
    let g = PointGraph::build(m);
    assert!(g.extents_cover_uses());
    // The rewritten extent still covers every use, including the
    // declaration point before the loop and the read after it.
    for &(r, push, pop) in &g.letregs {
        for u in g.use_points(r) {
            assert!(u >= push && u <= pop, "use {u} outside [{push}, {pop}]");
        }
    }
    let out = run_main_big_stack(&p, &[Value::Int(4)], RunConfig::default()).unwrap();
    assert_eq!(out.value.to_string(), "3");
}

#[test]
fn point_graph_liveness_covers_loop_back_edges() {
    let src = "class Box { int v; }
        class M { static int main(int n) {
            Box b = new Box(0);
            int i = 0;
            while (i < n) { b = new Box(i); i = i + 1; }
            b.v
        } }";
    let p = infer(src);
    let m = main_method(&p);
    let g = PointGraph::build(m);
    assert!(g.extents_cover_uses());
    let of: std::collections::BTreeSet<RegVar> = m.localized.iter().copied().collect();
    let live = g.liveness(&of);
    for &(r, push, pop) in &g.letregs {
        // Live on entry (some path reaches a use), at every use point —
        // including the loop-body uses reached via the back edge — and
        // dead by the pop (the final read precedes it).
        assert!(live[push].contains(&r), "region dead at its own push");
        for u in g.use_points(r) {
            assert!(live[u].contains(&r), "region dead at its own use {u}");
        }
        assert!(
            !live[pop].contains(&r),
            "region {r:?} still live at its pop point {pop}"
        );
    }
}
