//! Differential correctness of the liveness extent pass: rewriting
//! `letreg` extents must never change *observable* behaviour — value,
//! prints, error variant and span — on either engine, must keep the
//! program region-checker-valid, and must never make peak live space
//! worse.
//!
//! Three layers, mirroring how this repo validates the VM:
//!
//! - the full Fig 8/9 benchmark suite at test inputs;
//! - random well-typed-by-construction recursive programs (the same
//!   shape family as the VM differential suite);
//! - deterministic fault programs pinning error variant + span identity.

use cj_benchmarks::all_benchmarks;
use cj_infer::rast::RProgram;
use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_liveness::{ExtentInference, LivenessExtents};
use cj_runtime::{run_main_big_stack, RunConfig, Value};
use proptest::prelude::*;

/// Paper-placement program plus its liveness-tightened rewrite, both
/// region-checked.
fn both_modes(src: &str, opts: InferOptions) -> (RProgram, RProgram) {
    let (paper, _) = infer_source(src, opts).expect("inference");
    cj_check::check(&paper).expect("paper-mode program checks");
    let mut live = paper.clone();
    LivenessExtents.rewrite_program(&mut live);
    cj_check::check(&live)
        .unwrap_or_else(|e| panic!("liveness-rewritten program must still region-check: {e}"));
    (paper, live)
}

struct Observed {
    value: String,
    prints: Vec<String>,
    space: cj_runtime::SpaceStats,
}

fn run_both_engines(p: &RProgram, args: &[Value], label: &str) -> Observed {
    let compiled = cj_vm::lower_program(p);
    let vm = cj_vm::run_main(&compiled, args, RunConfig::default())
        .unwrap_or_else(|e| panic!("[{label}] vm: {e}"));
    let interp = run_main_big_stack(p, args, RunConfig::default())
        .unwrap_or_else(|e| panic!("[{label}] interp: {e}"));
    assert_eq!(
        vm.value.to_string(),
        interp.value.to_string(),
        "[{label}] engines diverged on value"
    );
    assert_eq!(
        vm.prints, interp.prints,
        "[{label}] engines diverged on prints"
    );
    assert_eq!(
        vm.space, interp.space,
        "[{label}] engines diverged on space"
    );
    Observed {
        value: vm.value.to_string(),
        prints: vm.prints,
        space: vm.space,
    }
}

fn assert_mode_identical(paper: &Observed, live: &Observed, label: &str) {
    assert_eq!(
        paper.value, live.value,
        "[{label}] value changed across modes"
    );
    assert_eq!(
        paper.prints, live.prints,
        "[{label}] prints changed across modes"
    );
    assert_eq!(
        paper.space.total_allocated, live.space.total_allocated,
        "[{label}] extent placement must not change what is allocated"
    );
    assert_eq!(
        paper.space.objects_allocated, live.space.objects_allocated,
        "[{label}] extent placement must not change allocation count"
    );
    assert!(
        live.space.peak_live <= paper.space.peak_live,
        "[{label}] liveness extents made peak live WORSE: {} > {}",
        live.space.peak_live,
        paper.space.peak_live
    );
}

#[test]
fn all_benchmarks_are_mode_identical_and_peak_no_worse() {
    for b in all_benchmarks() {
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        for mode in SubtypeMode::ALL {
            let label = format!("{} [{mode}]", b.name);
            let (paper, live) = both_modes(b.source, InferOptions::with_mode(mode));
            let obs_paper = run_both_engines(&paper, &args, &label);
            let obs_live = run_both_engines(&live, &args, &label);
            assert_mode_identical(&obs_paper, &obs_live, &label);
        }
    }
}

#[test]
fn fault_spans_are_mode_identical() {
    let cases: &[(&str, &[Value])] = &[
        (
            "class Node { int v; Node next; }
             class M {
               static int walk(Node n, int k) {
                 if (k == 0) { n.v } else { walk(n.next, k - 1) }
               }
               static int main(int k) { walk(new Node(7, (Node) null), k) }
             }",
            &[Value::Int(3)],
        ),
        (
            "class M { static int main(int a, int b) { (a + b) / (a - b) } }",
            &[Value::Int(4), Value::Int(4)],
        ),
        (
            "class A { int x; } class B extends A { int y; }
             class M {
               static A pick(bool f) { if (f) { new B(1, 2) } else { new A(3) } }
               static int main(bool f) { B b = (B) pick(f); b.y }
             }",
            &[Value::Bool(false)],
        ),
    ];
    for (src, args) in cases {
        let (paper, live) = both_modes(src, InferOptions::default());
        for (p, label) in [(&paper, "paper"), (&live, "liveness")] {
            let compiled = cj_vm::lower_program(p);
            let vm = cj_vm::run_main(&compiled, args, RunConfig::default()).unwrap_err();
            let interp = run_main_big_stack(p, args, RunConfig::default()).unwrap_err();
            assert_eq!(vm, interp, "[{label}] error variant diverged:\n{src}");
            assert_eq!(
                vm.span(),
                interp.span(),
                "[{label}] error span diverged:\n{src}"
            );
        }
        let p_err = run_main_big_stack(&paper, args, RunConfig::default()).unwrap_err();
        let l_err = run_main_big_stack(&live, args, RunConfig::default()).unwrap_err();
        assert_eq!(
            p_err, l_err,
            "error variant changed across extent modes:\n{src}"
        );
        assert_eq!(
            p_err.span(),
            l_err.span(),
            "error span changed across extent modes:\n{src}"
        );
    }
}

// ---- random programs (generator shared in spirit with the VM suite) -------

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    Copy(usize, usize),
    Store(usize, usize),
    Print(usize),
    Branch(Box<Op>),
    Loop(Box<Op>),
}

fn arb_op(nvars: usize) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Op::Alloc),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Copy(a, b)),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Store(a, b)),
        (0..nvars).prop_map(Op::Print),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|op| Op::Branch(Box::new(op))),
            inner.prop_map(|op| Op::Loop(Box::new(op))),
        ]
    })
}

fn render(nclasses: usize, nvars: usize, ops: &[Op]) -> String {
    let mut s = String::new();
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "class C{c} {{ int tag; C{target} link; C{c} self; }}\n"
        ));
    }
    s.push_str("class Gen {\n");
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "  static C{c} mk{c}(int depth) {{\n\
             \x20   if (depth <= 0) {{ (C{c}) null }}\n\
             \x20   else {{ new C{c}(depth, mk{target}(depth - 1), mk{c}(depth - 2)) }}\n\
             \x20 }}\n"
        ));
    }
    s.push_str("  static int main(bool flag) {\n");
    for v in 0..nvars {
        s.push_str(&format!("    C0 v{v} = mk0(2);\n"));
    }
    let mut loop_id = 0u32;
    for op in ops {
        render_op(op, &mut s, 4, &mut loop_id);
    }
    s.push_str("    int alive = 0;\n");
    for v in 0..nvars {
        s.push_str(&format!(
            "    if (v{v} != null) {{ alive = alive + v{v}.tag; }}\n"
        ));
    }
    s.push_str("    print(alive);\n    alive\n  }\n}\n");
    s
}

fn render_op(op: &Op, s: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = " ".repeat(indent);
    match op {
        Op::Alloc(v) => s.push_str(&format!("{pad}v{v} = mk0(3);\n")),
        Op::Copy(a, b) => s.push_str(&format!("{pad}v{a} = v{b};\n")),
        Op::Store(a, b) => s.push_str(&format!("{pad}if (v{a} != null) {{ v{a}.self = v{b}; }}\n")),
        Op::Print(v) => s.push_str(&format!("{pad}if (v{v} != null) {{ print(v{v}.tag); }}\n")),
        Op::Branch(inner) => {
            s.push_str(&format!("{pad}if (flag) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}}}\n"));
        }
        Op::Loop(inner) => {
            let id = *loop_id;
            *loop_id += 1;
            s.push_str(&format!("{pad}int gl{id} = 0;\n"));
            s.push_str(&format!("{pad}while (gl{id} < 3) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}  gl{id} = gl{id} + 1;\n{pad}}}\n"));
        }
    }
}

fn clamp_op(op: &Op, nvars: usize) -> Op {
    match op {
        Op::Alloc(v) => Op::Alloc(v % nvars),
        Op::Copy(a, b) => Op::Copy(a % nvars, b % nvars),
        Op::Store(a, b) => Op::Store(a % nvars, b % nvars),
        Op::Print(v) => Op::Print(v % nvars),
        Op::Branch(inner) => Op::Branch(Box::new(clamp_op(inner, nvars))),
        Op::Loop(inner) => Op::Loop(Box::new(clamp_op(inner, nvars))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_recursive_programs_are_mode_identical(
        nclasses in 1usize..4,
        nvars in 1usize..4,
        ops in proptest::collection::vec(arb_op(3), 0..6),
        flag in any::<bool>(),
    ) {
        let ops: Vec<Op> = ops.iter().map(|op| clamp_op(op, nvars)).collect();
        let src = render(nclasses, nvars, &ops);
        for mode in SubtypeMode::ALL {
            let (paper, live) = both_modes(&src, InferOptions::with_mode(mode));
            let args = [Value::Bool(flag)];
            let obs_paper = run_both_engines(&paper, &args, &format!("{mode} paper"));
            let obs_live = run_both_engines(&live, &args, &format!("{mode} liveness"));
            assert_mode_identical(&obs_paper, &obs_live, &mode.to_string());
        }
    }
}
