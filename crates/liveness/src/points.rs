//! The per-method control-flow point graph and the backward liveness
//! solver over it.
//!
//! Every annotated expression node gets one *action point* (its "do the
//! operation" moment), emitted in evaluation order after its children's
//! points; `if` gets an extra join point, `while` an extra exit point, and
//! `letreg` a push point before and a pop point after its body. Successor
//! edges follow evaluation order, branch at conditionals, and carry the
//! loop back edge from a body's last point to its condition — the graph a
//! region is "a set of points of" in the NLL design.
//!
//! A point *uses* a region variable when the operation at that point could
//! touch data in the region: the node's annotated type, operand variables'
//! types, allocation regions, call instantiations, cast targets — and, by
//! design, a `let` declaration uses every region of the declared variable's
//! type. Because the region system is flow-insensitive, everything
//! reachable from a variable lives in the regions of the variable's type,
//! so these syntactic use points cover every dynamic access; the
//! declaration rule additionally pins a region wherever a variable *could*
//! carry it, which is what makes extent rewriting across loop iterations
//! sound (no binding outside an extent can smuggle a stale pointer back
//! in).

use cj_infer::rast::{RExpr, RExprKind, RMethod, RType};
use cj_regions::var::RegVar;
use std::collections::BTreeSet;

/// One control-flow point.
#[derive(Debug, Clone, Default)]
pub struct Point {
    /// Regions used at this point.
    pub uses: BTreeSet<RegVar>,
    /// Successor points.
    pub succs: Vec<usize>,
}

/// The per-method point graph.
#[derive(Debug, Clone, Default)]
pub struct PointGraph {
    /// Points, in emission (evaluation) order.
    pub points: Vec<Point>,
    /// Per-`letreg` `(region, push point, pop point)`, in traversal order.
    /// Point ids are contiguous per subtree, so `[push, pop]` is exactly
    /// the binding's extent.
    pub letregs: Vec<(RegVar, usize, usize)>,
}

impl PointGraph {
    /// Builds the graph for a method body.
    pub fn build(m: &RMethod) -> PointGraph {
        let mut g = PointGraph::default();
        let mut b = Builder {
            g: &mut g,
            var_types: &m.var_types,
        };
        b.emit(&m.body);
        g
    }

    /// Every point where `r` is used.
    pub fn use_points(&self, r: RegVar) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.uses.contains(&r))
            .map(|(i, _)| i)
            .collect()
    }

    /// Backward liveness of the given regions: `live[p]` is the set of
    /// regions used at `p` or at some point reachable from `p`.
    pub fn liveness(&self, of: &BTreeSet<RegVar>) -> Vec<BTreeSet<RegVar>> {
        let n = self.points.len();
        let mut live: Vec<BTreeSet<RegVar>> = (0..n)
            .map(|i| self.points[i].uses.intersection(of).copied().collect())
            .collect();
        // Kleene iteration to fixpoint; the graph is near-linear, so
        // sweeping in reverse emission order converges in a few passes
        // (one extra per loop-nesting level for the back edges).
        loop {
            let mut changed = false;
            for p in (0..n).rev() {
                let mut add: Vec<RegVar> = Vec::new();
                for &s in &self.points[p].succs {
                    for &r in &live[s] {
                        if !live[p].contains(&r) {
                            add.push(r);
                        }
                    }
                }
                if !add.is_empty() {
                    live[p].extend(add);
                    changed = true;
                }
            }
            if !changed {
                return live;
            }
        }
    }

    /// Whether every use point of every `letreg`-bound region falls inside
    /// its binding's `[push, pop]` extent — the invariant the extent
    /// rewriter must uphold.
    pub fn extents_cover_uses(&self) -> bool {
        self.letregs
            .iter()
            .all(|&(r, push, pop)| self.use_points(r).iter().all(|&p| p >= push && p <= pop))
    }
}

struct Builder<'a> {
    g: &'a mut PointGraph,
    var_types: &'a [RType],
}

impl<'a> Builder<'a> {
    fn point(&mut self) -> usize {
        self.g.points.push(Point::default());
        self.g.points.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.g.points[from].succs.push(to);
    }

    fn var_regions(&self, v: cj_frontend::VarId) -> Vec<RegVar> {
        self.var_types[v.index()].regions()
    }

    /// Emits points for `e`; returns `(entry, exit)`. The subtree's points
    /// occupy the contiguous id range emitted during the call.
    fn emit(&mut self, e: &RExpr) -> (usize, usize) {
        match &e.kind {
            RExprKind::Unit
            | RExprKind::Int(_)
            | RExprKind::Bool(_)
            | RExprKind::Float(_)
            | RExprKind::Null
            | RExprKind::Var(_)
            | RExprKind::Field(_, _)
            | RExprKind::ArrayLen(_)
            | RExprKind::New { .. }
            | RExprKind::Cast { .. }
            | RExprKind::CallVirtual { .. }
            | RExprKind::CallStatic { .. } => {
                let p = self.action(e);
                (p, p)
            }
            RExprKind::AssignVar(_, a)
            | RExprKind::AssignField(_, _, a)
            | RExprKind::NewArray { len: a, .. }
            | RExprKind::Index(_, a)
            | RExprKind::Unary(_, a)
            | RExprKind::Print(a) => {
                let (entry, exit) = self.emit(a);
                let p = self.action(e);
                self.edge(exit, p);
                (entry, p)
            }
            RExprKind::AssignIndex(_, a, b) | RExprKind::Seq(a, b) | RExprKind::Binary(_, a, b) => {
                let (entry, ae) = self.emit(a);
                let (be, bx) = self.emit(b);
                self.edge(ae, be);
                let p = self.action(e);
                self.edge(bx, p);
                (entry, p)
            }
            RExprKind::Let { init, body, .. } => {
                let init_pts = init.as_ref().map(|i| self.emit(i));
                let p = self.action(e); // declaration (and store)
                let entry = match init_pts {
                    Some((ie, ix)) => {
                        self.edge(ix, p);
                        ie
                    }
                    None => p,
                };
                let (be, bx) = self.emit(body);
                self.edge(p, be);
                (entry, bx)
            }
            RExprKind::Letreg(r, inner) => {
                let push = self.action(e);
                let (ie, ix) = self.emit(inner);
                self.edge(push, ie);
                let pop = self.point();
                self.edge(ix, pop);
                self.g.letregs.push((*r, push, pop));
                (push, pop)
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                let (entry, cx) = self.emit(cond);
                let branch = self.action(e);
                self.edge(cx, branch);
                let (te, tx) = self.emit(then_e);
                let (ee, ex) = self.emit(else_e);
                self.edge(branch, te);
                self.edge(branch, ee);
                let join = self.point();
                self.edge(tx, join);
                self.edge(ex, join);
                (entry, join)
            }
            RExprKind::While { cond, body } => {
                let (ce, cx) = self.emit(cond);
                let branch = self.action(e);
                self.edge(cx, branch);
                let (be, bx) = self.emit(body);
                self.edge(branch, be);
                self.edge(bx, ce); // loop back edge
                let exit = self.point();
                self.edge(branch, exit);
                (ce, exit)
            }
        }
    }

    /// The node's action point, carrying its region uses.
    fn action(&mut self, e: &RExpr) -> usize {
        let p = self.point();
        let mut uses: BTreeSet<RegVar> = e.rtype.regions().into_iter().collect();
        match &e.kind {
            RExprKind::Var(v)
            | RExprKind::Field(v, _)
            | RExprKind::ArrayLen(v)
            | RExprKind::AssignVar(v, _)
            | RExprKind::AssignField(v, _, _)
            | RExprKind::Index(v, _)
            | RExprKind::AssignIndex(v, _, _) => uses.extend(self.var_regions(*v)),
            RExprKind::New { regions, args, .. } => {
                uses.extend(regions.iter().copied());
                for &a in args {
                    uses.extend(self.var_regions(a));
                }
            }
            RExprKind::NewArray { region, .. } => {
                uses.insert(*region);
            }
            RExprKind::CallVirtual {
                recv, inst, args, ..
            } => {
                uses.extend(self.var_regions(*recv));
                uses.extend(inst.iter().copied());
                for &a in args {
                    uses.extend(self.var_regions(a));
                }
            }
            RExprKind::CallStatic { inst, args, .. } => {
                uses.extend(inst.iter().copied());
                for &a in args {
                    uses.extend(self.var_regions(a));
                }
            }
            RExprKind::Cast { regions, var, .. } => {
                uses.extend(regions.iter().copied());
                uses.extend(self.var_regions(*var));
            }
            // Declarations use the declared variable's regions.
            RExprKind::Let { var, .. } => uses.extend(self.var_regions(*var)),
            _ => {}
        }
        self.g.points[p].uses = uses;
        p
    }
}
