//! The `letreg` extent rewriter: sink each binding to the smallest
//! well-scoped subtree (or contiguous statement run) covering the region's
//! use points.
//!
//! The rewriter works bottom-up over a method body: nested `letreg`s are
//! tightened first (so an outer binding can narrow past where an inner one
//! used to sit), then each binding is re-placed by `Rewriter::place`
//! descent:
//!
//! - a node *using* the region (its annotated type, its operand variables'
//!   types, its allocation/instantiation/cast regions, or — for `let` —
//!   the declared variable's type) pins the extent at that node;
//! - `seq`/`let` statement chains (a kernel block is a `seq` spine that
//!   turns into nested `let` bodies at each declaration) are flattened so
//!   the binding wraps only the minimal contiguous run of statements
//!   containing uses. A split point inside the chain takes one of two
//!   shapes, both scope-preserving:
//!   - **packing** — when the last use is the initializer of a binding
//!     whose declared type does not mention the region, the live prefix
//!     moves *into* that initializer: `let x = (letreg r in s1; …; e) in
//!     tail`. Evaluation order is unchanged; bindings pulled inside are
//!     provably dead in the tail (their types mention `r`, so any later
//!     reference would be a later use of `r`);
//!   - **truncation** — when the last use is a discarded statement (or a
//!     declaration whose own type mentions the region), the run gets an
//!     explicit unit continuation and sits in discarded position:
//!     `(letreg r in s1; …; ()); tail`;
//!
//!   a binding pulled into the run whose type does *not* mention the
//!   region but which is referenced after the split drags the split point
//!   forward (to a fixpoint), keeping every variable's scope intact;
//! - a sole-using `if` arm, loop body, or chain item is descended into (a
//!   loop-body extent is entered afresh each iteration; the
//!   declaration-counts-as-use rule guarantees no outer variable can carry
//!   a stale pointer across iterations);
//! - another `letreg` binder is never crossed, preserving the nesting
//!   order the stack-discipline axioms were solved under;
//! - the checker's escape rule (`letreg` body type must not mention the
//!   bound region) is restored, where a trimmed run's discarded value
//!   would leak the region through its type, by sequencing the run with an
//!   explicit unit.
//!
//! Bindings whose region is never used are dropped outright.

// Placement intentionally threads the un-wrapped expression back through
// `Err` so the caller can keep descending without cloning subtrees.
#![allow(clippy::result_large_err)]

use crate::points::PointGraph;
use crate::ExtentStats;
use cj_frontend::span::Span;
use cj_frontend::VarId;
use cj_infer::localize::wrap_letreg;
use cj_infer::rast::{RExpr, RExprKind, RMethod, RType};
use cj_regions::var::RegVar;

/// Tightens every `letreg` extent in `m` (in place); returns what changed.
pub fn tighten_method(m: &mut RMethod) -> ExtentStats {
    let mut stats = ExtentStats::default();
    let before = PointGraph::build(m);
    if before.letregs.is_empty() {
        return stats;
    }
    stats.methods = 1;
    stats.letregs = before.letregs.len();
    stats.points = before.points.len();
    let interest = m.localized.iter().copied().collect();
    stats.live_pairs = before.liveness(&interest).iter().map(|s| s.len()).sum();
    stats.extent_points_before = before.letregs.iter().map(|&(_, lo, hi)| hi - lo).sum();

    let mut rw = Rewriter {
        var_types: &m.var_types,
        narrowed: 0,
        dropped: Vec::new(),
    };
    let body = rw.rewrite(&m.body);
    m.body = body;
    m.localized.retain(|r| !rw.dropped.contains(r));
    stats.narrowed = rw.narrowed;
    stats.dropped = rw.dropped.len();

    let after = PointGraph::build(m);
    debug_assert!(after.extents_cover_uses(), "extent left a use uncovered");
    stats.extent_points_after = after.letregs.iter().map(|&(_, lo, hi)| hi - lo).sum();
    stats
}

/// One step of a flattened statement chain: a kernel block alternates
/// discarded `seq` statements and `let` bindings whose body is the rest of
/// the chain; the chain ends in the block's value expression.
enum Item {
    /// A discarded statement (`seq` left operand).
    Stmt(RExpr),
    /// A `let` binding; the rest of the chain is its body.
    Bind {
        var: VarId,
        init: Option<Box<RExpr>>,
        span: Span,
    },
}

struct Rewriter<'a> {
    var_types: &'a [RType],
    narrowed: usize,
    dropped: Vec<RegVar>,
}

impl<'a> Rewriter<'a> {
    /// Rewrites children bottom-up, then re-places this node's `letreg`.
    fn rewrite(&mut self, e: &RExpr) -> RExpr {
        let e = self.rewrite_children(e);
        if let RExprKind::Letreg(r, inner) = e.kind {
            let inner = *inner;
            if !self.subtree_uses(&inner, r) {
                self.dropped.push(r);
                return inner;
            }
            let mut moved = false;
            let placed = match self.place(r, inner, false, &mut moved) {
                Ok(placed) => placed,
                // The region leaks through the body's value type: the
                // original (checker-visible) shape is the only valid one.
                Err(orig) => wrap_letreg(r, orig),
            };
            if moved {
                self.narrowed += 1;
            }
            placed
        } else {
            e
        }
    }

    fn rewrite_children(&mut self, e: &RExpr) -> RExpr {
        let kind = match &e.kind {
            RExprKind::Unit
            | RExprKind::Int(_)
            | RExprKind::Bool(_)
            | RExprKind::Float(_)
            | RExprKind::Null
            | RExprKind::Var(_)
            | RExprKind::Field(_, _)
            | RExprKind::ArrayLen(_)
            | RExprKind::New { .. }
            | RExprKind::Cast { .. }
            | RExprKind::CallVirtual { .. }
            | RExprKind::CallStatic { .. } => e.kind.clone(),
            RExprKind::AssignVar(v, a) => RExprKind::AssignVar(*v, Box::new(self.rewrite(a))),
            RExprKind::AssignField(v, f, a) => {
                RExprKind::AssignField(*v, *f, Box::new(self.rewrite(a)))
            }
            RExprKind::NewArray { elem, region, len } => RExprKind::NewArray {
                elem: *elem,
                region: *region,
                len: Box::new(self.rewrite(len)),
            },
            RExprKind::Index(v, a) => RExprKind::Index(*v, Box::new(self.rewrite(a))),
            RExprKind::AssignIndex(v, a, b) => {
                RExprKind::AssignIndex(*v, Box::new(self.rewrite(a)), Box::new(self.rewrite(b)))
            }
            RExprKind::Unary(op, a) => RExprKind::Unary(*op, Box::new(self.rewrite(a))),
            RExprKind::Binary(op, a, b) => {
                RExprKind::Binary(*op, Box::new(self.rewrite(a)), Box::new(self.rewrite(b)))
            }
            RExprKind::Print(a) => RExprKind::Print(Box::new(self.rewrite(a))),
            RExprKind::Seq(a, b) => {
                RExprKind::Seq(Box::new(self.rewrite(a)), Box::new(self.rewrite(b)))
            }
            RExprKind::Let { var, init, body } => RExprKind::Let {
                var: *var,
                init: init.as_ref().map(|i| Box::new(self.rewrite(i))),
                body: Box::new(self.rewrite(body)),
            },
            RExprKind::Letreg(r, inner) => RExprKind::Letreg(*r, Box::new(self.rewrite(inner))),
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => RExprKind::If {
                cond: Box::new(self.rewrite(cond)),
                then_e: Box::new(self.rewrite(then_e)),
                else_e: Box::new(self.rewrite(else_e)),
            },
            RExprKind::While { cond, body } => RExprKind::While {
                cond: Box::new(self.rewrite(cond)),
                body: Box::new(self.rewrite(body)),
            },
        };
        RExpr {
            kind,
            rtype: e.rtype.clone(),
            span: e.span,
        }
    }

    /// Places `letreg r` at the tightest position within `e` that covers
    /// every use of `r`. `discarded` says whether `e`'s value is dropped by
    /// its context (a `seq` left operand or loop body), which licenses the
    /// unit coercion when the trimmed value's type mentions `r`.
    ///
    /// `Err` returns `e` unchanged when no placement inside or around `e`
    /// is legal (its *used* value's type mentions `r`); the caller must
    /// then wrap some enclosing expression instead.
    fn place(
        &mut self,
        r: RegVar,
        e: RExpr,
        discarded: bool,
        moved: &mut bool,
    ) -> Result<RExpr, RExpr> {
        // Statement chains get the run-splitting treatment; the chain
        // accounts for its own items' uses (including the root's).
        if matches!(e.kind, RExprKind::Seq(_, _) | RExprKind::Let { .. }) {
            return self.place_chain(r, e, discarded, moved);
        }
        if self.node_uses(&e, r) {
            return self.wrap_here(r, e, discarded);
        }
        let rtype = e.rtype.clone();
        let span = e.span;
        match e.kind {
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                let in_c = self.subtree_uses(&cond, r);
                let in_t = self.subtree_uses(&then_e, r);
                let in_e = self.subtree_uses(&else_e, r);
                let rebuild = |cond: Box<RExpr>, then_e: Box<RExpr>, else_e: Box<RExpr>| RExpr {
                    kind: RExprKind::If {
                        cond,
                        then_e,
                        else_e,
                    },
                    rtype,
                    span,
                };
                match (in_c, in_t, in_e) {
                    (true, false, false) => match self.place(r, *cond, false, moved) {
                        Ok(c2) => {
                            *moved = true;
                            Ok(rebuild(Box::new(c2), then_e, else_e))
                        }
                        Err(c) => {
                            let e = rebuild(Box::new(c), then_e, else_e);
                            self.wrap_here(r, e, discarded)
                        }
                    },
                    (false, true, false) => match self.place(r, *then_e, false, moved) {
                        Ok(t2) => {
                            *moved = true;
                            Ok(rebuild(cond, Box::new(t2), else_e))
                        }
                        Err(t) => {
                            let e = rebuild(cond, Box::new(t), else_e);
                            self.wrap_here(r, e, discarded)
                        }
                    },
                    (false, false, true) => match self.place(r, *else_e, false, moved) {
                        Ok(e2) => {
                            *moved = true;
                            Ok(rebuild(cond, then_e, Box::new(e2)))
                        }
                        Err(el) => {
                            let e = rebuild(cond, then_e, Box::new(el));
                            self.wrap_here(r, e, discarded)
                        }
                    },
                    _ => self.wrap_here(r, rebuild(cond, then_e, else_e), discarded),
                }
            }
            RExprKind::While { cond, body } => {
                let in_c = self.subtree_uses(&cond, r);
                let in_b = self.subtree_uses(&body, r);
                let rebuild = |cond: Box<RExpr>, body: Box<RExpr>| RExpr {
                    kind: RExprKind::While { cond, body },
                    rtype,
                    span,
                };
                if in_b && !in_c {
                    // Loop-body sinking: the region is entered afresh each
                    // iteration. Sound because every use (including every
                    // declaration of a variable that could carry data in
                    // the region) is confined to the body.
                    let b2 = self
                        .place(r, *body, true, moved)
                        .expect("discarded position always wraps");
                    *moved = true;
                    return Ok(rebuild(cond, Box::new(b2)));
                }
                if in_c && !in_b {
                    match self.place(r, *cond, false, moved) {
                        Ok(c2) => {
                            *moved = true;
                            return Ok(rebuild(Box::new(c2), body));
                        }
                        Err(c) => {
                            let e = rebuild(Box::new(c), body);
                            return self.wrap_here(r, e, discarded);
                        }
                    }
                }
                self.wrap_here(r, rebuild(cond, body), discarded)
            }
            // Never sink past another letreg binder: relative nesting
            // order is what the stack-discipline axioms were solved under.
            kind => self.wrap_here(r, RExpr { kind, rtype, span }, discarded),
        }
    }

    /// Narrows within a flattened statement chain (see [`Item`]): find the
    /// minimal run of chain positions containing every use of `r`, extend
    /// its right edge until no pulled binding is referenced after it, then
    /// split by packing or truncation.
    fn place_chain(
        &mut self,
        r: RegVar,
        e: RExpr,
        discarded: bool,
        moved: &mut bool,
    ) -> Result<RExpr, RExpr> {
        let mut items = Vec::new();
        let fin = flatten_chain(e, &mut items);
        let n = items.len();
        let item_mentions: Vec<bool> = items.iter().map(|it| self.item_uses(it, r)).collect();
        let fin_mentions = self.subtree_uses(&fin, r);
        // Chain positions: 0..n are items, n is the final value expression.
        let lo = item_mentions
            .iter()
            .position(|&f| f)
            .unwrap_or(if fin_mentions { n } else { usize::MAX });
        debug_assert!(lo != usize::MAX, "chain placement without a use");
        let mut hi = if fin_mentions {
            n
        } else {
            item_mentions
                .iter()
                .rposition(|&f| f)
                .expect("chain has a use")
        };

        // Scope fixpoint: every binding pulled inside the run must be dead
        // after it. In the packing form (run ends at a clean-decl binding's
        // initializer) the split binding itself stays outside the run.
        while hi < n {
            let packing = self.packing_at(&items[hi], r);
            let pulled_end = if packing { hi } else { hi + 1 };
            let mut forced = None;
            for it in items.iter().take(pulled_end).skip(lo) {
                if let Item::Bind { var, .. } = it {
                    for (j, jt) in items.iter().enumerate().skip(hi + 1) {
                        if self.item_refs(jt, *var) {
                            forced = Some(forced.map_or(j, |f: usize| f.max(j)));
                        }
                    }
                    if self.expr_refs(&fin, *var) {
                        forced = Some(n);
                    }
                }
            }
            match forced {
                Some(j) if j > hi => hi = j,
                _ => break,
            }
        }

        // Single mention position: descend into it for sub-item precision.
        if lo == hi {
            if let Some(out) = self.descend_chain_at(r, &mut items, fin, lo, discarded, moved) {
                return out;
            }
            // `descend_chain_at` put the pieces back; fall through to the
            // run wrap below via the rebuilt chain it returned in `items`.
            unreachable!("descend_chain_at always resolves a single-position chain");
        }

        if lo == 0 && hi == n {
            // The run is the whole chain: no narrowing here.
            return self.wrap_here(r, rebuild_chain(items, fin), discarded);
        }
        *moved = true;
        if hi == n {
            // Leading trim only: the letreg starts at the first use and
            // runs to the end of the chain.
            let suffix = items.split_off(lo);
            let mid = rebuild_chain(suffix, fin);
            return match self.wrap_here(r, mid, discarded) {
                Ok(wrapped) => Ok(rebuild_chain(items, wrapped)),
                Err(mid) => {
                    // The chain's value type leaks r (possible only when
                    // the original letreg was already illegal here, i.e.
                    // never for checker-produced input): restore and give
                    // the caller the original shape.
                    *moved = false;
                    let mut restored = items;
                    let (mut suffix2, fin2) = unflatten(mid);
                    restored.append(&mut suffix2);
                    Err(rebuild_chain(restored, fin2))
                }
            };
        }

        let tail = items.split_off(hi + 1);
        if self.packing_at(&items[hi], r) {
            // Packing: the run becomes the split binding's initializer.
            let Item::Bind { var, init, span } = items.pop().expect("hi item") else {
                unreachable!("packing_at checked a Bind");
            };
            let run = items.split_off(lo);
            let init = init.expect("packing requires an initializer");
            let mid = rebuild_chain(run, *init);
            let wrapped = wrap_letreg(r, mid);
            let mut rebuilt = items;
            rebuilt.push(Item::Bind {
                var,
                init: Some(Box::new(wrapped)),
                span,
            });
            rebuilt.extend(tail);
            Ok(rebuild_chain(rebuilt, fin))
        } else {
            // Truncation: the run (bindings included) ends in an explicit
            // unit and sits in discarded position before the tail.
            let run = items.split_off(lo);
            let span = run_span(&run);
            let unit = RExpr {
                kind: RExprKind::Unit,
                rtype: RType::Void,
                span,
            };
            let mid = rebuild_chain(run, unit);
            let wrapped = wrap_letreg(r, mid);
            let mut rebuilt = items;
            rebuilt.push(Item::Stmt(wrapped));
            rebuilt.extend(tail);
            Ok(rebuild_chain(rebuilt, fin))
        }
    }

    /// Descends into the single chain position `at` holding every use.
    /// Always returns `Some` (single-position chains are fully resolved
    /// here, falling back to wrapping the position itself).
    #[allow(clippy::type_complexity)]
    fn descend_chain_at(
        &mut self,
        r: RegVar,
        items: &mut Vec<Item>,
        fin: RExpr,
        at: usize,
        discarded: bool,
        moved: &mut bool,
    ) -> Option<Result<RExpr, RExpr>> {
        let n = items.len();
        if at == n {
            // Uses confined to the chain's final value expression.
            let result = match self.place(r, fin, discarded, moved) {
                Ok(f2) => {
                    *moved = true;
                    Ok(rebuild_chain(std::mem::take(items), f2))
                }
                Err(f) => {
                    let whole = rebuild_chain(std::mem::take(items), f);
                    // n > 0 means wrapping the whole chain is still wider
                    // than needed, but the value type leaks r, so the whole
                    // chain is the tightest legal extent.
                    self.wrap_here(r, whole, discarded)
                }
            };
            return Some(result);
        }
        let tail = items.split_off(at + 1);
        let item = items.pop().expect("chain position");
        let placed = match item {
            Item::Stmt(s) => {
                // A discarded statement: placement inside always succeeds.
                let s2 = self
                    .place(r, s, true, moved)
                    .expect("discarded position always wraps");
                *moved = true;
                Item::Stmt(s2)
            }
            Item::Bind { var, init, span } => {
                let decl_mentions = self.var_uses(var, r);
                match (&init, decl_mentions) {
                    (Some(_), false) => {
                        let init = init.expect("checked Some");
                        match self.place(r, *init, false, moved) {
                            Ok(i2) => {
                                *moved = true;
                                Item::Bind {
                                    var,
                                    init: Some(Box::new(i2)),
                                    span,
                                }
                            }
                            Err(i) => {
                                // The initializer's value type leaks r: the
                                // binding itself must stay in the extent.
                                // Truncate: bind inside the letreg with a
                                // unit body; sound because no later item
                                // references `var` (the fixpoint would have
                                // extended the run otherwise — but the
                                // fixpoint only ran on the packing-exempt
                                // form, so re-check here).
                                let bind = Item::Bind {
                                    var,
                                    init: Some(Box::new(i)),
                                    span,
                                };
                                if tail.iter().any(|jt| self.item_refs(jt, var))
                                    || self.expr_refs(&fin, var)
                                {
                                    // Referenced later: no trim possible at
                                    // this granularity; wrap the rest of
                                    // the chain from here.
                                    let mut rest = vec![bind];
                                    rest.extend(tail);
                                    let mid = rebuild_chain(rest, fin);
                                    let result = match self.wrap_here(r, mid, discarded) {
                                        Ok(wrapped) => {
                                            if at > 0 {
                                                *moved = true;
                                            }
                                            Ok(rebuild_chain(std::mem::take(items), wrapped))
                                        }
                                        Err(mid) => {
                                            let (mut suffix, fin2) = unflatten(mid);
                                            let mut restored = std::mem::take(items);
                                            restored.append(&mut suffix);
                                            Err(rebuild_chain(restored, fin2))
                                        }
                                    };
                                    return Some(result);
                                }
                                let unit = RExpr {
                                    kind: RExprKind::Unit,
                                    rtype: RType::Void,
                                    span,
                                };
                                let mid = rebuild_chain(vec![bind], unit);
                                *moved = true;
                                Item::Stmt(wrap_letreg(r, mid))
                            }
                        }
                    }
                    _ => {
                        // The declaration itself mentions r (or there is no
                        // initializer to descend into): truncate around the
                        // bare binding. The fixpoint already guaranteed
                        // `var` is dead after the run.
                        let unit = RExpr {
                            kind: RExprKind::Unit,
                            rtype: RType::Void,
                            span,
                        };
                        let mid = rebuild_chain(vec![Item::Bind { var, init, span }], unit);
                        *moved = true;
                        Item::Stmt(wrap_letreg(r, mid))
                    }
                }
            }
        };
        items.push(placed);
        items.extend(tail);
        Some(Ok(rebuild_chain(std::mem::take(items), fin)))
    }

    /// Whether the run may split *before* this item, packing the run into
    /// its initializer: a binding whose declared type does not mention `r`
    /// and whose initializer's own value type does not leak `r`.
    fn packing_at(&self, item: &Item, r: RegVar) -> bool {
        match item {
            Item::Bind {
                var,
                init: Some(init),
                ..
            } => !self.var_uses(*var, r) && !init.rtype.regions().contains(&r),
            _ => false,
        }
    }

    fn item_uses(&self, item: &Item, r: RegVar) -> bool {
        match item {
            Item::Stmt(s) => self.subtree_uses(s, r),
            Item::Bind { var, init, .. } => {
                self.var_uses(*var, r) || init.as_deref().is_some_and(|i| self.subtree_uses(i, r))
            }
        }
    }

    fn item_refs(&self, item: &Item, v: VarId) -> bool {
        match item {
            Item::Stmt(s) => self.expr_refs(s, v),
            Item::Bind { init, .. } => init.as_deref().is_some_and(|i| self.expr_refs(i, v)),
        }
    }

    /// Whether `e`'s subtree references variable slot `v` (kernel slots are
    /// unique per method, so no shadowing to account for).
    fn expr_refs(&self, e: &RExpr, v: VarId) -> bool {
        match &e.kind {
            RExprKind::Unit
            | RExprKind::Int(_)
            | RExprKind::Bool(_)
            | RExprKind::Float(_)
            | RExprKind::Null => false,
            RExprKind::Var(x) | RExprKind::Field(x, _) | RExprKind::ArrayLen(x) => *x == v,
            RExprKind::AssignVar(x, a)
            | RExprKind::AssignField(x, _, a)
            | RExprKind::Index(x, a) => *x == v || self.expr_refs(a, v),
            RExprKind::AssignIndex(x, a, b) => {
                *x == v || self.expr_refs(a, v) || self.expr_refs(b, v)
            }
            RExprKind::New { args, .. } => args.contains(&v),
            RExprKind::NewArray { len, .. } => self.expr_refs(len, v),
            RExprKind::CallVirtual { recv, args, .. } => *recv == v || args.contains(&v),
            RExprKind::CallStatic { args, .. } => args.contains(&v),
            RExprKind::Cast { var, .. } => *var == v,
            RExprKind::Unary(_, a) | RExprKind::Print(a) | RExprKind::Letreg(_, a) => {
                self.expr_refs(a, v)
            }
            RExprKind::Binary(_, a, b) | RExprKind::Seq(a, b) => {
                self.expr_refs(a, v) || self.expr_refs(b, v)
            }
            RExprKind::Let { init, body, .. } => {
                init.as_deref().is_some_and(|i| self.expr_refs(i, v)) || self.expr_refs(body, v)
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => self.expr_refs(cond, v) || self.expr_refs(then_e, v) || self.expr_refs(else_e, v),
            RExprKind::While { cond, body } => self.expr_refs(cond, v) || self.expr_refs(body, v),
        }
    }

    /// Wraps `letreg r` around `e`, coercing a discarded value to unit
    /// when `e`'s type would leak `r` past the checker's escape rule.
    fn wrap_here(&self, r: RegVar, e: RExpr, discarded: bool) -> Result<RExpr, RExpr> {
        if !e.rtype.regions().contains(&r) {
            return Ok(wrap_letreg(r, e));
        }
        if !discarded {
            return Err(e);
        }
        let span = e.span;
        let unit = RExpr {
            kind: RExprKind::Unit,
            rtype: RType::Void,
            span,
        };
        let seq = RExpr {
            kind: RExprKind::Seq(Box::new(e), Box::new(unit)),
            rtype: RType::Void,
            span,
        };
        Ok(wrap_letreg(r, seq))
    }

    fn var_uses(&self, v: VarId, r: RegVar) -> bool {
        self.var_types[v.index()].regions().contains(&r)
    }

    /// Whether the operation at `e` itself uses `r` (same notion as
    /// [`PointGraph`]'s per-point use sets).
    fn node_uses(&self, e: &RExpr, r: RegVar) -> bool {
        if e.rtype.regions().contains(&r) {
            return true;
        }
        match &e.kind {
            RExprKind::Var(v)
            | RExprKind::Field(v, _)
            | RExprKind::ArrayLen(v)
            | RExprKind::AssignVar(v, _)
            | RExprKind::AssignField(v, _, _)
            | RExprKind::Index(v, _)
            | RExprKind::AssignIndex(v, _, _)
            | RExprKind::Let { var: v, .. } => self.var_uses(*v, r),
            RExprKind::New { regions, args, .. } => {
                regions.contains(&r) || args.iter().any(|&a| self.var_uses(a, r))
            }
            RExprKind::NewArray { region, .. } => *region == r,
            RExprKind::CallVirtual {
                recv, inst, args, ..
            } => {
                self.var_uses(*recv, r)
                    || inst.contains(&r)
                    || args.iter().any(|&a| self.var_uses(a, r))
            }
            RExprKind::CallStatic { inst, args, .. } => {
                inst.contains(&r) || args.iter().any(|&a| self.var_uses(a, r))
            }
            RExprKind::Cast { regions, var, .. } => regions.contains(&r) || self.var_uses(*var, r),
            _ => false,
        }
    }

    /// Whether any node in `e`'s subtree uses `r`.
    fn subtree_uses(&self, e: &RExpr, r: RegVar) -> bool {
        if self.node_uses(e, r) {
            return true;
        }
        match &e.kind {
            RExprKind::AssignVar(_, a)
            | RExprKind::AssignField(_, _, a)
            | RExprKind::NewArray { len: a, .. }
            | RExprKind::Index(_, a)
            | RExprKind::Unary(_, a)
            | RExprKind::Print(a)
            | RExprKind::Letreg(_, a) => self.subtree_uses(a, r),
            RExprKind::AssignIndex(_, a, b) | RExprKind::Seq(a, b) | RExprKind::Binary(_, a, b) => {
                self.subtree_uses(a, r) || self.subtree_uses(b, r)
            }
            RExprKind::Let { init, body, .. } => {
                init.as_deref().is_some_and(|i| self.subtree_uses(i, r))
                    || self.subtree_uses(body, r)
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                self.subtree_uses(cond, r)
                    || self.subtree_uses(then_e, r)
                    || self.subtree_uses(else_e, r)
            }
            RExprKind::While { cond, body } => {
                self.subtree_uses(cond, r) || self.subtree_uses(body, r)
            }
            _ => false,
        }
    }
}

/// Flattens a statement chain into items plus the final value expression.
/// `seq` left operands are split recursively (they are all discarded);
/// `let` bodies continue the chain.
fn flatten_chain(e: RExpr, items: &mut Vec<Item>) -> RExpr {
    match e.kind {
        RExprKind::Seq(a, b) => {
            flatten_stmts(*a, items);
            flatten_chain(*b, items)
        }
        RExprKind::Let { var, init, body } => {
            items.push(Item::Bind {
                var,
                init,
                span: e.span,
            });
            flatten_chain(*body, items)
        }
        _ => e,
    }
}

/// Flattens a fully-discarded subtree (a `seq` left operand) into
/// statement items. A `let` here is opaque — its scope is already
/// contained in the statement.
fn flatten_stmts(e: RExpr, items: &mut Vec<Item>) {
    if let RExprKind::Seq(a, b) = e.kind {
        flatten_stmts(*a, items);
        flatten_stmts(*b, items);
    } else {
        items.push(Item::Stmt(e));
    }
}

/// Inverse of [`flatten_chain`] on an already-built expression.
fn unflatten(e: RExpr) -> (Vec<Item>, RExpr) {
    let mut items = Vec::new();
    let fin = flatten_chain(e, &mut items);
    (items, fin)
}

/// Rebuilds a chain: `seq` nodes take their continuation's type (the
/// checker's rule for `seq`), `let` nodes their body's.
fn rebuild_chain(items: Vec<Item>, fin: RExpr) -> RExpr {
    let mut acc = fin;
    for item in items.into_iter().rev() {
        match item {
            Item::Stmt(s) => {
                let rtype = acc.rtype.clone();
                let span = s.span;
                acc = RExpr {
                    kind: RExprKind::Seq(Box::new(s), Box::new(acc)),
                    rtype,
                    span,
                };
            }
            Item::Bind { var, init, span } => {
                let rtype = acc.rtype.clone();
                acc = RExpr {
                    kind: RExprKind::Let {
                        var,
                        init,
                        body: Box::new(acc),
                    },
                    rtype,
                    span,
                };
            }
        }
    }
    acc
}

/// A span covering a run of items (the first item's own span).
fn run_span(run: &[Item]) -> Span {
    match run.first() {
        Some(Item::Stmt(s)) => s.span,
        Some(Item::Bind { span, .. }) => *span,
        None => Span::DUMMY,
    }
}
