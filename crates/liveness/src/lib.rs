//! # cj-liveness — flow-sensitive `letreg` extent inference
//!
//! The paper's `letreg` placement (\[exp-block\], `cj_infer::localize`) is
//! *block-scoped*: a localized region is bound at the smallest enclosing
//! block covering its occurrences, so it stays live for the whole block even
//! when its last use comes early. This crate adds the NLL-style refinement
//! (regions as sets of program points, per `nikomatsakis/borrowck`): build a
//! per-method control-flow point graph over the region-annotated kernel
//! ([`points::PointGraph`]), compute backward per-point liveness of region
//! variables, and shrink each `letreg` to the smallest *well-scoped* range
//! covering the region's live points ([`extent`]).
//!
//! "Well-scoped" carries three obligations inherited from the region
//! checker, which stays strict in both modes:
//!
//! - a variable declaration counts as a use of every region in the
//!   variable's type (the checker scope-checks declarations; this is what
//!   keeps a stale pointer from being carried across an extent boundary —
//!   e.g. from one loop iteration into the next);
//! - the rewritten `letreg` body's value type must not mention the region
//!   (the checker's escape rule), so trimming a discarded tail coerces the
//!   body to `void` with an explicit unit continuation;
//! - a `letreg` never sinks past another `letreg` binder, preserving the
//!   relative nesting order the stack-discipline axioms were solved under.
//!
//! The pass is pluggable behind [`ExtentInference`] and selected by
//! [`ExtentMode`]: [`PaperExtents`] is the identity (today's block-scoped
//! placement), [`LivenessExtents`] is the tightening pass. The
//! environment-transformation inference of Schöpp & Xu (arXiv 2209.02147)
//! is a planned third implementation of the same trait.
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//! use cj_liveness::{for_mode, ExtentMode};
//!
//! let src = "class Box { int v; }
//!     class M { static int main(int n) {
//!         int sum = 0;
//!         if (n > 0) { Box b = new Box(n); sum = b.v; } else { sum = 1; }
//!         sum = sum + 1;
//!         sum
//!     } }";
//! let (mut program, _) = infer_source(src, InferOptions::default()).unwrap();
//! let stats = for_mode(ExtentMode::Liveness).rewrite_program(&mut program);
//! assert!(stats.extent_points_after <= stats.extent_points_before);
//! ```
#![forbid(unsafe_code)]

pub mod extent;
pub mod points;

pub use cj_infer::options::ExtentMode;

use cj_infer::rast::RProgram;

/// What an extent-inference pass did to a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtentStats {
    /// Methods whose body contained at least one `letreg`.
    pub methods: usize,
    /// `letreg` bindings examined.
    pub letregs: usize,
    /// Bindings whose extent strictly shrank.
    pub narrowed: usize,
    /// Bindings removed outright (region never used).
    pub dropped: usize,
    /// Control-flow points across all rewritten methods.
    pub points: usize,
    /// Sum of per-point live localized-region counts (the liveness
    /// solver's output size; a fidelity metric, not a cost).
    pub live_pairs: usize,
    /// Sum of `letreg` extent lengths (in points) before rewriting.
    pub extent_points_before: usize,
    /// Sum of `letreg` extent lengths (in points) after rewriting.
    pub extent_points_after: usize,
}

impl ExtentStats {
    fn absorb(&mut self, other: ExtentStats) {
        self.methods += other.methods;
        self.letregs += other.letregs;
        self.narrowed += other.narrowed;
        self.dropped += other.dropped;
        self.points += other.points;
        self.live_pairs += other.live_pairs;
        self.extent_points_before += other.extent_points_before;
        self.extent_points_after += other.extent_points_after;
    }
}

/// A pluggable `letreg` extent-placement pass, run after region inference
/// proper (and after \[exp-block\] localization) on the fully annotated
/// program.
///
/// Implementations must preserve observable behaviour (value, prints,
/// error spans) and region-checker validity; they may only change *where*
/// `letreg` bindings sit, never which region an object is allocated in.
pub trait ExtentInference {
    /// Short name for CLI/protocol reporting.
    fn name(&self) -> &'static str;

    /// Rewrites every method's `letreg` extents in place.
    fn rewrite_program(&self, program: &mut RProgram) -> ExtentStats;
}

/// The paper's block-scoped placement, unchanged: the identity pass.
pub struct PaperExtents;

impl ExtentInference for PaperExtents {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn rewrite_program(&self, _program: &mut RProgram) -> ExtentStats {
        ExtentStats::default()
    }
}

/// The NLL-style liveness tightening pass.
pub struct LivenessExtents;

impl ExtentInference for LivenessExtents {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn rewrite_program(&self, program: &mut RProgram) -> ExtentStats {
        let mut span = cj_trace::span("pipeline", "extent-rewrite");
        let mut stats = ExtentStats::default();
        for class_methods in &mut program.methods {
            for m in class_methods.iter_mut() {
                stats.absorb(extent::tighten_method(m));
            }
        }
        for m in &mut program.statics {
            stats.absorb(extent::tighten_method(m));
        }
        span.add("letregs", stats.letregs as u64);
        span.add("narrowed", stats.narrowed as u64);
        span.add("dropped", stats.dropped as u64);
        stats
    }
}

/// The pass implementing `mode`.
pub fn for_mode(mode: ExtentMode) -> &'static dyn ExtentInference {
    match mode {
        ExtentMode::Paper => &PaperExtents,
        ExtentMode::Liveness => &LivenessExtents,
    }
}
