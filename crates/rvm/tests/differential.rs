//! Three-engine differential execution: the register tier must be
//! observationally identical to the stack VM *and* the tree-walking
//! interpreter.
//!
//! Random well-typed-by-construction recursive programs (the same shape
//! family as the VM and liveness differential suites) are inferred under
//! every subtyping mode, region-checked, additionally rewritten by the
//! flow-sensitive extent pass (both extent placements must agree), and
//! executed on **all three** engines; the returned value, the captured
//! prints, and the full [`SpaceStats`] must be byte-identical.
//! Deterministic fault programs then pin that runtime *errors* — variant
//! and span — also match (the `cj-rvm` unit suite covers the remaining
//! fault classes).
//!
//! [`SpaceStats`]: cj_runtime::SpaceStats

use cj_infer::rast::RProgram;
use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_liveness::{ExtentInference, LivenessExtents};
use cj_runtime::{run_main_big_stack, RunConfig, Value};
use proptest::prelude::*;

/// Runs `p` on all three engines and asserts observable identity;
/// returns the agreed observation.
fn run_three_engines(p: &RProgram, args: &[Value], label: &str) -> cj_runtime::Outcome {
    let stack = cj_vm::lower_program(p);
    let reg = cj_rvm::lower_program(&stack);
    let rvm = cj_rvm::run_main(&reg, args, RunConfig::default())
        .unwrap_or_else(|e| panic!("[{label}] rvm: {e}"));
    let vm = cj_vm::run_main(&stack, args, RunConfig::default())
        .unwrap_or_else(|e| panic!("[{label}] vm: {e}"));
    let interp = run_main_big_stack(p, args, RunConfig::default())
        .unwrap_or_else(|e| panic!("[{label}] interp: {e}"));
    assert_eq!(
        rvm.value.to_string(),
        vm.value.to_string(),
        "[{label}] rvm/vm diverged on value"
    );
    assert_eq!(rvm.prints, vm.prints, "[{label}] rvm/vm diverged on prints");
    assert_eq!(rvm.space, vm.space, "[{label}] rvm/vm diverged on space");
    assert_eq!(
        rvm.value.to_string(),
        interp.value.to_string(),
        "[{label}] rvm/interp diverged on value"
    );
    assert_eq!(
        rvm.prints, interp.prints,
        "[{label}] rvm/interp diverged on prints"
    );
    assert_eq!(
        rvm.space, interp.space,
        "[{label}] rvm/interp diverged on space"
    );
    rvm
}

/// Paper-placement program plus its liveness-tightened rewrite, both
/// region-checked.
fn both_extents(src: &str, opts: InferOptions) -> (RProgram, RProgram) {
    let (paper, _) = infer_source(src, opts).expect("inference");
    cj_check::check(&paper).expect("paper-mode program checks");
    let mut live = paper.clone();
    LivenessExtents.rewrite_program(&mut live);
    cj_check::check(&live)
        .unwrap_or_else(|e| panic!("liveness-rewritten program must still region-check: {e}"));
    (paper, live)
}

// ---- generator (mirrors the VM differential suite's program shapes) --------

#[derive(Debug, Clone)]
enum Op {
    /// `vX = mk0(3)`.
    Alloc(usize),
    /// `vA = vB`.
    Copy(usize, usize),
    /// `vA.self = vB` (guarded against null).
    Store(usize, usize),
    /// `print(vX.tag)` (guarded against null).
    Print(usize),
    /// Wrap the inner op in `if (flag) { … } else { }`.
    Branch(Box<Op>),
    /// Wrap the inner op in a 3-iteration loop.
    Loop(Box<Op>),
}

fn arb_op(nvars: usize) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Op::Alloc),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Copy(a, b)),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Store(a, b)),
        (0..nvars).prop_map(Op::Print),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|op| Op::Branch(Box::new(op))),
            inner.prop_map(|op| Op::Loop(Box::new(op))),
        ]
    })
}

fn render(nclasses: usize, nvars: usize, ops: &[Op]) -> String {
    let mut s = String::new();
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "class C{c} {{ int tag; C{target} link; C{c} self; }}\n"
        ));
    }
    s.push_str("class Gen {\n");
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "  static C{c} mk{c}(int depth) {{\n\
             \x20   if (depth <= 0) {{ (C{c}) null }}\n\
             \x20   else {{ new C{c}(depth, mk{target}(depth - 1), mk{c}(depth - 2)) }}\n\
             \x20 }}\n"
        ));
    }
    s.push_str("  static int main(bool flag) {\n");
    for v in 0..nvars {
        s.push_str(&format!("    C0 v{v} = mk0(2);\n"));
    }
    let mut loop_id = 0u32;
    for op in ops {
        render_op(op, &mut s, 4, &mut loop_id);
    }
    s.push_str("    int alive = 0;\n");
    for v in 0..nvars {
        s.push_str(&format!(
            "    if (v{v} != null) {{ alive = alive + v{v}.tag; }}\n"
        ));
    }
    s.push_str("    print(alive);\n    alive\n  }\n}\n");
    s
}

fn render_op(op: &Op, s: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = " ".repeat(indent);
    match op {
        Op::Alloc(v) => s.push_str(&format!("{pad}v{v} = mk0(3);\n")),
        Op::Copy(a, b) => s.push_str(&format!("{pad}v{a} = v{b};\n")),
        Op::Store(a, b) => s.push_str(&format!("{pad}if (v{a} != null) {{ v{a}.self = v{b}; }}\n")),
        Op::Print(v) => s.push_str(&format!("{pad}if (v{v} != null) {{ print(v{v}.tag); }}\n")),
        Op::Branch(inner) => {
            s.push_str(&format!("{pad}if (flag) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}}}\n"));
        }
        Op::Loop(inner) => {
            let id = *loop_id;
            *loop_id += 1;
            s.push_str(&format!("{pad}int gl{id} = 0;\n"));
            s.push_str(&format!("{pad}while (gl{id} < 3) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}  gl{id} = gl{id} + 1;\n{pad}}}\n"));
        }
    }
}

fn clamp_op(op: &Op, nvars: usize) -> Op {
    match op {
        Op::Alloc(v) => Op::Alloc(v % nvars),
        Op::Copy(a, b) => Op::Copy(a % nvars, b % nvars),
        Op::Store(a, b) => Op::Store(a % nvars, b % nvars),
        Op::Print(v) => Op::Print(v % nvars),
        Op::Branch(inner) => Op::Branch(Box::new(clamp_op(inner, nvars))),
        Op::Loop(inner) => Op::Loop(Box::new(clamp_op(inner, nvars))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_recursive_programs_are_three_engine_identical(
        nclasses in 1usize..4,
        nvars in 1usize..4,
        ops in proptest::collection::vec(arb_op(3), 0..6),
        flag in any::<bool>(),
    ) {
        let ops: Vec<Op> = ops.iter().map(|op| clamp_op(op, nvars)).collect();
        let src = render(nclasses, nvars, &ops);
        let args = [Value::Bool(flag)];
        for mode in SubtypeMode::ALL {
            let (paper, live) = both_extents(&src, InferOptions::with_mode(mode));
            let obs_paper = run_three_engines(&paper, &args, &format!("{mode}/paper"));
            let obs_live = run_three_engines(&live, &args, &format!("{mode}/liveness"));
            // Extent placement may change *where* things live, never
            // what the program computes.
            prop_assert_eq!(
                obs_paper.value.to_string(),
                obs_live.value.to_string(),
                "[{}] value changed across extent modes\n{}", mode, src
            );
            prop_assert_eq!(
                &obs_paper.prints, &obs_live.prints,
                "[{}] prints changed across extent modes\n{}", mode, src
            );
        }
    }
}

/// Runtime faults carry the same variant *and the same source span* on
/// all three engines — the structured diagnostics rendered from a `run`
/// failure are identical no matter the tier.
#[test]
fn fault_spans_are_three_engine_identical() {
    let cases: &[(&str, &[Value])] = &[
        (
            "class Node { int v; Node next; }
             class M {
               static int walk(Node n, int k) {
                 if (k == 0) { n.v } else { walk(n.next, k - 1) }
               }
               static int main(int k) { walk(new Node(7, (Node) null), k) }
             }",
            &[Value::Int(3)], // null deref inside recursion
        ),
        (
            "class M { static int main(int a, int b) { (a + b) / (a - b) } }",
            &[Value::Int(4), Value::Int(4)],
        ),
        (
            "class A { int x; } class B extends A { int y; }
             class M {
               static A pick(bool f) { if (f) { new B(1, 2) } else { new A(3) } }
               static int main(bool f) { B b = (B) pick(f); b.y }
             }",
            &[Value::Bool(false)],
        ),
    ];
    for (src, args) in cases {
        let (paper, live) = both_extents(src, InferOptions::default());
        for (p, label) in [(&paper, "paper"), (&live, "liveness")] {
            let stack = cj_vm::lower_program(p);
            let reg = cj_rvm::lower_program(&stack);
            let rvm = cj_rvm::run_main(&reg, args, RunConfig::default()).unwrap_err();
            let vm = cj_vm::run_main(&stack, args, RunConfig::default()).unwrap_err();
            let interp = run_main_big_stack(p, args, RunConfig::default()).unwrap_err();
            assert_eq!(rvm, vm, "[{label}] rvm/vm error variant diverged:\n{src}");
            assert_eq!(
                rvm.span(),
                vm.span(),
                "[{label}] rvm/vm error span diverged:\n{src}"
            );
            assert_eq!(
                rvm, interp,
                "[{label}] rvm/interp error variant diverged:\n{src}"
            );
            assert_eq!(
                rvm.span(),
                interp.span(),
                "[{label}] rvm/interp error span diverged:\n{src}"
            );
        }
    }
}
