//! The full Fig 8/9 benchmark suite, three engines, every subtyping
//! mode, both extent placements — value, prints, and space accounting
//! (hence every paper space ratio, including the pinned Reynolds3 one)
//! must be bit-identical, and the register tier must never dispatch
//! more than the stack VM retires instructions.

use cj_benchmarks::all_benchmarks;
use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_liveness::{ExtentInference, LivenessExtents};
use cj_runtime::{run_main_big_stack, RunConfig, Value};

#[test]
fn all_benchmarks_are_three_engine_identical() {
    for b in all_benchmarks() {
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        for mode in SubtypeMode::ALL {
            let (paper, _) = infer_source(b.source, InferOptions::with_mode(mode))
                .unwrap_or_else(|e| panic!("{} [{mode}] inference: {e}", b.name));
            cj_check::check(&paper).unwrap_or_else(|e| panic!("{} [{mode}] checker: {e}", b.name));
            let mut live = paper.clone();
            LivenessExtents.rewrite_program(&mut live);
            cj_check::check(&live)
                .unwrap_or_else(|e| panic!("{} [{mode}] liveness checker: {e}", b.name));
            for (p, extent) in [(&paper, "paper"), (&live, "liveness")] {
                let label = format!("{} [{mode}/{extent}]", b.name);
                let stack = cj_vm::lower_program(p);
                let reg = cj_rvm::lower_program(&stack);
                let rvm = cj_rvm::run_main(&reg, &args, RunConfig::default())
                    .unwrap_or_else(|e| panic!("[{label}] rvm: {e}"));
                let vm = cj_vm::run_main(&stack, &args, RunConfig::default())
                    .unwrap_or_else(|e| panic!("[{label}] vm: {e}"));
                let interp = run_main_big_stack(p, &args, RunConfig::default())
                    .unwrap_or_else(|e| panic!("[{label}] interp: {e}"));
                assert_eq!(
                    rvm.value.to_string(),
                    vm.value.to_string(),
                    "[{label}] rvm/vm value diverged"
                );
                assert_eq!(rvm.prints, vm.prints, "[{label}] rvm/vm prints diverged");
                assert_eq!(rvm.space, vm.space, "[{label}] rvm/vm space diverged");
                assert_eq!(
                    rvm.value.to_string(),
                    interp.value.to_string(),
                    "[{label}] rvm/interp value diverged"
                );
                assert_eq!(
                    rvm.prints, interp.prints,
                    "[{label}] rvm/interp prints diverged"
                );
                assert_eq!(
                    rvm.space, interp.space,
                    "[{label}] rvm/interp space diverged"
                );
                assert!(
                    rvm.steps <= vm.steps,
                    "[{label}] register dispatches ({}) exceed stack instructions ({})",
                    rvm.steps,
                    vm.steps
                );
            }
        }
    }
}
