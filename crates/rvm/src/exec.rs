//! The direct-threaded register engine.
//!
//! Dispatch is *direct-threaded* in the safe-Rust sense: every opcode's
//! handler is a free function, `HANDLERS` is a dense array of function
//! pointers indexed by the opcode discriminant, and the hot loop is
//! nothing but `pc = HANDLERS[op](…)?` — no `match` over the
//! instruction set in the dispatch path. A handler returns the next
//! program counter; the `SWITCH` sentinel means the frame stack
//! changed (call or return) and the outer loop must re-establish the
//! frame bases.
//!
//! Observable behaviour — return value, captured prints,
//! [`SpaceStats`], and structured [`RuntimeError`]s with their spans —
//! is bit-identical to both the stack VM (`cj_vm::run_main`) and the
//! tree-walking interpreter; the cross-engine differential suites
//! enforce this, including the two deliberate unchecked-program
//! divergences the stack VM documents (dangling casts and dangling
//! prints). `steps` in the returned [`Outcome`] counts *dispatches*,
//! the register engine's native work unit — one fused superinstruction
//! retires several stack-level instructions in a single step.
//!
//! [`SpaceStats`]: cj_runtime::SpaceStats

use crate::code::{CmpOp, RInstr, RvmMethod, RvmProgram, OP_COUNT};
use cj_frontend::ast::BinOp;
use cj_frontend::span::Span;
use cj_frontend::types::MethodId;
use cj_runtime::store::ObjId;
use cj_runtime::{Outcome, RunConfig, RuntimeError, Value};
use cj_vm::bytecode::{CallTarget, Lit, RegRef, SlotTy};
use cj_vm::heap::{pack_ref, ObjRef, RegionHeap, NULL_WORD};
use std::fmt;

/// An engine-internal value; same representation contract as the stack
/// VM's (`Ref` carries region + arena offset for access, serial for
/// observable identity).
#[derive(Debug, Clone, Copy)]
enum RValue {
    Unit,
    Int(i64),
    Bool(bool),
    Float(f64),
    Null,
    Ref(ObjRef),
}

impl RValue {
    #[inline]
    fn as_int(self) -> i64 {
        match self {
            RValue::Int(v) => v,
            _ => unreachable!("ill-typed int operand"),
        }
    }

    #[inline]
    fn as_bool(self) -> bool {
        match self {
            RValue::Bool(v) => v,
            _ => unreachable!("ill-typed bool operand"),
        }
    }
}

/// Mirrors `cj_runtime::Value`'s rendering exactly (prints must be
/// byte-identical across engines).
impl fmt::Display for RValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RValue::Unit => f.write_str("()"),
            RValue::Int(v) => write!(f, "{v}"),
            RValue::Bool(v) => write!(f, "{v}"),
            RValue::Float(v) => write!(f, "{v}"),
            RValue::Null => f.write_str("null"),
            RValue::Ref(r) => write!(f, "obj@{}", r.serial),
        }
    }
}

#[inline]
fn lit_value(l: Lit) -> RValue {
    match l {
        Lit::Unit => RValue::Unit,
        Lit::Null => RValue::Null,
        Lit::Int(v) => RValue::Int(v),
        Lit::Bool(v) => RValue::Bool(v),
        Lit::Float(v) => RValue::Float(v),
    }
}

fn to_value(v: RValue) -> Value {
    match v {
        RValue::Unit => Value::Unit,
        RValue::Int(x) => Value::Int(x),
        RValue::Bool(x) => Value::Bool(x),
        RValue::Float(x) => Value::Float(x),
        RValue::Null => Value::Null,
        RValue::Ref(r) => Value::Ref(ObjId(r.serial)),
    }
}

fn from_value(v: Value) -> Option<RValue> {
    match v {
        Value::Unit => Some(RValue::Unit),
        Value::Int(x) => Some(RValue::Int(x)),
        Value::Bool(x) => Some(RValue::Bool(x)),
        Value::Float(x) => Some(RValue::Float(x)),
        Value::Null => Some(RValue::Null),
        // Foreign object references cannot enter a fresh heap.
        Value::Ref(_) => None,
    }
}

/// Reference-identity equality, exactly the other engines' `value_eq`.
#[inline]
fn value_eq(a: RValue, b: RValue) -> bool {
    match (a, b) {
        (RValue::Int(x), RValue::Int(y)) => x == y,
        (RValue::Bool(x), RValue::Bool(y)) => x == y,
        (RValue::Float(x), RValue::Float(y)) => x == y,
        (RValue::Null, RValue::Null) => true,
        (RValue::Ref(x), RValue::Ref(y)) => x.region == y.region && x.word == y.word,
        _ => false,
    }
}

/// Encodes a value into a payload word per the slot representation.
#[inline]
fn encode(ty: SlotTy, v: RValue) -> u64 {
    match (ty, v) {
        (SlotTy::Int, RValue::Int(x)) => x as u64,
        (SlotTy::Bool, RValue::Bool(x)) => x as u64,
        (SlotTy::Float, RValue::Float(x)) => x.to_bits(),
        (SlotTy::Ref, RValue::Null) => NULL_WORD,
        (SlotTy::Ref, RValue::Ref(r)) => pack_ref(r),
        _ => unreachable!("ill-typed payload store"),
    }
}

/// Decodes the `t` operand of [`ROp::Binary`] (the inverse of the
/// lowering pass's `bin_code`).
fn bin_of(code: u32) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Lt,
        6 => BinOp::Le,
        7 => BinOp::Gt,
        8 => BinOp::Ge,
        9 => BinOp::Eq,
        _ => BinOp::Ne,
    }
}

fn binary(op: BinOp, l: RValue, r: RValue, span: Span) -> Result<RValue, RuntimeError> {
    use BinOp::*;
    use RValue::*;
    Ok(match (op, l, r) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(_), Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
        (Div, Int(x), Int(y)) => Int(x.wrapping_div(y)),
        (Rem, Int(_), Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
        (Rem, Int(x), Int(y)) => Int(x.wrapping_rem(y)),
        (Add, Float(x), Float(y)) => Float(x + y),
        (Sub, Float(x), Float(y)) => Float(x - y),
        (Mul, Float(x), Float(y)) => Float(x * y),
        (Div, Float(x), Float(y)) => Float(x / y),
        (Rem, Float(x), Float(y)) => Float(x % y),
        (Lt, Int(x), Int(y)) => Bool(x < y),
        (Le, Int(x), Int(y)) => Bool(x <= y),
        (Gt, Int(x), Int(y)) => Bool(x > y),
        (Ge, Int(x), Int(y)) => Bool(x >= y),
        (Lt, Float(x), Float(y)) => Bool(x < y),
        (Le, Float(x), Float(y)) => Bool(x <= y),
        (Gt, Float(x), Float(y)) => Bool(x > y),
        (Ge, Float(x), Float(y)) => Bool(x >= y),
        (Eq, x, y) => Bool(value_eq(x, y)),
        (Ne, x, y) => Bool(!value_eq(x, y)),
        _ => unreachable!("ill-typed binary"),
    })
}

/// Evaluates a fused comparison.
#[inline]
fn cmp_eval(cmp: CmpOp, l: RValue, r: RValue) -> bool {
    use CmpOp::*;
    use RValue::*;
    match (cmp, l, r) {
        (Eq, x, y) => value_eq(x, y),
        (Ne, x, y) => !value_eq(x, y),
        (Lt, Int(x), Int(y)) => x < y,
        (Le, Int(x), Int(y)) => x <= y,
        (Gt, Int(x), Int(y)) => x > y,
        (Ge, Int(x), Int(y)) => x >= y,
        (Lt, Float(x), Float(y)) => x < y,
        (Le, Float(x), Float(y)) => x <= y,
        (Gt, Float(x), Float(y)) => x > y,
        (Ge, Float(x), Float(y)) => x >= y,
        _ => unreachable!("ill-typed comparison"),
    }
}

/// Frame bookkeeping: bases into the shared register/region-slot files,
/// plus the caller register the return value lands in.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    pc: u32,
    regs: u32,
    rslots: u32,
    dst: u16,
}

struct Rvm<'a> {
    p: &'a RvmProgram,
    heap: RegionHeap,
    /// Register files of every live frame, contiguously.
    regs: Vec<RValue>,
    /// Region slot values (region ids; 0 = heap) for every frame.
    rslots: Vec<u32>,
    frames: Vec<Frame>,
    /// Current frame's register base (re-established on frame switch).
    lbase: usize,
    /// Current frame's region-slot base.
    rbase: usize,
    steps: u64,
    limit: u64,
    max_depth: u32,
    erase: bool,
    /// Superinstruction dispatches retired (a telemetry counter).
    supers: u64,
    prints: Vec<String>,
    inst_buf: Vec<u32>,
    reg_buf: Vec<u32>,
    word_buf: Vec<u64>,
    ret: RValue,
}

/// Handler return value meaning "the frame stack changed" — re-enter the
/// outer loop (or finish, when the last frame returned).
const SWITCH: u32 = u32::MAX;

/// One opcode's execution routine: returns the next program counter (or
/// [`SWITCH`]).
type Handler = fn(&mut Rvm<'_>, &RvmMethod, RInstr, usize) -> Result<u32, RuntimeError>;

/// The dense dispatch table, indexed by the [`ROp`] discriminant (order
/// pinned by a unit test below).
static HANDLERS: [Handler; OP_COUNT] = [
    h_load_const,
    h_move,
    h_add_imm,
    h_unary,
    h_binary,
    h_get_field,
    h_set_field,
    h_index,
    h_set_index,
    h_array_len,
    h_new_obj,
    h_new_arr,
    h_reg_push,
    h_reg_pop,
    h_call,
    h_field_call,
    h_cast,
    h_jump,
    h_jmp_if,
    h_jmp_if_not,
    h_jmp_cmp,
    h_jmp_cmp_not,
    h_jmp_cmp_c,
    h_jmp_cmp_not_c,
    h_inc_jump,
    h_print,
    h_ret,
];

/// Runs the program's static `main` on the register engine.
///
/// # Errors
///
/// Any [`RuntimeError`]; for checked programs, dangling-access errors
/// cannot occur.
pub fn run_main(p: &RvmProgram, args: &[Value], cfg: RunConfig) -> Result<Outcome, RuntimeError> {
    let func = p.main.ok_or(RuntimeError::NoMain)?;
    run_func(p, func, args, cfg)
}

/// Runs an arbitrary method as the entry point (all abstraction region
/// parameters bound to the heap, like the other engines' `run_static`).
///
/// # Errors
///
/// See [`run_main`].
///
/// # Panics
///
/// Panics when `id` is not part of the program.
pub fn run_static(
    p: &RvmProgram,
    id: MethodId,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let func = *p.func_of.get(&id).expect("method exists in the program");
    run_func(p, func, args, cfg)
}

fn run_func(
    p: &RvmProgram,
    func: u32,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let method = &p.methods[func as usize];
    if method.params.len() != args.len() {
        return Err(RuntimeError::BadMainArgs);
    }
    let mut vm = Rvm {
        p,
        heap: RegionHeap::new(),
        regs: Vec::with_capacity(256),
        rslots: Vec::with_capacity(64),
        frames: Vec::with_capacity(64),
        lbase: 0,
        rbase: 0,
        steps: 0,
        limit: cfg.step_limit,
        max_depth: cfg.max_depth,
        erase: cfg.erase_regions,
        supers: 0,
        prints: Vec::new(),
        inst_buf: Vec::new(),
        reg_buf: Vec::new(),
        word_buf: Vec::new(),
        ret: RValue::Unit,
    };
    vm.regs
        .extend(method.defaults.iter().map(|&d| lit_value(d)));
    vm.regs.resize(method.nregs as usize, RValue::Unit);
    for (k, &a) in args.iter().enumerate() {
        let v = from_value(a).ok_or(RuntimeError::BadMainArgs)?;
        vm.regs[method.params[k] as usize] = v;
    }
    // Entry-point region parameters are bound to the heap (slot value 0).
    vm.rslots.resize(method.region_slots as usize, 0);
    vm.frames.push(Frame {
        func,
        pc: 0,
        regs: 0,
        rslots: 0,
        dst: 0,
    });
    let mut span = cj_trace::span("pipeline", "rvm-exec");
    let value = vm.run()?;
    span.add("dispatches", vm.steps);
    span.add("superinstructions_hit", vm.supers);
    Ok(Outcome {
        value: to_value(value),
        space: vm.heap.stats(),
        steps: vm.steps,
        prints: vm.prints,
    })
}

impl Rvm<'_> {
    #[inline(always)]
    fn reg(&self, r: u16) -> RValue {
        self.regs[self.lbase + r as usize]
    }

    #[inline(always)]
    fn set_reg(&mut self, r: u16, v: RValue) {
        let i = self.lbase + r as usize;
        self.regs[i] = v;
    }

    #[inline]
    fn deref(&self, v: RValue, span: Span) -> Result<ObjRef, RuntimeError> {
        match v {
            RValue::Ref(r) => {
                if self.heap.is_live(r.region) {
                    Ok(r)
                } else {
                    Err(RuntimeError::DanglingAccess(span))
                }
            }
            _ => Err(RuntimeError::NullPointer(span)),
        }
    }

    #[inline]
    fn resolve(&self, r: RegRef) -> u32 {
        match r {
            RegRef::Heap => 0,
            RegRef::Slot(s) => self.rslots[self.rbase + s as usize],
        }
    }

    #[inline]
    fn decode(&self, ty: SlotTy, word: u64) -> RValue {
        match ty {
            SlotTy::Int => RValue::Int(word as i64),
            SlotTy::Bool => RValue::Bool(word != 0),
            SlotTy::Float => RValue::Float(f64::from_bits(word)),
            SlotTy::Ref => match self.heap.unpack_ref(word) {
                Some(r) => RValue::Ref(r),
                None => RValue::Null,
            },
        }
    }

    fn run(&mut self) -> Result<RValue, RuntimeError> {
        let p = self.p;
        'frames: loop {
            let frame = *self.frames.last().expect("active frame");
            let method: &RvmMethod = &p.methods[frame.func as usize];
            self.lbase = frame.regs as usize;
            self.rbase = frame.rslots as usize;
            let mut pc = frame.pc as usize;
            loop {
                self.steps += 1;
                if self.steps > self.limit {
                    return Err(RuntimeError::StepLimit);
                }
                let i = method.code[pc];
                let next = HANDLERS[i.op as usize](self, method, i, pc)?;
                if next == SWITCH {
                    if self.frames.is_empty() {
                        return Ok(self.ret);
                    }
                    continue 'frames;
                }
                pc = next as usize;
            }
        }
    }

    /// The shared call protocol of [`ROp::Call`] and [`ROp::FieldCall`]:
    /// pushes the callee frame (region binding identical to the stack
    /// VM's) and reports a frame switch.
    fn do_call(&mut self, m: &RvmMethod, site_idx: usize, pc: usize) -> Result<u32, RuntimeError> {
        if self.frames.len() as u32 > self.max_depth {
            return Err(RuntimeError::DepthLimit);
        }
        let p = self.p;
        let site = &m.calls[site_idx];
        self.inst_buf.clear();
        for &r in &site.inst {
            let id = self.resolve(r);
            self.inst_buf.push(id);
        }
        let (func, receiver) = match site.target {
            CallTarget::Static(f) => (f, None),
            CallTarget::Virtual { vslot, recv } => {
                let r = self.deref(self.reg(recv), site.span)?;
                let class = self.heap.class_of(r);
                (p.vtables[class as usize][vslot as usize], Some(r))
            }
        };
        let callee: &RvmMethod = &p.methods[func as usize];
        let new_lbase = self.regs.len();
        self.regs
            .extend(callee.defaults.iter().map(|&d| lit_value(d)));
        self.regs
            .resize(new_lbase + callee.nregs as usize, RValue::Unit);
        if let Some(r) = receiver {
            self.regs[new_lbase] = RValue::Ref(r);
        }
        for (k, &a) in site.args.iter().enumerate() {
            let v = self.regs[self.lbase + a as usize];
            self.regs[new_lbase + callee.params[k] as usize] = v;
        }
        let new_rbase = self.rslots.len();
        self.rslots
            .resize(new_rbase + callee.region_slots as usize, 0);
        match receiver {
            // Instance target: class region parameters come from the
            // receiver's recorded regions, method region parameters
            // positionally from the declared instantiation tail.
            Some(r) => {
                let ncp = callee.class_params as usize;
                for i in 0..ncp {
                    self.rslots[new_rbase + i] = self.heap.region_arg(r, i);
                }
                let tail = (site.tail_start as usize).min(self.inst_buf.len());
                let nmp = callee.abs_params as usize - ncp;
                for j in 0..nmp {
                    self.rslots[new_rbase + ncp + j] =
                        self.inst_buf.get(tail + j).copied().unwrap_or(0);
                }
            }
            None => {
                for i in 0..callee.abs_params as usize {
                    self.rslots[new_rbase + i] = self.inst_buf.get(i).copied().unwrap_or(0);
                }
            }
        }
        self.frames.last_mut().expect("frame").pc = (pc + 1) as u32;
        self.frames.push(Frame {
            func,
            pc: 0,
            regs: new_lbase as u32,
            rslots: new_rbase as u32,
            dst: site.dst,
        });
        Ok(SWITCH)
    }
}

fn h_load_const(
    vm: &mut Rvm<'_>,
    m: &RvmMethod,
    i: RInstr,
    pc: usize,
) -> Result<u32, RuntimeError> {
    vm.set_reg(i.a, lit_value(m.consts[i.t as usize]));
    Ok((pc + 1) as u32)
}

fn h_move(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let v = vm.reg(i.b);
    vm.set_reg(i.a, v);
    Ok((pc + 1) as u32)
}

fn h_add_imm(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let v = vm.reg(i.b).as_int().wrapping_add(i.imm);
    vm.set_reg(i.a, RValue::Int(v));
    vm.supers += 1;
    Ok((pc + 1) as u32)
}

fn h_unary(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let v = vm.reg(i.b);
    let out = match (i.c, v) {
        (0, RValue::Int(x)) => RValue::Int(x.wrapping_neg()),
        (0, RValue::Float(x)) => RValue::Float(-x),
        (1, RValue::Bool(x)) => RValue::Bool(!x),
        _ => unreachable!("ill-typed unary"),
    };
    vm.set_reg(i.a, out);
    Ok((pc + 1) as u32)
}

fn h_binary(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let l = vm.reg(i.b);
    let r = vm.reg(i.c);
    let out = binary(bin_of(i.t), l, r, m.spans[pc])?;
    vm.set_reg(i.a, out);
    Ok((pc + 1) as u32)
}

fn h_get_field(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let r = vm.deref(vm.reg(i.b), m.spans[pc])?;
    let word = vm.heap.field(r, i.c as usize);
    let v = vm.decode(i.ty, word);
    vm.set_reg(i.a, v);
    Ok((pc + 1) as u32)
}

fn h_set_field(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let r = vm.deref(vm.reg(i.a), m.spans[pc])?;
    let word = encode(i.ty, vm.reg(i.b));
    vm.heap.set_field(r, i.c as usize, word);
    Ok((pc + 1) as u32)
}

fn h_index(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let idx = vm.reg(i.c).as_int();
    let r = vm.deref(vm.reg(i.b), m.spans[pc])?;
    match vm.heap.element(r, idx as usize) {
        Some(word) => {
            let v = vm.decode(i.ty, word);
            vm.set_reg(i.a, v);
            Ok((pc + 1) as u32)
        }
        None => Err(RuntimeError::IndexOutOfBounds(m.spans[pc])),
    }
}

fn h_set_index(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let idx = vm.reg(i.b).as_int();
    let val = vm.reg(i.c);
    let r = vm.deref(vm.reg(i.a), m.spans[pc])?;
    if vm.heap.set_element(r, idx as usize, encode(i.ty, val)) {
        Ok((pc + 1) as u32)
    } else {
        Err(RuntimeError::IndexOutOfBounds(m.spans[pc]))
    }
}

fn h_array_len(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let r = vm.deref(vm.reg(i.b), m.spans[pc])?;
    let len = vm.heap.array_len(r) as i64;
    vm.set_reg(i.a, RValue::Int(len));
    Ok((pc + 1) as u32)
}

fn h_new_obj(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let site = &m.news[i.t as usize];
    vm.reg_buf.clear();
    for &r in &site.regions {
        let id = vm.resolve(r);
        vm.reg_buf.push(id);
    }
    vm.word_buf.clear();
    for &(var, ty) in &site.args {
        let w = encode(ty, vm.reg(var));
        vm.word_buf.push(w);
    }
    let obj = vm
        .heap
        .alloc_object(vm.reg_buf[0], site.class, &vm.reg_buf, &vm.word_buf)?;
    vm.set_reg(i.a, RValue::Ref(obj));
    Ok((pc + 1) as u32)
}

fn h_new_arr(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let site = m.arrays[i.t as usize];
    let n = vm.reg(i.b).as_int();
    if n < 0 {
        return Err(RuntimeError::NegativeLength(m.spans[pc]));
    }
    let region = vm.resolve(site.region);
    let obj = vm.heap.alloc_array(region, site.elem, n as usize)?;
    vm.set_reg(i.a, RValue::Ref(obj));
    Ok((pc + 1) as u32)
}

fn h_reg_push(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    // Region-erasure semantics: the letreg is a no-op and its region
    // variable denotes the heap.
    let id = if vm.erase { 0 } else { vm.heap.push() };
    vm.rslots[vm.rbase + i.a as usize] = id;
    Ok((pc + 1) as u32)
}

fn h_reg_pop(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    if !vm.erase {
        vm.heap.pop(vm.rslots[vm.rbase + i.a as usize])?;
    }
    Ok((pc + 1) as u32)
}

fn h_call(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    vm.do_call(m, i.t as usize, pc)
}

fn h_field_call(
    vm: &mut Rvm<'_>,
    m: &RvmMethod,
    i: RInstr,
    pc: usize,
) -> Result<u32, RuntimeError> {
    // Field half first (its faults carry the field access's span)…
    let r = vm.deref(vm.reg(i.b), m.spans[pc])?;
    let word = vm.heap.field(r, i.c as usize);
    let v = vm.decode(i.ty, word);
    vm.set_reg(i.a, v);
    vm.supers += 1;
    // …then the call half (its faults carry the call's span).
    vm.do_call(m, i.t as usize, pc)
}

fn h_cast(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let site = m.casts[i.t as usize];
    let v = vm.reg(site.var);
    match v {
        RValue::Null => vm.set_reg(i.a, RValue::Null),
        RValue::Ref(r) => {
            if !vm.heap.is_live(r.region) {
                // The arena that held the class header is gone (same
                // deliberate unchecked-program divergence as the stack
                // VM).
                return Err(RuntimeError::DanglingAccess(m.spans[pc]));
            }
            let class = vm.heap.class_of(r) as usize;
            if vm.p.subclass[class][site.class as usize] {
                vm.set_reg(i.a, v);
            } else {
                return Err(RuntimeError::CastFailed(m.spans[pc]));
            }
        }
        _ => return Err(RuntimeError::CastFailed(m.spans[pc])),
    }
    Ok((pc + 1) as u32)
}

fn h_jump(_vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, _pc: usize) -> Result<u32, RuntimeError> {
    Ok(i.t)
}

fn h_jmp_if(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    if vm.reg(i.a).as_bool() {
        Ok(i.t)
    } else {
        Ok((pc + 1) as u32)
    }
}

fn h_jmp_if_not(
    vm: &mut Rvm<'_>,
    _m: &RvmMethod,
    i: RInstr,
    pc: usize,
) -> Result<u32, RuntimeError> {
    if vm.reg(i.a).as_bool() {
        Ok((pc + 1) as u32)
    } else {
        Ok(i.t)
    }
}

fn h_jmp_cmp(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    vm.supers += 1;
    if cmp_eval(CmpOp::from_code(i.c), vm.reg(i.a), vm.reg(i.b)) {
        Ok(i.t)
    } else {
        Ok((pc + 1) as u32)
    }
}

fn h_jmp_cmp_not(
    vm: &mut Rvm<'_>,
    _m: &RvmMethod,
    i: RInstr,
    pc: usize,
) -> Result<u32, RuntimeError> {
    vm.supers += 1;
    if cmp_eval(CmpOp::from_code(i.c), vm.reg(i.a), vm.reg(i.b)) {
        Ok((pc + 1) as u32)
    } else {
        Ok(i.t)
    }
}

fn h_jmp_cmp_c(vm: &mut Rvm<'_>, m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    vm.supers += 1;
    let rhs = lit_value(m.consts[i.imm as usize]);
    if cmp_eval(CmpOp::from_code(i.c), vm.reg(i.a), rhs) {
        Ok(i.t)
    } else {
        Ok((pc + 1) as u32)
    }
}

fn h_jmp_cmp_not_c(
    vm: &mut Rvm<'_>,
    m: &RvmMethod,
    i: RInstr,
    pc: usize,
) -> Result<u32, RuntimeError> {
    vm.supers += 1;
    let rhs = lit_value(m.consts[i.imm as usize]);
    if cmp_eval(CmpOp::from_code(i.c), vm.reg(i.a), rhs) {
        Ok((pc + 1) as u32)
    } else {
        Ok(i.t)
    }
}

fn h_inc_jump(
    vm: &mut Rvm<'_>,
    _m: &RvmMethod,
    i: RInstr,
    _pc: usize,
) -> Result<u32, RuntimeError> {
    let v = vm.reg(i.a).as_int().wrapping_add(i.imm);
    vm.set_reg(i.a, RValue::Int(v));
    vm.supers += 1;
    Ok(i.t)
}

fn h_print(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, pc: usize) -> Result<u32, RuntimeError> {
    let s = vm.reg(i.a).to_string();
    vm.prints.push(s);
    Ok((pc + 1) as u32)
}

fn h_ret(vm: &mut Rvm<'_>, _m: &RvmMethod, i: RInstr, _pc: usize) -> Result<u32, RuntimeError> {
    let value = vm.reg(i.a);
    let done = vm.frames.pop().expect("frame");
    vm.regs.truncate(done.regs as usize);
    vm.rslots.truncate(done.rslots as usize);
    match vm.frames.last() {
        Some(caller) => {
            let slot = caller.regs as usize + done.dst as usize;
            vm.regs[slot] = value;
        }
        None => vm.ret = value,
    }
    Ok(SWITCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::ROp;

    /// The handler table is indexed by the `ROp` discriminant; this pins
    /// the enum order to the order `HANDLERS` is written in.
    #[test]
    fn opcode_discriminants_match_handler_table_order() {
        let order = [
            ROp::LoadConst,
            ROp::Move,
            ROp::AddImm,
            ROp::Unary,
            ROp::Binary,
            ROp::GetField,
            ROp::SetField,
            ROp::Index,
            ROp::SetIndex,
            ROp::ArrayLen,
            ROp::NewObj,
            ROp::NewArr,
            ROp::RegPush,
            ROp::RegPop,
            ROp::Call,
            ROp::FieldCall,
            ROp::Cast,
            ROp::Jump,
            ROp::JmpIf,
            ROp::JmpIfNot,
            ROp::JmpCmp,
            ROp::JmpCmpNot,
            ROp::JmpCmpC,
            ROp::JmpCmpNotC,
            ROp::IncJump,
            ROp::Print,
            ROp::Ret,
        ];
        assert_eq!(order.len(), OP_COUNT);
        assert_eq!(order.len(), HANDLERS.len());
        for (idx, op) in order.into_iter().enumerate() {
            assert_eq!(op as usize, idx, "{op:?} is out of handler-table order");
        }
    }

    #[test]
    fn bin_code_round_trips() {
        use BinOp::*;
        for op in [Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne] {
            assert_eq!(bin_of(crate::lower::bin_code(op)), op);
        }
    }
}
