//! # cj-rvm — a register-based direct-threaded execution tier
//!
//! Stage 1 of the tiered-execution roadmap: the stack bytecode the
//! [`cj_vm`] lowering pass produces is translated once more — per
//! method, with the same memoized, α-invariant reuse discipline — into
//! a **register IR** ([`code`]) that a **direct-threaded** engine
//! ([`exec`]) runs:
//!
//! - the operand stack disappears: the [lowering pass](lower) simulates
//!   it at translation time and assigns every value a register (a
//!   variable slot or a stack-position temporary), so `Const`/`LoadVar`
//!   /`StoreVar` traffic folds into the consuming instruction's
//!   operands;
//! - the hottest stack idioms fuse into superinstructions — compare-
//!   and-branch, add-immediate, increment-and-loop, and
//!   load-field-then-call — each retiring several stack instructions in
//!   one dispatch;
//! - dispatch indexes a dense function-pointer table with the opcode
//!   (no `match` over the instruction set in the hot path), and
//!   `letreg` still compiles to direct bump-arena push/pop against the
//!   same [`cj_vm::heap`] the stack VM uses.
//!
//! Observable behaviour — value, prints,
//! [`SpaceStats`](cj_runtime::SpaceStats) (including the paper's pinned
//! space ratios), structured
//! [`RuntimeError`](cj_runtime::RuntimeError)s with their spans, and
//! the fuel/depth limits — is bit-identical to both the stack VM and
//! the tree-walking interpreter; the three-engine differential suites
//! in `tests/` enforce it. Select the tier with `--engine rvm` on
//! `cjrc run`, or `"engine": "rvm"` on a daemon run request.
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//! use cj_runtime::{RunConfig, Value};
//!
//! let (p, _) = infer_source(
//!     "class List { int value; List next; }
//!      class M {
//!        static List build(int n) {
//!          if (n == 0) { (List) null } else { new List(n, build(n - 1)) }
//!        }
//!        static int sum(List l) {
//!          if (l == null) { 0 } else { l.value + sum(l.next) }
//!        }
//!        static int main(int n) { sum(build(n)) }
//!      }",
//!     InferOptions::default(),
//! ).unwrap();
//! let stack = cj_vm::lower_program(&p);
//! let reg = cj_rvm::lower_program(&stack);
//! let rvm = cj_rvm::run_main(&reg, &[Value::Int(10)], RunConfig::default()).unwrap();
//! let vm = cj_vm::run_main(&stack, &[Value::Int(10)], RunConfig::default()).unwrap();
//! assert_eq!(rvm.value, vm.value);
//! assert_eq!(rvm.space, vm.space);
//! // Fewer dispatches than stack instructions: superinstructions and
//! // folded operands do the same work in fewer steps.
//! assert!(rvm.steps < vm.steps);
//! ```
#![forbid(unsafe_code)]

pub mod code;
pub mod exec;
pub mod lower;

pub use code::{RInstr, ROp, RvmMethod, RvmProgram};
pub use exec::{run_main, run_static};
pub use lower::{lower_program, RvmCache, RvmStats};

#[cfg(test)]
mod tests {
    use super::*;
    use cj_infer::{infer_source, InferOptions, SubtypeMode};
    use cj_runtime::{Outcome, RunConfig, RuntimeError, Value};

    fn compile(src: &str) -> (cj_infer::RProgram, cj_vm::CompiledProgram, RvmProgram) {
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        cj_check::check(&p).unwrap_or_else(|e| panic!("checker: {e}"));
        let stack = cj_vm::lower_program(&p);
        let reg = lower_program(&stack);
        (p, stack, reg)
    }

    fn run_all(src: &str, args: &[Value]) -> Outcome {
        let (p, stack, reg) = compile(src);
        let rvm = run_main(&reg, args, RunConfig::default()).unwrap();
        let vm = cj_vm::run_main(&stack, args, RunConfig::default()).unwrap();
        let interp = cj_runtime::run_main(&p, args, RunConfig::default()).unwrap();
        assert_eq!(rvm.value, vm.value, "rvm/vm values diverge");
        assert_eq!(rvm.prints, vm.prints, "rvm/vm prints diverge");
        assert_eq!(rvm.space, vm.space, "rvm/vm space stats diverge");
        assert_eq!(rvm.value, interp.value, "rvm/interp values diverge");
        assert_eq!(rvm.prints, interp.prints, "rvm/interp prints diverge");
        assert_eq!(rvm.space, interp.space, "rvm/interp space stats diverge");
        assert!(
            rvm.steps <= vm.steps,
            "register dispatches exceed stack instructions"
        );
        rvm
    }

    #[test]
    fn arithmetic_and_loops() {
        let out = run_all(
            "class M { static int main(int n) {
               int s = 0; int i = 1;
               while (i <= n) { s = s + i; i = i + 1; }
               s
             } }",
            &[Value::Int(100)],
        );
        assert_eq!(out.value, Value::Int(5050));
    }

    #[test]
    fn objects_fields_dispatch_and_overrides() {
        let out = run_all(
            "class A { int m() { 1 } int twice() { this.m() * 2 } }
             class B extends A { int m() { 2 } }
             class C extends B { int extra() { 9 } int m() { 3 } }
             class M {
               static int main() {
                 A a = new A();
                 A b = new B();
                 A c = new C();
                 a.twice() * 100 + b.twice() * 10 + c.twice()
               }
             }",
            &[],
        );
        assert_eq!(out.value, Value::Int(246));
    }

    #[test]
    fn recursion_regions_and_field_call_fusion() {
        let out = run_all(
            "class List { int value; List next; }
             class M {
               static List build(int n) {
                 if (n == 0) { (List) null } else { new List(n, build(n - 1)) }
               }
               static int sum(List l) {
                 if (l == null) { 0 } else { l.value + sum(l.next) }
               }
               static int main(int n) { sum(build(n)) }
             }",
            &[Value::Int(10)],
        );
        assert_eq!(out.value, Value::Int(55));
    }

    #[test]
    fn per_iteration_regions_are_reclaimed_for_real() {
        let out = run_all(
            "class Box { Object item; }
             class M {
               static int main(int n) {
                 int i = 0;
                 while (i < n) { Box b = new Box(null); i = i + 1; }
                 i
               }
             }",
            &[Value::Int(1000)],
        );
        assert_eq!(out.space.regions_created, 1000);
        assert!(out.space.space_ratio() < 0.01);
    }

    #[test]
    fn arrays_floats_prints_and_logic() {
        let out = run_all(
            "class M { static int main(int n) {
               int[] a = new int[n];
               int i = 0;
               while (i < n) { a[i] = i * i; i = i + 1; }
               float f = 2.5;
               print(f * 2.0);
               print(a[n - 1]);
               bool ok = n > 1 && a[0] == 0 || n < 0;
               print(ok);
               a[n - 1] + a.length
             } }",
            &[Value::Int(10)],
        );
        assert_eq!(out.value, Value::Int(91));
        assert_eq!(out.prints, vec!["5", "81", "true"]);
    }

    #[test]
    fn runtime_errors_match_the_stack_vm_spans() {
        let cases = [
            (
                "class Cell { int v; }
                 class M { static int main() { Cell c = (Cell) null; c.v } }",
                vec![],
            ),
            (
                "class M { static int main(int n) { 10 / n } }",
                vec![Value::Int(0)],
            ),
            (
                "class M { static int main(int n) { int[] a = new int[2]; a[n] } }",
                vec![Value::Int(5)],
            ),
            (
                "class M { static int main(int n) { int[] a = new int[n]; a.length } }",
                vec![Value::Int(-3)],
            ),
            (
                "class A { int x; } class B extends A { int y; }
                 class M { static int main() { A a = new A(0); B b = (B) a; 1 } }",
                vec![],
            ),
        ];
        for (src, args) in cases {
            let (_, stack, reg) = compile(src);
            let rvm = run_main(&reg, &args, RunConfig::default()).unwrap_err();
            let vm = cj_vm::run_main(&stack, &args, RunConfig::default()).unwrap_err();
            assert_eq!(rvm, vm, "error divergence on {src}");
            assert_eq!(rvm.span(), vm.span(), "span divergence on {src}");
        }
    }

    #[test]
    fn step_and_depth_limits_are_structured() {
        let (_, _, reg) = compile("class M { static int main() { while (true) { } 0 } }");
        let err = run_main(
            &reg,
            &[],
            RunConfig {
                step_limit: 1000,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimit));

        let (_, _, reg) =
            compile("class M { static int f(int n) { f(n + 1) } static int main() { f(0) } }");
        let err = run_main(
            &reg,
            &[],
            RunConfig {
                max_depth: 64,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::DepthLimit));
    }

    #[test]
    fn erase_regions_is_a_noop_on_results() {
        let (_, _, reg) = compile(
            "class Pair { Object a; Object b; }
             class M { static int main(int n) {
               int i = 0;
               while (i < n) { Pair p = new Pair(null, null); i = i + 1; }
               i
             } }",
        );
        let cfg = RunConfig {
            erase_regions: true,
            ..RunConfig::default()
        };
        let erased = run_main(&reg, &[Value::Int(5)], cfg).unwrap();
        assert_eq!(erased.value, Value::Int(5));
        assert_eq!(erased.space.regions_created, 0, "letreg erased");
        assert!(
            (erased.space.space_ratio() - 1.0).abs() < 1e-9,
            "everything lives in the heap"
        );
    }

    #[test]
    fn bad_main_args_and_missing_main() {
        let (_, _, reg) = compile("class M { static int main(int n) { n } }");
        assert!(matches!(
            run_main(&reg, &[], RunConfig::default()).unwrap_err(),
            RuntimeError::BadMainArgs
        ));
        let (_, _, reg) = compile("class M { static int helper(int n) { n } }");
        assert!(matches!(
            run_main(&reg, &[], RunConfig::default()).unwrap_err(),
            RuntimeError::NoMain
        ));
    }

    #[test]
    fn superinstructions_are_fused_and_hit() {
        let (_, _, reg) = compile(
            "class List { int value; List next; }
             class M {
               static int sum(List l) {
                 if (l == null) { 0 } else { l.value + sum(l.next) }
               }
               static int main(int n) {
                 int i = 0;
                 List l = (List) null;
                 while (i < n) { l = new List(i, l); i = i + 1; }
                 sum(l)
               }
             }",
        );
        assert!(reg.fused_count() > 0, "no superinstructions fused");
        let out = run_main(&reg, &[Value::Int(50)], RunConfig::default()).unwrap();
        assert_eq!(out.value, Value::Int(1225));
    }

    #[test]
    fn rvm_cache_reuses_unchanged_methods() {
        let src_a = "class Cell { Object item; Object get() { this.item } }
             class M { static int main() { 1 } }";
        let src_b = "class Cell { Object item; Object get() { this.item } }
             class M { static int main() { 2 } }";
        let (pa, _) = infer_source(src_a, InferOptions::default()).unwrap();
        let (pb, _) = infer_source(src_b, InferOptions::default()).unwrap();
        let mut stack_cache = cj_vm::LowerCache::new();
        let mut cache = RvmCache::new();
        let (sa, _) = stack_cache.lower(&pa);
        let (first, s1) = cache.lower(&sa);
        assert_eq!(s1.methods_reused, 0);
        assert!(s1.methods_lowered >= 2);
        // Identical program: the stack tier hands back the same Arcs, so
        // every register translation replays.
        let (sa2, _) = stack_cache.lower(&pa);
        let (again, s2) = cache.lower(&sa2);
        assert_eq!(s2.methods_lowered, 0);
        assert_eq!(s2.methods_reused, s1.methods_lowered);
        assert!(std::ptr::eq(
            std::sync::Arc::as_ptr(&first.methods[0]),
            std::sync::Arc::as_ptr(&again.methods[0])
        ));
        // One edited body: exactly one method re-translates.
        let (sb, _) = stack_cache.lower(&pb);
        let (_, s3) = cache.lower(&sb);
        assert_eq!(s3.methods_lowered, 1, "{s3:?}");
        assert_eq!(s3.methods_reused, s1.methods_lowered - 1);
    }

    #[test]
    fn lowering_is_deterministic_across_modes() {
        let src = "class RList { int value; RList next; }
             class M {
               static int depth(RList p, int d) {
                 if (d == 0) { count(p) } else {
                   RList p2 = new RList(d, p);
                   depth(p2, d - 1)
                 }
               }
               static int count(RList p) {
                 if (p == null) { 0 } else { 1 + count(p.next) }
               }
               static int main(int d) { depth((RList) null, d) }
             }";
        for mode in SubtypeMode::ALL {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            let stack = cj_vm::lower_program(&p);
            let reg = lower_program(&stack);
            let rvm = run_main(&reg, &[Value::Int(40)], RunConfig::default())
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            let vm = cj_vm::run_main(&stack, &[Value::Int(40)], RunConfig::default()).unwrap();
            assert_eq!(rvm.value, vm.value, "{mode}");
            assert_eq!(rvm.space, vm.space, "{mode}");
        }
    }
}
