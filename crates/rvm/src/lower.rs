//! Stack-bytecode → register-IR lowering.
//!
//! The stack VM's codegen is structural: every expression leaves exactly
//! one value on the operand stack, so the stack depth at each program
//! point is statically determined. This pass exploits that with an
//! abstract-interpretation translation — the operand stack is simulated
//! at lowering time as a stack of *abstract operands*:
//!
//! - a `Const` or `LoadVar` pushes an abstract constant/variable and
//!   emits **nothing** — the value is materialized only where it is
//!   consumed, usually folding straight into the consumer's register
//!   operands (the classic lazy stack-to-register translation);
//! - a local that appears on the abstract stack is **spilled** to its
//!   stack-position temporary the moment something stores to it, so the
//!   pushed value (not the mutated one) is what the consumer sees;
//! - at control-flow join points (every jump target) the abstract stack
//!   is flushed to its canonical form — depth `d` lives in register
//!   `nlocals + d` — so all predecessors agree on register contents.
//!
//! On top of the base translation, peephole lookahead fuses
//! superinstructions ([`ROp::JmpCmp`]\*, [`ROp::AddImm`],
//! [`ROp::IncJump`], [`ROp::FieldCall`]) and folds `StoreVar` into the
//! producing instruction's destination register. Fusion never crosses a
//! jump target (a *barrier*), so every label still maps to a valid
//! instruction boundary.
//!
//! [`RvmCache`] mirrors `cj_vm::LowerCache`'s per-method memo
//! discipline: the stack tier's cache already reuses an unchanged
//! method's `Arc<CompiledMethod>` across revisions (its fingerprint is
//! α-invariant in region ids), so pointer-identity on that `Arc` is
//! exactly the same invariant — a method the stack tier re-lowered is
//! re-translated here, everything else replays.

use crate::code::{CmpOp, RCallSite, RInstr, ROp, RvmMethod, RvmProgram};
use cj_frontend::ast::{BinOp, UnOp};
use cj_frontend::span::Span;
use cj_frontend::types::MethodId;
use cj_vm::bytecode::{CompiledMethod, CompiledProgram, Instr, Lit};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Work counters of one [`RvmCache::lower`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RvmStats {
    /// Methods actually translated this call.
    pub methods_lowered: usize,
    /// Methods reused from the cache (unchanged stack-tier method).
    pub methods_reused: usize,
}

/// A per-method register-lowering memo; see the module docs.
#[derive(Debug, Default)]
pub struct RvmCache {
    /// Per method: the stack-tier artifact the translation came from
    /// (kept alive so pointer identity is sound) and the translation.
    methods: HashMap<MethodId, (Arc<CompiledMethod>, Arc<RvmMethod>)>,
}

impl RvmCache {
    /// An empty cache.
    pub fn new() -> RvmCache {
        RvmCache::default()
    }

    /// Register-lowers `p`, reusing every cached method whose stack-tier
    /// `Arc<CompiledMethod>` is unchanged (the stack tier's per-method
    /// memo already guarantees α-invariant reuse, so this inherits it).
    pub fn lower(&mut self, p: &CompiledProgram) -> (RvmProgram, RvmStats) {
        let mut span = cj_trace::span("pipeline", "rvm-lower");
        let mut rev: HashMap<usize, MethodId> =
            p.func_of.iter().map(|(id, &f)| (f as usize, *id)).collect();
        let mut stats = RvmStats::default();
        let mut fresh = HashMap::with_capacity(p.methods.len());
        let mut methods = Vec::with_capacity(p.methods.len());
        for (idx, m) in p.methods.iter().enumerate() {
            let id = rev.remove(&idx);
            let lowered = match id.and_then(|id| self.methods.get(&id)) {
                Some((witness, r)) if Arc::ptr_eq(witness, m) => {
                    stats.methods_reused += 1;
                    Arc::clone(r)
                }
                _ => {
                    stats.methods_lowered += 1;
                    Arc::new(translate_method(m))
                }
            };
            if let Some(id) = id {
                fresh.insert(id, (Arc::clone(m), Arc::clone(&lowered)));
            }
            methods.push(lowered);
        }
        // Dropping the old map evicts methods that no longer exist.
        self.methods = fresh;
        let program = RvmProgram {
            methods,
            func_of: p.func_of.clone(),
            vtables: p.vtables.clone(),
            subclass: p.subclass.clone(),
            main: p.main,
        };
        span.add("methods_lowered", stats.methods_lowered as u64);
        span.add("methods_reused", stats.methods_reused as u64);
        span.add("superinstructions", program.fused_count());
        (program, stats)
    }
}

/// One-shot register lowering of a whole program (no memo).
pub fn lower_program(p: &CompiledProgram) -> RvmProgram {
    RvmCache::new().lower(p).0
}

/// Encodes a [`BinOp`] for the generic [`ROp::Binary`] instruction.
pub(crate) fn bin_code(op: BinOp) -> u32 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Lt => 5,
        BinOp::Le => 6,
        BinOp::Gt => 7,
        BinOp::Ge => 8,
        BinOp::Eq => 9,
        BinOp::Ne => 10,
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops lower to jumps"),
    }
}

fn cmp_of(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::Le => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::Ge => Some(CmpOp::Ge),
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::Ne => Some(CmpOp::Ne),
        _ => None,
    }
}

/// An abstract operand: where the value the stack machine would have at
/// this depth actually lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AOp {
    /// Constant-pool entry, not yet materialized.
    Lit(u32),
    /// The current value of a variable register (spilled on mutation).
    Local(u16),
    /// Already materialized in its canonical stack-position temporary.
    Reg(u16),
}

struct Lowerer<'a> {
    m: &'a CompiledMethod,
    nlocals: u16,
    labels: HashSet<usize>,
    out: Vec<RInstr>,
    ospans: Vec<Span>,
    stack: Vec<AOp>,
    /// Stack pc → register pc (for jump-target fixup).
    map: Vec<u32>,
    /// Stack depth at each jump target (recorded at the jump).
    label_depth: HashMap<usize, usize>,
    consts: Vec<Lit>,
    calls: Vec<RCallSite>,
    fused: u32,
    max_temp: usize,
    /// Register pc below which backward fusion must not reach (set at
    /// every label so fused instructions never swallow a jump target).
    barrier: usize,
    /// Span of the stack instruction currently being translated.
    cur_span: Span,
}

/// Translates one stack-bytecode method into register form.
pub(crate) fn translate_method(m: &CompiledMethod) -> RvmMethod {
    let mut labels = HashSet::new();
    for i in &m.code {
        if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = i {
            labels.insert(*t as usize);
        }
    }
    let mut lo = Lowerer {
        m,
        nlocals: m.defaults.len() as u16,
        labels,
        out: Vec::with_capacity(m.code.len()),
        ospans: Vec::with_capacity(m.code.len()),
        stack: Vec::new(),
        map: vec![0; m.code.len() + 1],
        label_depth: HashMap::new(),
        consts: m.consts.clone(),
        calls: m
            .calls
            .iter()
            .map(|c| RCallSite {
                target: c.target,
                args: c.args.clone(),
                inst: c.inst.clone(),
                tail_start: c.tail_start,
                dst: 0,
                span: Span::DUMMY,
            })
            .collect(),
        fused: 0,
        max_temp: 0,
        barrier: 0,
        cur_span: Span::DUMMY,
    };
    lo.run();
    let map = std::mem::take(&mut lo.map);
    for i in &mut lo.out {
        if matches!(
            i.op,
            ROp::Jump
                | ROp::JmpIf
                | ROp::JmpIfNot
                | ROp::JmpCmp
                | ROp::JmpCmpNot
                | ROp::JmpCmpC
                | ROp::JmpCmpNotC
                | ROp::IncJump
        ) {
            i.t = map[i.t as usize];
        }
    }
    RvmMethod {
        name: m.name.clone(),
        code: lo.out,
        spans: lo.ospans,
        consts: lo.consts,
        defaults: m.defaults.clone(),
        params: m.params.clone(),
        has_this: m.has_this,
        class_params: m.class_params,
        abs_params: m.abs_params,
        region_slots: m.region_slots,
        nregs: lo.nlocals + lo.max_temp as u16,
        news: m.news.clone(),
        arrays: m.arrays.clone(),
        calls: lo.calls,
        casts: m.casts.clone(),
        fused: lo.fused,
    }
}

impl Lowerer<'_> {
    fn emit(&mut self, i: RInstr) {
        self.out.push(i);
        self.ospans.push(self.cur_span);
    }

    /// The canonical temporary register for stack depth `d`.
    fn temp(&mut self, d: usize) -> u16 {
        self.max_temp = self.max_temp.max(d + 1);
        self.nlocals + d as u16
    }

    /// Constant-pool index for `lit`, reusing an existing entry.
    fn konst(&mut self, lit: Lit) -> u32 {
        if let Some(i) = self.consts.iter().position(|&c| c == lit) {
            return i as u32;
        }
        self.consts.push(lit);
        (self.consts.len() - 1) as u32
    }

    /// Materializes abstract-stack entry `i` into its canonical
    /// temporary.
    fn materialize(&mut self, i: usize) {
        let dst = self.temp(i);
        match self.stack[i] {
            AOp::Reg(_) => return,
            AOp::Local(v) => self.emit(RInstr {
                a: dst,
                b: v,
                ..RInstr::new(ROp::Move)
            }),
            AOp::Lit(c) => self.emit(RInstr {
                a: dst,
                t: c,
                ..RInstr::new(ROp::LoadConst)
            }),
        }
        self.stack[i] = AOp::Reg(dst);
    }

    /// Spills every abstract-stack copy of variable `v` before `v` is
    /// mutated.
    fn spill_local(&mut self, v: u16) {
        for i in 0..self.stack.len() {
            if self.stack[i] == AOp::Local(v) {
                self.materialize(i);
            }
        }
    }

    /// Flushes the whole abstract stack to canonical form (join points).
    fn flush_all(&mut self) {
        for i in 0..self.stack.len() {
            self.materialize(i);
        }
    }

    /// The register holding a popped operand that occupied depth `d`
    /// (materializing a constant into `d`'s temporary if needed).
    fn use_op(&mut self, op: AOp, d: usize) -> u16 {
        match op {
            AOp::Local(v) => v,
            AOp::Reg(r) => r,
            AOp::Lit(c) => {
                let dst = self.temp(d);
                self.emit(RInstr {
                    a: dst,
                    t: c,
                    ..RInstr::new(ROp::LoadConst)
                });
                dst
            }
        }
    }

    /// Destination register for a value-producing instruction at
    /// `prod_pc`: folds a directly-following `StoreVar` into the
    /// destination when no label intervenes. Returns `(dst, folded)`.
    fn choose_dst(&mut self, prod_pc: usize) -> (u16, bool) {
        let next = prod_pc + 1;
        if !self.labels.contains(&next) {
            if let Some(Instr::StoreVar(v)) = self.m.code.get(next).copied() {
                self.spill_local(v);
                return (v, true);
            }
        }
        let d = self.stack.len();
        (self.temp(d), false)
    }

    /// Records (or checks) the stack depth jumpers deliver at `target`.
    fn note_label_depth(&mut self, target: usize) {
        let d = self.stack.len();
        let prev = self.label_depth.insert(target, d);
        debug_assert!(
            prev.is_none_or(|p| p == d),
            "inconsistent stack depth at jump target {target}"
        );
    }

    fn run(&mut self) {
        let n = self.m.code.len();
        let mut pc = 0usize;
        let mut dead = false;
        while pc < n {
            if self.labels.contains(&pc) {
                if dead {
                    // Reached only by jumps: the abstract stack is the
                    // canonical form at the recorded depth.
                    let depth = self.label_depth.get(&pc).copied().unwrap_or(0);
                    self.stack.clear();
                    for i in 0..depth {
                        let r = self.temp(i);
                        self.stack.push(AOp::Reg(r));
                    }
                } else {
                    self.cur_span = self.m.spans[pc];
                    self.flush_all();
                    self.note_label_depth(pc);
                }
                self.barrier = self.out.len();
            } else if dead {
                // Unreachable filler (never emitted by our codegen, but
                // harmless to skip).
                self.map[pc] = self.out.len() as u32;
                pc += 1;
                continue;
            }
            self.map[pc] = self.out.len() as u32;
            self.cur_span = self.m.spans[pc];
            let (skip, now_dead) = self.translate(pc);
            dead = now_dead;
            pc += 1 + skip;
        }
        self.map[n] = self.out.len() as u32;
    }

    /// Translates the instruction at `pc`; returns how many *extra*
    /// stack instructions were consumed by fusion and whether the
    /// translation ended in dead code (after `Jump`/`Ret`).
    fn translate(&mut self, pc: usize) -> (usize, bool) {
        let m = self.m;
        match m.code[pc] {
            Instr::Const(c) => {
                self.stack.push(AOp::Lit(c));
            }
            Instr::LoadVar(v) => {
                self.stack.push(AOp::Local(v));
            }
            Instr::StoreVar(v) => {
                let top = self.stack.pop().expect("operand");
                self.spill_local(v);
                match top {
                    AOp::Lit(c) => self.emit(RInstr {
                        a: v,
                        t: c,
                        ..RInstr::new(ROp::LoadConst)
                    }),
                    AOp::Local(u) if u == v => {}
                    AOp::Local(u) => self.emit(RInstr {
                        a: v,
                        b: u,
                        ..RInstr::new(ROp::Move)
                    }),
                    AOp::Reg(r) => self.emit(RInstr {
                        a: v,
                        b: r,
                        ..RInstr::new(ROp::Move)
                    }),
                }
            }
            Instr::ResetVar(v) => {
                self.spill_local(v);
                let c = self.konst(m.defaults[v as usize]);
                self.emit(RInstr {
                    a: v,
                    t: c,
                    ..RInstr::new(ROp::LoadConst)
                });
            }
            Instr::Pop => {
                self.stack.pop();
            }
            Instr::GetField { var, idx, ty } => {
                let (dst, folded) = self.choose_dst(pc);
                // load-field-then-call: `let t = v.f in m(…, t, …)`.
                let call_pc = pc + 2;
                if folded && call_pc < m.code.len() && !self.labels.contains(&call_pc) {
                    if let Instr::Call(s) = m.code[call_pc] {
                        let field_span = m.spans[pc];
                        let (cdst, cfolded) = self.choose_dst(call_pc);
                        self.calls[s as usize].dst = cdst;
                        self.calls[s as usize].span = m.spans[call_pc];
                        self.cur_span = field_span;
                        self.emit(RInstr {
                            a: dst,
                            b: var,
                            c: idx,
                            t: s,
                            ty,
                            ..RInstr::new(ROp::FieldCall)
                        });
                        self.fused += 1;
                        let here = (self.out.len() - 1) as u32;
                        self.map[pc + 1] = here;
                        self.map[call_pc] = here;
                        if cfolded {
                            self.map[call_pc + 1] = self.out.len() as u32;
                            return (3, false);
                        }
                        let d = self.stack.len();
                        let r = self.temp(d);
                        self.stack.push(AOp::Reg(r));
                        return (2, false);
                    }
                }
                self.emit(RInstr {
                    a: dst,
                    b: var,
                    c: idx,
                    ty,
                    ..RInstr::new(ROp::GetField)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::SetField { var, idx, ty } => {
                let val = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let src = self.use_op(val, d);
                self.emit(RInstr {
                    a: var,
                    b: src,
                    c: idx,
                    ty,
                    ..RInstr::new(ROp::SetField)
                });
            }
            Instr::NewObj(s) => {
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    t: s,
                    ..RInstr::new(ROp::NewObj)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::NewArr(s) => {
                let len = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let len_reg = self.use_op(len, d);
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    b: len_reg,
                    t: s,
                    ..RInstr::new(ROp::NewArr)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::Index { var, ty } => {
                let idx = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let idx_reg = self.use_op(idx, d);
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    b: var,
                    c: idx_reg,
                    ty,
                    ..RInstr::new(ROp::Index)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::SetIndex { var, ty } => {
                let val = self.stack.pop().expect("operand");
                let idx = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let idx_reg = self.use_op(idx, d);
                let val_reg = self.use_op(val, d + 1);
                self.emit(RInstr {
                    a: var,
                    b: idx_reg,
                    c: val_reg,
                    ty,
                    ..RInstr::new(ROp::SetIndex)
                });
            }
            Instr::ArrayLen(var) => {
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    b: var,
                    ..RInstr::new(ROp::ArrayLen)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::RegPush(slot) => self.emit(RInstr {
                a: slot,
                ..RInstr::new(ROp::RegPush)
            }),
            Instr::RegPop(slot) => self.emit(RInstr {
                a: slot,
                ..RInstr::new(ROp::RegPop)
            }),
            Instr::Call(s) => {
                let (dst, folded) = self.choose_dst(pc);
                self.calls[s as usize].dst = dst;
                self.calls[s as usize].span = m.spans[pc];
                self.emit(RInstr {
                    t: s,
                    ..RInstr::new(ROp::Call)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::Cast(s) => {
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    t: s,
                    ..RInstr::new(ROp::Cast)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::Jump(t) => {
                self.flush_all();
                self.note_label_depth(t as usize);
                // inc-and-loop: fuse a trailing `i = i + k` into the
                // back edge (never across a label).
                let last = self.out.len();
                if last > self.barrier {
                    let prev = self.out[last - 1];
                    if prev.op == ROp::AddImm && prev.a == prev.b {
                        self.out[last - 1] = RInstr {
                            a: prev.a,
                            t,
                            imm: prev.imm,
                            ..RInstr::new(ROp::IncJump)
                        };
                        self.fused += 1;
                        return (0, true);
                    }
                }
                self.emit(RInstr {
                    t,
                    ..RInstr::new(ROp::Jump)
                });
                return (0, true);
            }
            Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => {
                let cond = self.stack.pop().expect("operand");
                let d = self.stack.len();
                self.flush_all();
                let reg = self.use_op(cond, d);
                self.note_label_depth(t as usize);
                let op = if matches!(m.code[pc], Instr::JumpIfFalse(_)) {
                    ROp::JmpIfNot
                } else {
                    ROp::JmpIf
                };
                self.emit(RInstr {
                    a: reg,
                    t,
                    ..RInstr::new(op)
                });
            }
            Instr::Unary(op) => {
                let v = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let src = self.use_op(v, d);
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    b: src,
                    c: match op {
                        UnOp::Neg => 0,
                        UnOp::Not => 1,
                    },
                    ..RInstr::new(ROp::Unary)
                });
                return self.finish_producer(pc, dst, folded);
            }
            Instr::Binary(op) => return self.translate_binary(pc, op),
            Instr::Print => {
                let v = self.stack.pop().expect("operand");
                let d = self.stack.len();
                let src = self.use_op(v, d);
                self.emit(RInstr {
                    a: src,
                    ..RInstr::new(ROp::Print)
                });
            }
            Instr::Ret => {
                let v = self.stack.pop().expect("return value");
                let d = self.stack.len();
                let src = self.use_op(v, d);
                self.emit(RInstr {
                    a: src,
                    ..RInstr::new(ROp::Ret)
                });
                return (0, true);
            }
        }
        (0, false)
    }

    /// Pushes a producer's result (or records the folded `StoreVar`).
    fn finish_producer(&mut self, pc: usize, dst: u16, folded: bool) -> (usize, bool) {
        if folded {
            self.map[pc + 1] = self.out.len() as u32;
            (1, false)
        } else {
            self.stack.push(AOp::Reg(dst));
            (0, false)
        }
    }

    fn translate_binary(&mut self, pc: usize, op: BinOp) -> (usize, bool) {
        let m = self.m;
        let r = self.stack.pop().expect("operand");
        let l = self.stack.pop().expect("operand");
        let d = self.stack.len();

        // Fused compare-and-branch (constants move to the rhs).
        let branch_pc = pc + 1;
        if let Some(cmp) = cmp_of(op) {
            if branch_pc < m.code.len() && !self.labels.contains(&branch_pc) {
                if let Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = m.code[branch_pc] {
                    let on_true = matches!(m.code[branch_pc], Instr::JumpIfTrue(_));
                    let fused = match (l, r) {
                        (l, AOp::Lit(c)) if !matches!(l, AOp::Lit(_)) => {
                            let lhs = self.use_op(l, d);
                            Some((lhs, None, c, cmp))
                        }
                        (AOp::Lit(c), r) if !matches!(r, AOp::Lit(_)) => {
                            let lhs = self.use_op(r, d + 1);
                            Some((lhs, None, c, cmp.mirrored()))
                        }
                        (l, r) => {
                            let lhs = self.use_op(l, d);
                            let rhs = self.use_op(r, d + 1);
                            Some((lhs, Some(rhs), 0, cmp))
                        }
                    };
                    if let Some((lhs, rhs, cidx, cmp)) = fused {
                        self.flush_all();
                        self.note_label_depth(t as usize);
                        let rop = match (rhs, on_true) {
                            (Some(_), true) => ROp::JmpCmp,
                            (Some(_), false) => ROp::JmpCmpNot,
                            (None, true) => ROp::JmpCmpC,
                            (None, false) => ROp::JmpCmpNotC,
                        };
                        self.emit(RInstr {
                            a: lhs,
                            b: rhs.unwrap_or(0),
                            c: cmp.code(),
                            t,
                            imm: i64::from(cidx),
                            ..RInstr::new(rop)
                        });
                        self.fused += 1;
                        self.map[branch_pc] = (self.out.len() - 1) as u32;
                        return (1, false);
                    }
                }
            }
        }

        // Add/subtract an integer literal → AddImm.
        let imm_of = |a: AOp, consts: &[Lit]| match a {
            AOp::Lit(c) => match consts[c as usize] {
                Lit::Int(k) => Some(k),
                _ => None,
            },
            _ => None,
        };
        if matches!(op, BinOp::Add | BinOp::Sub) {
            let fold = match (imm_of(l, &self.consts), imm_of(r, &self.consts)) {
                (None, Some(k)) => {
                    let imm = if op == BinOp::Sub {
                        k.wrapping_neg()
                    } else {
                        k
                    };
                    Some((l, d, imm))
                }
                (Some(k), None) if op == BinOp::Add => Some((r, d + 1, k)),
                _ => None,
            };
            if let Some((src, depth, imm)) = fold {
                let src = self.use_op(src, depth);
                let (dst, folded) = self.choose_dst(pc);
                self.emit(RInstr {
                    a: dst,
                    b: src,
                    imm,
                    ..RInstr::new(ROp::AddImm)
                });
                self.fused += 1;
                return self.finish_producer(pc, dst, folded);
            }
        }

        let lhs = self.use_op(l, d);
        let rhs = self.use_op(r, d + 1);
        let (dst, folded) = self.choose_dst(pc);
        self.emit(RInstr {
            a: dst,
            b: lhs,
            c: rhs,
            t: bin_code(op),
            ..RInstr::new(ROp::Binary)
        });
        self.finish_producer(pc, dst, folded)
    }
}
