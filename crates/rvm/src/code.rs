//! The register IR the direct-threaded engine executes.
//!
//! One [`RvmProgram`] mirrors a [`CompiledProgram`]'s global tables
//! (function indices, vtables, subclass matrix) but every method body is
//! re-lowered from stack bytecode into three-address register code:
//!
//! - **registers** are one flat per-frame file: slots `0..nlocals` are
//!   the method's variable slots (same numbering as the stack VM, so the
//!   site tables' variable operands are register operands verbatim), and
//!   slots `nlocals..nregs` are *stack-position temporaries* — the
//!   canonical home of the value the stack machine would hold at that
//!   operand-stack depth;
//! - **operands are folded into instructions**: constants, field
//!   indices, vtable-resolved call sites and region slots all ride in
//!   the instruction word, so the hot loop never touches an operand
//!   stack;
//! - **superinstructions** fuse the hottest stack idioms into one
//!   dispatch: compare-and-branch ([`ROp::JmpCmp`]* — with a register or
//!   constant-pool right-hand side), add-immediate and the loop-closing
//!   increment-and-jump ([`ROp::AddImm`]/[`ROp::IncJump`]), and
//!   load-field-then-call ([`ROp::FieldCall`]).
//!
//! Instructions are a fixed-width struct (opcode + three register
//! operands + a table index + an immediate); the executor indexes a
//! dense fn-pointer table with the opcode — see [`exec`](crate::exec).
//!
//! [`CompiledProgram`]: cj_vm::bytecode::CompiledProgram

use cj_frontend::span::Span;
use cj_frontend::types::MethodId;
use cj_vm::bytecode::{ArraySite, CallTarget, CastSite, Lit, NewSite, RegRef, SlotTy};
use std::collections::HashMap;
use std::sync::Arc;

/// Comparison kind of a fused compare-and-branch (`Eq`/`Ne` use the
/// engine's reference-identity `value_eq`, exactly like [`Instr::Binary`]
/// on the stack VM).
///
/// [`Instr::Binary`]: cj_vm::bytecode::Instr::Binary
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Decodes the `c` operand of a compare-and-branch instruction.
    #[inline]
    pub fn from_code(c: u16) -> CmpOp {
        match c {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Gt,
            3 => CmpOp::Ge,
            4 => CmpOp::Eq,
            _ => CmpOp::Ne,
        }
    }

    /// Encodes this comparison for the `c` operand.
    #[inline]
    pub fn code(self) -> u16 {
        match self {
            CmpOp::Lt => 0,
            CmpOp::Le => 1,
            CmpOp::Gt => 2,
            CmpOp::Ge => 3,
            CmpOp::Eq => 4,
            CmpOp::Ne => 5,
        }
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`) —
    /// used to move a constant operand to the right-hand side.
    pub fn mirrored(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

/// Register-IR opcodes. The discriminant is the index into the
/// executor's dense handler table, so the order here and the order of
/// `HANDLERS` in `exec.rs` must match (pinned by a unit test there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ROp {
    /// `r[a] = consts[t]`.
    LoadConst,
    /// `r[a] = r[b]`.
    Move,
    /// `r[a] = r[b] + imm` (wrapping int add — a fused
    /// `Const; Binary(Add/Sub)` with an integer literal operand).
    AddImm,
    /// `r[a] = op(r[b])` with `c` the unary-op code (0 = neg, 1 = not).
    Unary,
    /// `r[a] = r[b] ⊕ r[c]` with `t` the
    /// [`BinOp`](cj_frontend::ast::BinOp) code.
    Binary,
    /// `r[a] = decode(ty, field idx c of the object in r[b])`.
    GetField,
    /// `field idx c of the object in r[a] = encode(ty, r[b])`.
    SetField,
    /// `r[a] = decode(ty, element r[c] of the array in r[b])`.
    Index,
    /// `element r[b] of the array in r[a] = encode(ty, r[c])`.
    SetIndex,
    /// `r[a] = length of the array in r[b]`.
    ArrayLen,
    /// `r[a] = new object` per [`NewSite`] `t`.
    NewObj,
    /// `r[a] = new array` of length `r[b]` per [`ArraySite`] `t`.
    NewArr,
    /// Enter a `letreg`: create a region (a bump-pointer arena) and bind
    /// it to frame region slot `a`.
    RegPush,
    /// Leave a `letreg`: free region slot `a`'s arena wholesale.
    RegPop,
    /// Call per [`RCallSite`] `t`; the result lands in the site's `dst`.
    Call,
    /// Superinstruction: `r[a] = decode(ty, field c of r[b])`, then call
    /// per [`RCallSite`] `t` — the let-bound `recv.field` argument feed
    /// of every recursive traversal, in one dispatch.
    FieldCall,
    /// `r[a] = cast` per [`CastSite`] `t`.
    Cast,
    /// Unconditional jump to `t`.
    Jump,
    /// Jump to `t` when `r[a]` is true.
    JmpIf,
    /// Jump to `t` when `r[a]` is false.
    JmpIfNot,
    /// Fused compare-and-branch: jump to `t` when `r[a] ⊙ r[b]` holds.
    JmpCmp,
    /// Jump to `t` when `r[a] ⊙ r[b]` does **not** hold.
    JmpCmpNot,
    /// Jump to `t` when `r[a] ⊙ consts[imm]` holds.
    JmpCmpC,
    /// Jump to `t` when `r[a] ⊙ consts[imm]` does **not** hold.
    JmpCmpNotC,
    /// Superinstruction: `r[a] = r[a] + imm; jump t` — a loop-closing
    /// induction-variable bump in one dispatch.
    IncJump,
    /// Record `r[a]`'s rendering in the print log.
    Print,
    /// Return `r[a]` to the caller's destination register.
    Ret,
}

/// Number of opcodes (the handler-table length).
pub const OP_COUNT: usize = 27;

/// One fixed-width register instruction. Field meaning is per-opcode
/// (see [`ROp`]); unused fields are zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RInstr {
    /// Opcode — the handler-table index.
    pub op: ROp,
    /// First register operand (usually the destination).
    pub a: u16,
    /// Second register operand.
    pub b: u16,
    /// Third register operand / small code (field index, cmp/unary op).
    pub c: u16,
    /// Table index or jump target.
    pub t: u32,
    /// Immediate: `AddImm`/`IncJump` addend, `JmpCmp*C` constant-pool
    /// index.
    pub imm: i64,
    /// Field/element representation for the memory opcodes.
    pub ty: SlotTy,
}

impl RInstr {
    /// An instruction with every operand zeroed.
    pub fn new(op: ROp) -> RInstr {
        RInstr {
            op,
            a: 0,
            b: 0,
            c: 0,
            t: 0,
            imm: 0,
            ty: SlotTy::Int,
        }
    }
}

/// A call site in register code: the stack VM's [`CallSite`] plus the
/// caller register receiving the result and the call's source span
/// (receiver/limit faults at a fused [`ROp::FieldCall`] must still
/// report the *call*'s span, while the field half reports the field's).
///
/// [`CallSite`]: cj_vm::bytecode::CallSite
#[derive(Debug, Clone, PartialEq)]
pub struct RCallSite {
    /// Who is called.
    pub target: CallTarget,
    /// Caller registers passed positionally to the callee's parameters
    /// (variable slots, unchanged from the stack form).
    pub args: Vec<u16>,
    /// Region arguments, resolved against the caller's frame.
    pub inst: Vec<RegRef>,
    /// Where the callee's *method* region parameters start inside
    /// `inst`.
    pub tail_start: u16,
    /// Caller register the return value lands in.
    pub dst: u16,
    /// The call expression's source span.
    pub span: Span,
}

/// One register-lowered method body.
#[derive(Debug, Clone, PartialEq)]
pub struct RvmMethod {
    /// Display name (`cn.mn` or `mn`).
    pub name: String,
    /// The instruction stream; ends in [`ROp::Ret`].
    pub code: Vec<RInstr>,
    /// Source span per instruction, parallel to `code`.
    pub spans: Vec<Span>,
    /// Constant pool (the stack method's pool, possibly extended with
    /// folded defaults).
    pub consts: Vec<Lit>,
    /// Default value per *variable* register (frame initialization;
    /// temporaries initialize to unit).
    pub defaults: Vec<Lit>,
    /// Parameter registers, in declaration order (excluding `this`).
    pub params: Vec<u16>,
    /// Whether register 0 is a `this` receiver.
    pub has_this: bool,
    /// Class region parameters (bound from the receiver at virtual
    /// calls).
    pub class_params: u16,
    /// Abstraction region parameters (class prefix + method parameters).
    pub abs_params: u16,
    /// Total frame region slots.
    pub region_slots: u16,
    /// Frame register-file size: variable slots then stack-position
    /// temporaries.
    pub nregs: u16,
    /// Allocation sites (shared shape with the stack VM).
    pub news: Vec<NewSite>,
    /// Array-allocation sites.
    pub arrays: Vec<ArraySite>,
    /// Call sites, with destination registers and spans.
    pub calls: Vec<RCallSite>,
    /// Cast sites.
    pub casts: Vec<CastSite>,
    /// Statically fused superinstructions in this body (a lowering
    /// metric).
    pub fused: u32,
}

/// A fully register-lowered program.
#[derive(Debug, Clone)]
pub struct RvmProgram {
    /// Every method, same indexing as the source
    /// [`CompiledProgram`](cj_vm::bytecode::CompiledProgram).
    pub methods: Vec<Arc<RvmMethod>>,
    /// Function index per source method id.
    pub func_of: HashMap<MethodId, u32>,
    /// Per-class virtual dispatch table.
    pub vtables: Vec<Vec<u32>>,
    /// `subclass[a][b]` ⇔ class `a` is `b` or inherits from it.
    pub subclass: Vec<Vec<bool>>,
    /// The static `main` entry point, if one exists.
    pub main: Option<u32>,
}

impl RvmProgram {
    /// Total register instructions across all methods.
    pub fn instruction_count(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }

    /// Total statically fused superinstructions across all methods.
    pub fn fused_count(&self) -> u64 {
        self.methods.iter().map(|m| u64::from(m.fused)).sum()
    }
}
