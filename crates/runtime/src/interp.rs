//! A big-step interpreter for region-annotated Core-Java.
//!
//! The interpreter executes the *annotated* program: `letreg` pushes and
//! pops real regions, `new cn⟨r…⟩` allocates into the region bound to `r`,
//! and method calls carry region arguments exactly as in the target
//! language's dynamic semantics. Every object access checks that the
//! object's region is still live, so a dangling access — impossible for
//! well-region-typed programs, Theorem 1 — is detected and reported rather
//! than silently misbehaving. This is the validation harness behind the
//! integration suite and the space-reuse measurements of Fig 8.

use crate::region::{RegionError, RegionId, RegionManager, SpaceStats};
use crate::store::{object_bytes, ObjData, ObjId, Object, Store, Value};
use cj_frontend::ast::{BinOp, UnOp};
use cj_frontend::span::Span;
use cj_frontend::types::{ClassId, MethodId, NType, Prim};
use cj_infer::rast::{RExpr, RExprKind, RProgram};
use cj_regions::var::RegVar;
use std::collections::HashMap;
use std::fmt;

/// Errors raised during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Dereference of `null`.
    NullPointer(Span),
    /// `(cn) v` failed: the object's class is not a subclass of `cn`.
    CastFailed(Span),
    /// Array index out of range.
    IndexOutOfBounds(Span),
    /// Integer division or remainder by zero.
    DivisionByZero(Span),
    /// Access to an object whose region has been deleted. Never happens
    /// for programs accepted by the region checker.
    DanglingAccess(Span),
    /// Region allocator violation.
    Region(RegionError),
    /// The configured step budget was exhausted.
    StepLimit,
    /// The configured call-depth budget was exhausted.
    DepthLimit,
    /// No static `main` method exists.
    NoMain,
    /// `main` received the wrong number/kinds of arguments.
    BadMainArgs,
    /// Negative array length.
    NegativeLength(Span),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::NullPointer(_) => f.write_str("null pointer dereference"),
            RuntimeError::CastFailed(_) => f.write_str("downcast failed"),
            RuntimeError::IndexOutOfBounds(_) => f.write_str("array index out of bounds"),
            RuntimeError::DivisionByZero(_) => f.write_str("division by zero"),
            RuntimeError::DanglingAccess(_) => f.write_str("dangling region access"),
            RuntimeError::Region(e) => write!(f, "region error: {e}"),
            RuntimeError::StepLimit => f.write_str("step limit exceeded"),
            RuntimeError::DepthLimit => f.write_str("call depth limit exceeded"),
            RuntimeError::NoMain => f.write_str("no static `main` method"),
            RuntimeError::BadMainArgs => f.write_str("bad arguments for `main`"),
            RuntimeError::NegativeLength(_) => f.write_str("negative array length"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl RuntimeError {
    /// The source location of the fault, where one is known.
    pub fn span(&self) -> Option<Span> {
        match self {
            RuntimeError::NullPointer(s)
            | RuntimeError::CastFailed(s)
            | RuntimeError::IndexOutOfBounds(s)
            | RuntimeError::DivisionByZero(s)
            | RuntimeError::DanglingAccess(s)
            | RuntimeError::NegativeLength(s) => Some(*s),
            RuntimeError::Region(_)
            | RuntimeError::StepLimit
            | RuntimeError::DepthLimit
            | RuntimeError::NoMain
            | RuntimeError::BadMainArgs => None,
        }
    }
}

impl cj_diag::IntoDiagnostic for RuntimeError {
    fn into_diagnostic(self) -> cj_diag::Diagnostic {
        let span = self.span().unwrap_or(Span::DUMMY);
        let mut d =
            cj_diag::Diagnostic::error(self.to_string(), span).with_code(cj_diag::codes::RUNTIME);
        if matches!(self, RuntimeError::DanglingAccess(_)) {
            d = d.with_note(
                "checked programs never dangle (Theorem 1); this indicates \
                 an inference or checker bug",
            );
        }
        d
    }
}

impl From<RegionError> for RuntimeError {
    fn from(e: RegionError) -> Self {
        RuntimeError::Region(e)
    }
}

/// Which execution engine runs the annotated program. Both engines share
/// [`RunConfig`], the [`RuntimeError`] vocabulary, and the [`SpaceStats`]
/// size model, and must produce identical observable behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The `cj-vm` stack-bytecode VM with real bump-arena region
    /// allocation.
    #[default]
    Vm,
    /// The `cj-rvm` register-machine tier: stack bytecode re-lowered to
    /// a register IR with superinstructions, direct-threaded dispatch.
    Rvm,
    /// The tree-walking reference interpreter in this crate.
    Interp,
}

impl Engine {
    /// Canonical names accepted by [`FromStr`](std::str::FromStr).
    pub const NAMES: [&'static str; 3] = ["vm", "rvm", "interp"];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Vm => "vm",
            Engine::Rvm => "rvm",
            Engine::Interp => "interp",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "vm" => Ok(Engine::Vm),
            "rvm" => Ok(Engine::Rvm),
            "interp" | "interpreter" => Ok(Engine::Interp),
            other => Err(format!(
                "unknown engine `{other}` (expected one of: {})",
                Engine::NAMES.join(", ")
            )),
        }
    }
}

/// Execution configuration, shared by the interpreter and the `cj-vm`
/// bytecode VM so limits and defaults never diverge between engines.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Maximum execution steps (interpreter evaluation steps, VM
    /// instructions) before aborting with [`RuntimeError::StepLimit`].
    pub step_limit: u64,
    /// Maximum method-call depth before aborting with
    /// [`RuntimeError::DepthLimit`]. Identical in both engines.
    pub max_depth: u32,
    /// Region-erasure mode: ignore `letreg` and allocate everything in the
    /// heap. The paper proves annotated and erased programs bisimilar; the
    /// integration suite compares the two executions' observable behaviour.
    pub erase_regions: bool,
    /// Which engine a driver-level `run` should use. The engines themselves
    /// ignore this field — it is carried here so every layer (CLI, serve,
    /// daemon, `Workspace`) selects engines through one configuration type.
    pub engine: Engine,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            step_limit: 2_000_000_000,
            max_depth: 200_000,
            erase_regions: false,
            engine: Engine::default(),
        }
    }
}

/// The result of a complete run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The value returned by the entry method.
    pub value: Value,
    /// Space accounting (Fig 8's metric).
    pub space: SpaceStats,
    /// Steps executed.
    pub steps: u64,
    /// Captured `print` output.
    pub prints: Vec<String>,
}

/// Runs the program's static `main`.
///
/// # Errors
///
/// Any [`RuntimeError`]; for checked programs, dangling-access errors
/// cannot occur.
pub fn run_main(p: &RProgram, args: &[Value], cfg: RunConfig) -> Result<Outcome, RuntimeError> {
    let (idx, _) = p
        .kernel
        .table
        .lookup_static(cj_frontend::Symbol::intern("main"))
        .ok_or(RuntimeError::NoMain)?;
    run_static(p, MethodId::Static(idx), args, cfg)
}

/// Runs an arbitrary static method as the entry point.
///
/// # Errors
///
/// See [`run_main`].
pub fn run_static(
    p: &RProgram,
    id: MethodId,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let km = p.kernel.method(id);
    if km.params.len() != args.len() {
        return Err(RuntimeError::BadMainArgs);
    }
    let mut interp = Interp {
        p,
        regions: RegionManager::new(),
        store: Store::new(),
        steps: 0,
        limit: cfg.step_limit,
        depth: 0,
        max_depth: cfg.max_depth,
        erase: cfg.erase_regions,
        prints: Vec::new(),
    };
    let rm = p.rmethod(id);
    let mut frame = Frame::new(id, km.vars.len());
    for (i, &a) in args.iter().enumerate() {
        frame.vars[km.params[i].index()] = a;
    }
    // Entry-point region parameters are bound to the heap.
    for &r in &rm.abs_params {
        frame.regmap.insert(r, RegionId::HEAP);
    }
    let value = interp.eval(&mut frame, &rm.body)?;
    Ok(Outcome {
        value,
        space: interp.regions.stats(),
        steps: interp.steps,
        prints: interp.prints,
    })
}

/// Like [`run_main`] but on a dedicated thread with a large stack, for
/// deeply recursive programs (e.g. merge sort over long lists).
///
/// # Errors
///
/// See [`run_main`].
///
/// # Panics
///
/// Panics if the worker thread cannot be spawned or itself panics.
pub fn run_main_big_stack(
    p: &RProgram,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    std::thread::scope(|s| {
        std::thread::Builder::new()
            .stack_size(1 << 29) // 512 MiB
            .spawn_scoped(s, || run_main(p, args, cfg))
            .expect("spawn interpreter thread")
            .join()
            .expect("interpreter thread panicked")
    })
}

struct Frame {
    method: MethodId,
    vars: Vec<Value>,
    regmap: HashMap<RegVar, RegionId>,
}

impl Frame {
    fn new(method: MethodId, nvars: usize) -> Frame {
        Frame {
            method,
            vars: vec![Value::Null; nvars],
            regmap: HashMap::new(),
        }
    }
}

struct Interp<'a> {
    p: &'a RProgram,
    regions: RegionManager,
    store: Store,
    steps: u64,
    limit: u64,
    depth: u32,
    max_depth: u32,
    erase: bool,
    prints: Vec<String>,
}

impl<'a> Interp<'a> {
    fn region(&self, frame: &Frame, r: RegVar) -> RegionId {
        if self.erase || r.is_heap() {
            return RegionId::HEAP;
        }
        frame.regmap.get(&r).copied().unwrap_or(RegionId::HEAP)
    }

    fn deref(&self, v: Value, span: Span) -> Result<ObjId, RuntimeError> {
        match v {
            Value::Ref(o) => {
                if !self.regions.is_live(self.store.get(o).region) {
                    return Err(RuntimeError::DanglingAccess(span));
                }
                Ok(o)
            }
            Value::Null => Err(RuntimeError::NullPointer(span)),
            _ => Err(RuntimeError::NullPointer(span)),
        }
    }

    fn eval(&mut self, frame: &mut Frame, e: &RExpr) -> Result<Value, RuntimeError> {
        self.steps += 1;
        if self.steps > self.limit {
            return Err(RuntimeError::StepLimit);
        }
        match &e.kind {
            RExprKind::Unit => Ok(Value::Unit),
            RExprKind::Int(v) => Ok(Value::Int(*v)),
            RExprKind::Bool(v) => Ok(Value::Bool(*v)),
            RExprKind::Float(v) => Ok(Value::Float(*v)),
            RExprKind::Null => Ok(Value::Null),
            RExprKind::Var(v) => Ok(frame.vars[v.index()]),
            RExprKind::Field(v, fref) => {
                let o = self.deref(frame.vars[v.index()], e.span)?;
                match &self.store.get(o).data {
                    ObjData::Fields(fs) => Ok(fs[fref.index as usize]),
                    ObjData::Array(_, _) => unreachable!("field read on array"),
                }
            }
            RExprKind::AssignVar(v, rhs) => {
                let val = self.eval(frame, rhs)?;
                frame.vars[v.index()] = val;
                Ok(Value::Unit)
            }
            RExprKind::AssignField(v, fref, rhs) => {
                let val = self.eval(frame, rhs)?;
                let o = self.deref(frame.vars[v.index()], e.span)?;
                match &mut self.store.get_mut(o).data {
                    ObjData::Fields(fs) => fs[fref.index as usize] = val,
                    ObjData::Array(_, _) => unreachable!("field write on array"),
                }
                Ok(Value::Unit)
            }
            RExprKind::New {
                class,
                regions,
                args,
            } => {
                let ids: Vec<RegionId> = regions.iter().map(|&r| self.region(frame, r)).collect();
                let fields: Vec<Value> = args.iter().map(|&a| frame.vars[a.index()]).collect();
                self.regions.alloc(ids[0], object_bytes(fields.len()))?;
                let obj = self.store.insert(Object {
                    class: Some(*class),
                    region: ids[0],
                    regions: ids,
                    data: ObjData::Fields(fields),
                });
                Ok(Value::Ref(obj))
            }
            RExprKind::NewArray { elem, region, len } => {
                let n = self.eval(frame, len)?.as_int().expect("length is int");
                if n < 0 {
                    return Err(RuntimeError::NegativeLength(e.span));
                }
                let rid = self.region(frame, *region);
                self.regions.alloc(rid, object_bytes(n as usize))?;
                let obj = self.store.insert(Object {
                    class: None,
                    region: rid,
                    regions: vec![rid],
                    data: ObjData::Array(*elem, vec![Value::zero(*elem); n as usize]),
                });
                Ok(Value::Ref(obj))
            }
            RExprKind::Index(v, idx) => {
                let i = self.eval(frame, idx)?.as_int().expect("index is int");
                let o = self.deref(frame.vars[v.index()], e.span)?;
                match &self.store.get(o).data {
                    ObjData::Array(_, data) => data
                        .get(i as usize)
                        .copied()
                        .ok_or(RuntimeError::IndexOutOfBounds(e.span)),
                    ObjData::Fields(_) => unreachable!("index on object"),
                }
            }
            RExprKind::AssignIndex(v, idx, val) => {
                let i = self.eval(frame, idx)?.as_int().expect("index is int");
                let val = self.eval(frame, val)?;
                let o = self.deref(frame.vars[v.index()], e.span)?;
                match &mut self.store.get_mut(o).data {
                    ObjData::Array(_, data) => {
                        let slot = data
                            .get_mut(i as usize)
                            .ok_or(RuntimeError::IndexOutOfBounds(e.span))?;
                        *slot = val;
                        Ok(Value::Unit)
                    }
                    ObjData::Fields(_) => unreachable!("index write on object"),
                }
            }
            RExprKind::ArrayLen(v) => {
                let o = self.deref(frame.vars[v.index()], e.span)?;
                match &self.store.get(o).data {
                    ObjData::Array(_, data) => Ok(Value::Int(data.len() as i64)),
                    ObjData::Fields(_) => unreachable!("length of object"),
                }
            }
            RExprKind::CallVirtual {
                recv,
                method,
                inst,
                args,
            } => {
                let o = self.deref(frame.vars[recv.index()], e.span)?;
                let runtime_class = self.store.get(o).class.expect("object");
                let target = self.dispatch(runtime_class, *method);
                self.call(frame, target, Some(o), *method, inst, args, e.span)
            }
            RExprKind::CallStatic { method, inst, args } => {
                self.call(frame, *method, None, *method, inst, args, e.span)
            }
            RExprKind::Seq(a, b) => {
                self.eval(frame, a)?;
                self.eval(frame, b)
            }
            RExprKind::Let { var, init, body } => {
                if let Some(init) = init {
                    let v = self.eval(frame, init)?;
                    frame.vars[var.index()] = v;
                } else {
                    // Fresh declaration without initializer: reset the slot
                    // (loops re-enter Lets).
                    let ty = self.p.kernel.method(frame.method).vars[var.index()].ty;
                    frame.vars[var.index()] = default_value(ty);
                }
                self.eval(frame, body)
            }
            RExprKind::Letreg(r, inner) => {
                if self.erase {
                    // Region-erasure semantics: the letreg is a no-op.
                    return self.eval(frame, inner);
                }
                let rid = self.regions.push();
                frame.regmap.insert(*r, rid);
                let result = self.eval(frame, inner);
                frame.regmap.remove(r);
                self.regions.pop(rid)?;
                result
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                let c = self.eval(frame, cond)?.as_bool().expect("condition");
                if c {
                    self.eval(frame, then_e)
                } else {
                    self.eval(frame, else_e)
                }
            }
            RExprKind::While { cond, body } => {
                loop {
                    self.steps += 1;
                    if self.steps > self.limit {
                        return Err(RuntimeError::StepLimit);
                    }
                    let c = self.eval(frame, cond)?.as_bool().expect("condition");
                    if !c {
                        break;
                    }
                    self.eval(frame, body)?;
                }
                Ok(Value::Unit)
            }
            RExprKind::Cast { class, var, .. } => {
                let v = frame.vars[var.index()];
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Ref(o) => {
                        let rc = self.store.get(o).class.expect("object");
                        if self.p.kernel.table.is_subclass(rc, *class) {
                            Ok(v)
                        } else {
                            Err(RuntimeError::CastFailed(e.span))
                        }
                    }
                    _ => Err(RuntimeError::CastFailed(e.span)),
                }
            }
            RExprKind::Unary(op, a) => {
                let v = self.eval(frame, a)?;
                Ok(match (op, v) {
                    (UnOp::Neg, Value::Int(x)) => Value::Int(x.wrapping_neg()),
                    (UnOp::Neg, Value::Float(x)) => Value::Float(-x),
                    (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
                    _ => unreachable!("ill-typed unary"),
                })
            }
            RExprKind::Binary(op, a, b) => self.binary(frame, *op, a, b, e.span),
            RExprKind::Print(a) => {
                let v = self.eval(frame, a)?;
                self.prints.push(v.to_string());
                Ok(Value::Unit)
            }
        }
    }

    fn dispatch(&self, runtime_class: ClassId, decl: MethodId) -> MethodId {
        let MethodId::Instance(c, slot) = decl else {
            return decl;
        };
        let name = self.p.kernel.table.class(c).own_methods[slot as usize].name;
        let (decl_class, _) = self
            .p
            .kernel
            .table
            .lookup_method(runtime_class, name)
            .expect("method exists on runtime class");
        let s = self
            .p
            .kernel
            .table
            .class(decl_class)
            .own_methods
            .iter()
            .position(|m| m.name == name)
            .expect("present") as u32;
        MethodId::Instance(decl_class, s)
    }

    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        caller: &mut Frame,
        target: MethodId,
        receiver: Option<ObjId>,
        declared: MethodId,
        inst: &[RegVar],
        args: &[cj_frontend::VarId],
        _span: Span,
    ) -> Result<Value, RuntimeError> {
        if self.depth >= self.max_depth {
            return Err(RuntimeError::DepthLimit);
        }
        self.depth += 1;
        let km = self.p.kernel.method(target);
        let rm = self.p.rmethod(target);
        let mut frame = Frame::new(target, km.vars.len());
        // Default-initialize every slot by type.
        for (i, v) in km.vars.iter().enumerate() {
            frame.vars[i] = default_value(v.ty);
        }
        if let Some(o) = receiver {
            frame.vars[0] = Value::Ref(o);
        }
        for (&p, &a) in km.params.iter().zip(args) {
            frame.vars[p.index()] = caller.vars[a.index()];
        }
        // Region environment: class parameters from the receiver's recorded
        // regions; method parameters from the (resolved) instantiation.
        let resolved: Vec<RegionId> = inst.iter().map(|&r| self.region(caller, r)).collect();
        match target {
            MethodId::Instance(tc, _) => {
                let obj_regions = receiver
                    .map(|o| self.store.get(o).regions.clone())
                    .unwrap_or_default();
                let tclass_params = &self.p.rclass(tc).params;
                for (i, &cp) in tclass_params.iter().enumerate() {
                    let rid = obj_regions.get(i).copied().unwrap_or(RegionId::HEAP);
                    frame.regmap.insert(cp, rid);
                }
                // Method region parameters: positionally from the declared
                // method's instantiation tail.
                let decl_class_arity = match declared {
                    MethodId::Instance(dc, _) => self.p.rclass(dc).params.len(),
                    MethodId::Static(_) => 0,
                };
                let tail = &resolved[decl_class_arity.min(resolved.len())..];
                for (i, &mp) in rm.mparams.iter().enumerate() {
                    let rid = tail.get(i).copied().unwrap_or(RegionId::HEAP);
                    frame.regmap.insert(mp, rid);
                }
            }
            MethodId::Static(_) => {
                for (i, &ap) in rm.abs_params.iter().enumerate() {
                    let rid = resolved.get(i).copied().unwrap_or(RegionId::HEAP);
                    frame.regmap.insert(ap, rid);
                }
            }
        }
        let result = self.eval(&mut frame, &rm.body);
        self.depth -= 1;
        result
    }

    fn binary(
        &mut self,
        frame: &mut Frame,
        op: BinOp,
        a: &RExpr,
        b: &RExpr,
        span: Span,
    ) -> Result<Value, RuntimeError> {
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let l = self.eval(frame, a)?.as_bool().expect("bool");
                if !l {
                    return Ok(Value::Bool(false));
                }
                return self.eval(frame, b);
            }
            BinOp::Or => {
                let l = self.eval(frame, a)?.as_bool().expect("bool");
                if l {
                    return Ok(Value::Bool(true));
                }
                return self.eval(frame, b);
            }
            _ => {}
        }
        let l = self.eval(frame, a)?;
        let r = self.eval(frame, b)?;
        use BinOp::*;
        Ok(match (op, l, r) {
            (Add, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_add(y)),
            (Sub, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_sub(y)),
            (Mul, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_mul(y)),
            (Div, Value::Int(_), Value::Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
            (Div, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_div(y)),
            (Rem, Value::Int(_), Value::Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
            (Rem, Value::Int(x), Value::Int(y)) => Value::Int(x.wrapping_rem(y)),
            (Add, Value::Float(x), Value::Float(y)) => Value::Float(x + y),
            (Sub, Value::Float(x), Value::Float(y)) => Value::Float(x - y),
            (Mul, Value::Float(x), Value::Float(y)) => Value::Float(x * y),
            (Div, Value::Float(x), Value::Float(y)) => Value::Float(x / y),
            (Rem, Value::Float(x), Value::Float(y)) => Value::Float(x % y),
            (Lt, Value::Int(x), Value::Int(y)) => Value::Bool(x < y),
            (Le, Value::Int(x), Value::Int(y)) => Value::Bool(x <= y),
            (Gt, Value::Int(x), Value::Int(y)) => Value::Bool(x > y),
            (Ge, Value::Int(x), Value::Int(y)) => Value::Bool(x >= y),
            (Lt, Value::Float(x), Value::Float(y)) => Value::Bool(x < y),
            (Le, Value::Float(x), Value::Float(y)) => Value::Bool(x <= y),
            (Gt, Value::Float(x), Value::Float(y)) => Value::Bool(x > y),
            (Ge, Value::Float(x), Value::Float(y)) => Value::Bool(x >= y),
            (Eq, x, y) => Value::Bool(value_eq(x, y)),
            (Ne, x, y) => Value::Bool(!value_eq(x, y)),
            _ => unreachable!("ill-typed binary"),
        })
    }
}

fn value_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x == y,
        (Value::Null, Value::Null) => true,
        (Value::Ref(x), Value::Ref(y)) => x == y,
        _ => false,
    }
}

fn default_value(ty: NType) -> Value {
    match ty {
        NType::Prim(Prim::Int) => Value::Int(0),
        NType::Prim(Prim::Bool) => Value::Bool(false),
        NType::Prim(Prim::Float) => Value::Float(0.0),
        NType::Void => Value::Unit,
        _ => Value::Null,
    }
}
