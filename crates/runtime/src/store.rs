//! The object store: runtime values and region-resident objects.

use crate::region::RegionId;
use cj_frontend::types::{ClassId, Prim};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Unit (result of `void` expressions).
    Unit,
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Float.
    Float(f64),
    /// Null reference.
    Null,
    /// Reference to an object or array in the store.
    Ref(ObjId),
}

impl Value {
    /// Default value for a primitive slot.
    pub fn zero(p: Prim) -> Value {
        match p {
            Prim::Int => Value::Int(0),
            Prim::Bool => Value::Bool(false),
            Prim::Float => Value::Float(0.0),
        }
    }

    /// The integer inside, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => f.write_str("()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Null => f.write_str("null"),
            Value::Ref(o) => write!(f, "obj@{}", o.0),
        }
    }
}

/// Index of an object in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

/// The payload of a stored object.
#[derive(Debug, Clone)]
pub enum ObjData {
    /// Ordinary object: one slot per field (constructor order).
    Fields(Vec<Value>),
    /// Primitive array.
    Array(Prim, Vec<Value>),
}

/// A region-resident object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Runtime class (`None` for arrays).
    pub class: Option<ClassId>,
    /// Region the object lives in (its first region argument at `new`).
    pub region: RegionId,
    /// Full region arguments recorded at allocation (used by downcasts).
    pub regions: Vec<RegionId>,
    /// Field or element storage.
    pub data: ObjData,
}

/// Size model (documented for reproducibility): every object pays a
/// 16-byte header; each field or array element occupies 8 bytes.
pub fn object_bytes(field_count: usize) -> usize {
    16 + 8 * field_count
}

/// The store of all allocated objects.
#[derive(Debug, Clone, Default)]
pub struct Store {
    objects: Vec<Object>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Adds an object, returning its id.
    pub fn insert(&mut self, obj: Object) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(obj);
        id
    }

    /// Immutable access.
    pub fn get(&self, id: ObjId) -> &Object {
        &self.objects[id.0 as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: ObjId) -> &mut Object {
        &mut self.objects[id.0 as usize]
    }

    /// Number of objects ever allocated.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether no object has been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}
