//! # cj-runtime — region-based execution of annotated Core-Java
//!
//! The runtime substrate the paper's evaluation needs: a lexically scoped
//! [region allocator](region) (the role Titanium's allocator played in the
//! paper), an [interpreter](interp) for region-annotated programs, and
//! space accounting (peak-live vs total-allocated — Fig 8's
//! "Space Usage / Total Allocation").
//!
//! Every object access dynamically verifies that the target region is still
//! live, so the interpreter doubles as a validation oracle for Theorem 1:
//! a program accepted by `cj-check` must never raise
//! [`RuntimeError::DanglingAccess`].
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//! use cj_runtime::{run_main, RunConfig, Value};
//!
//! let (p, _) = infer_source(
//!     "class Box { Object item; }
//!      class M {
//!        static int main(int n) {
//!          int i = 0;
//!          while (i < n) { Box b = new Box(null); i = i + 1; }
//!          i
//!        }
//!      }",
//!     InferOptions::default(),
//! ).unwrap();
//! let out = run_main(&p, &[Value::Int(10)], RunConfig::default()).unwrap();
//! assert_eq!(out.value, Value::Int(10));
//! // The per-iteration Box is reclaimed each time round the loop.
//! assert!(out.space.space_ratio() < 0.2);
//! ```
#![forbid(unsafe_code)]

pub mod interp;
pub mod region;
pub mod store;

pub use interp::{
    run_main, run_main_big_stack, run_static, Engine, Outcome, RunConfig, RuntimeError,
};
pub use region::{RegionId, RegionManager, SpaceStats};
pub use store::{ObjId, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use cj_infer::{infer_source, InferOptions, SubtypeMode};

    fn run(src: &str, args: &[Value]) -> Outcome {
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        cj_check::check(&p).unwrap_or_else(|e| panic!("checker: {e}"));
        run_main(&p, args, RunConfig::default()).unwrap()
    }

    #[test]
    fn arithmetic_and_loops() {
        let out = run(
            "class M { static int main(int n) {
               int s = 0; int i = 1;
               while (i <= n) { s = s + i; i = i + 1; }
               s
             } }",
            &[Value::Int(100)],
        );
        assert_eq!(out.value, Value::Int(5050));
    }

    #[test]
    fn objects_fields_and_dispatch() {
        let out = run(
            "class A { int m() { 1 } }
             class B extends A { int m() { 2 } }
             class M {
               static int main() {
                 A a = new A();
                 A b = new B();
                 a.m() * 10 + b.m()
               }
             }",
            &[],
        );
        assert_eq!(out.value, Value::Int(12));
    }

    #[test]
    fn recursion_builds_lists() {
        let out = run(
            "class List { int value; List next; }
             class M {
               static List build(int n) {
                 if (n == 0) { (List) null } else { new List(n, build(n - 1)) }
               }
               static int sum(List l) {
                 if (l == null) { 0 } else { l.value + sum(l.next) }
               }
               static int main(int n) { sum(build(n)) }
             }",
            &[Value::Int(10)],
        );
        assert_eq!(out.value, Value::Int(55));
    }

    #[test]
    fn arrays_work() {
        let out = run(
            "class M { static int main(int n) {
               int[] a = new int[n];
               int i = 0;
               while (i < n) { a[i] = i * i; i = i + 1; }
               a[n - 1] + a.length
             } }",
            &[Value::Int(10)],
        );
        assert_eq!(out.value, Value::Int(91));
    }

    #[test]
    fn per_iteration_regions_are_reclaimed() {
        let out = run(
            "class Box { Object item; }
             class M {
               static int main(int n) {
                 int i = 0;
                 while (i < n) { Box b = new Box(null); i = i + 1; }
                 i
               }
             }",
            &[Value::Int(1000)],
        );
        assert_eq!(out.value, Value::Int(1000));
        assert!(
            out.space.space_ratio() < 0.01,
            "ratio {} should be tiny",
            out.space.space_ratio()
        );
        assert_eq!(out.space.regions_created, 1000);
    }

    #[test]
    fn escaping_structure_is_not_reclaimed() {
        let out = run(
            "class Cons { int head; Cons tail; }
             class M {
               static Cons build(int n) {
                 Cons acc = (Cons) null;
                 int i = 0;
                 while (i < n) { acc = new Cons(i, acc); i = i + 1; }
                 acc
               }
               static int main(int n) {
                 Cons l = build(n);
                 l.head
               }
             }",
            &[Value::Int(100)],
        );
        assert_eq!(out.value, Value::Int(99));
        assert!(out.space.space_ratio() > 0.9, "no reuse expected");
    }

    #[test]
    fn downcast_succeeds_and_fails_correctly() {
        let src = "
            class A { Object x; }
            class B extends A { Object y; }
            class M {
              static int main(bool make_b) {
                A a;
                if (make_b) { a = new B(null, null); } else { a = new A(null); }
                B b = (B) a;
                7
              }
            }";
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        let ok = run_main(&p, &[Value::Bool(true)], RunConfig::default()).unwrap();
        assert_eq!(ok.value, Value::Int(7));
        let err = run_main(&p, &[Value::Bool(false)], RunConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::CastFailed(_)));
    }

    #[test]
    fn null_pointer_detected() {
        let src = "
            class Cell { int v; }
            class M { static int main() { Cell c = (Cell) null; c.v } }";
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        let err = run_main(&p, &[], RunConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::NullPointer(_)));
    }

    #[test]
    fn step_limit_enforced() {
        let src = "class M { static int main() { while (true) { } 0 } }";
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        let err = run_main(
            &p,
            &[],
            RunConfig {
                step_limit: 1000,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimit));
    }

    #[test]
    fn depth_limit_enforced() {
        let src = "class M { static int f(int n) { f(n + 1) } static int main() { f(0) } }";
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        let err = run_main(
            &p,
            &[],
            RunConfig {
                max_depth: 100,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::DepthLimit));
    }

    #[test]
    fn engine_names_round_trip() {
        for name in Engine::NAMES {
            let engine: Engine = name.parse().unwrap();
            assert_eq!(engine.to_string(), name);
        }
        assert_eq!("interpreter".parse::<Engine>(), Ok(Engine::Interp));
        assert!("jit".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Vm);
    }

    #[test]
    fn division_by_zero_detected() {
        let src = "class M { static int main(int n) { 10 / n } }";
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        let err = run_main(&p, &[Value::Int(0)], RunConfig::default()).unwrap_err();
        assert!(matches!(err, RuntimeError::DivisionByZero(_)));
    }

    #[test]
    fn prints_captured() {
        let out = run(
            "class M { static void main() { print(1); print(true); print(2.5); } }",
            &[],
        );
        assert_eq!(out.prints, vec!["1", "true", "2.5"]);
    }

    #[test]
    fn no_dangling_across_modes_on_recursive_workload() {
        let src = "
            class RList { int value; RList next; }
            class M {
              static int depth(RList p, int d) {
                if (d == 0) { count(p) } else {
                  RList p2 = new RList(d, p);
                  depth(p2, d - 1)
                }
              }
              static int count(RList p) {
                if (p == null) { 0 } else { 1 + count(p.next) }
              }
              static int main(int d) { depth((RList) null, d) }
            }";
        for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            cj_check::check(&p).unwrap_or_else(|e| panic!("{mode}: {e}"));
            let out = run_main_big_stack(&p, &[Value::Int(50)], RunConfig::default())
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            assert_eq!(out.value, Value::Int(50));
        }
    }

    #[test]
    fn field_sub_reuses_reynolds3_style_lists() {
        // The Reynolds3 shape: the recursion branches, so only one path of
        // cells is live at a time (peak = depth) while the total spans the
        // whole tree. Under field subtyping each call frame reclaims its
        // cell; with no subtyping every cell unifies into one long-lived
        // region.
        let src = "
            class RList { int value; RList next; }
            class M {
              static int walk(RList p, int d) {
                if (d == 0) { 0 } else {
                  RList p2 = new RList(d, p);
                  walk(p2, d - 1) + walk(p2, d - 1)
                }
              }
              static int main(int d) { walk((RList) null, d) }
            }";
        let mut ratios = Vec::new();
        for mode in [SubtypeMode::None, SubtypeMode::Field] {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            let out = run_main_big_stack(&p, &[Value::Int(12)], RunConfig::default()).unwrap();
            ratios.push(out.space.space_ratio());
        }
        assert!(
            ratios[0] > 0.9,
            "no-sub must show no reuse, got {}",
            ratios[0]
        );
        assert!(
            ratios[1] < 0.05,
            "field-sub must reuse aggressively, got {}",
            ratios[1]
        );
    }
}
