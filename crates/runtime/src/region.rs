//! The lexically scoped region allocator.
//!
//! Regions form a stack over a distinguished heap region: `letreg` pushes a
//! region, leaving its scope pops it, and popping frees every object inside
//! at once — the model of the RTSJ and of the Titanium allocator the paper
//! measured against. The manager tracks *total* allocated bytes and *peak
//! live* bytes; their ratio is Fig 8's "Space Usage / Total Allocation"
//! column.

use std::fmt;

/// Identifies a runtime region. Id 0 is the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// The global heap region.
    pub const HEAP: RegionId = RegionId(0);

    /// Whether this is the heap.
    pub fn is_heap(self) -> bool {
        self == RegionId::HEAP
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_heap() {
            f.write_str("heap")
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

#[derive(Debug, Clone)]
struct RegionState {
    live: bool,
    bytes: usize,
}

/// Errors from the region allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionError {
    /// Allocation into a region that has already been deleted.
    DeadRegion(RegionId),
    /// Pop of a region that is not the top of the stack.
    NotTopOfStack(RegionId),
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::DeadRegion(r) => write!(f, "allocation into deleted region {r}"),
            RegionError::NotTopOfStack(r) => {
                write!(f, "region {r} popped out of stack order")
            }
        }
    }
}

impl std::error::Error for RegionError {}

/// Space accounting for one program run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Bytes allocated over the whole run.
    pub total_allocated: usize,
    /// Maximum simultaneously-live bytes.
    pub peak_live: usize,
    /// Number of regions ever created (excluding the heap).
    pub regions_created: usize,
    /// Number of objects allocated.
    pub objects_allocated: usize,
}

impl SpaceStats {
    /// Peak-live over total-allocated: 1.0 means no reuse at all; small
    /// values mean regions reclaimed memory aggressively (Fig 8).
    pub fn space_ratio(&self) -> f64 {
        if self.total_allocated == 0 {
            return 1.0;
        }
        self.peak_live as f64 / self.total_allocated as f64
    }
}

/// The stack-of-regions allocator.
///
/// # Examples
///
/// ```
/// use cj_runtime::region::RegionManager;
///
/// let mut mgr = RegionManager::new();
/// let r = mgr.push();
/// mgr.alloc(r, 64).unwrap();
/// mgr.pop(r).unwrap();
/// assert!(mgr.alloc(r, 8).is_err()); // deleted
/// assert_eq!(mgr.stats().peak_live, 64);
/// ```
#[derive(Debug, Clone)]
pub struct RegionManager {
    regions: Vec<RegionState>,
    stack: Vec<RegionId>,
    live_bytes: usize,
    stats: SpaceStats,
}

impl RegionManager {
    /// A fresh manager with only the heap region.
    pub fn new() -> RegionManager {
        RegionManager {
            regions: vec![RegionState {
                live: true,
                bytes: 0,
            }],
            stack: vec![RegionId::HEAP],
            live_bytes: 0,
            stats: SpaceStats::default(),
        }
    }

    /// Creates a region on top of the stack (`letreg` entry).
    pub fn push(&mut self) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionState {
            live: true,
            bytes: 0,
        });
        self.stack.push(id);
        self.stats.regions_created += 1;
        id
    }

    /// Deletes the top region (`letreg` exit), freeing its contents.
    ///
    /// # Errors
    ///
    /// The deleted region must be the top of the stack (lexical scoping
    /// guarantees this for checked programs).
    pub fn pop(&mut self, id: RegionId) -> Result<(), RegionError> {
        if self.stack.last() != Some(&id) {
            return Err(RegionError::NotTopOfStack(id));
        }
        self.stack.pop();
        let state = &mut self.regions[id.0 as usize];
        state.live = false;
        self.live_bytes -= state.bytes;
        Ok(())
    }

    /// Allocates `bytes` in `region`.
    ///
    /// # Errors
    ///
    /// Fails if the region has been deleted (a dangling allocation — never
    /// happens for well-region-typed programs).
    pub fn alloc(&mut self, region: RegionId, bytes: usize) -> Result<(), RegionError> {
        let state = &mut self.regions[region.0 as usize];
        if !state.live {
            return Err(RegionError::DeadRegion(region));
        }
        state.bytes += bytes;
        self.live_bytes += bytes;
        self.stats.total_allocated += bytes;
        self.stats.objects_allocated += 1;
        if self.live_bytes > self.stats.peak_live {
            self.stats.peak_live = self.live_bytes;
        }
        Ok(())
    }

    /// Whether `region` is still live.
    pub fn is_live(&self, region: RegionId) -> bool {
        self.regions[region.0 as usize].live
    }

    /// Current accounting.
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }

    /// Currently live bytes.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Depth of the region stack (including the heap).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

impl Default for RegionManager {
    fn default() -> Self {
        RegionManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_discipline() {
        let mut m = RegionManager::new();
        let a = m.push();
        let b = m.push();
        assert_eq!(m.pop(a), Err(RegionError::NotTopOfStack(a)));
        m.pop(b).unwrap();
        m.pop(a).unwrap();
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn peak_tracks_maximum_live() {
        let mut m = RegionManager::new();
        let a = m.push();
        m.alloc(a, 100).unwrap();
        m.pop(a).unwrap();
        let b = m.push();
        m.alloc(b, 60).unwrap();
        m.pop(b).unwrap();
        let s = m.stats();
        assert_eq!(s.total_allocated, 160);
        assert_eq!(s.peak_live, 100);
        assert!((s.space_ratio() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn heap_never_freed() {
        let mut m = RegionManager::new();
        m.alloc(RegionId::HEAP, 32).unwrap();
        assert!(m.is_live(RegionId::HEAP));
        assert_eq!(m.live_bytes(), 32);
    }

    #[test]
    fn dead_region_rejects_alloc() {
        let mut m = RegionManager::new();
        let a = m.push();
        m.pop(a).unwrap();
        assert_eq!(m.alloc(a, 1), Err(RegionError::DeadRegion(a)));
    }

    #[test]
    fn no_allocation_means_ratio_one() {
        let m = RegionManager::new();
        assert_eq!(m.stats().space_ratio(), 1.0);
    }

    #[test]
    fn nested_regions_interleave_accounting() {
        let mut m = RegionManager::new();
        m.alloc(RegionId::HEAP, 10).unwrap();
        let a = m.push();
        m.alloc(a, 20).unwrap();
        let b = m.push();
        m.alloc(b, 30).unwrap();
        assert_eq!(m.live_bytes(), 60);
        m.pop(b).unwrap();
        assert_eq!(m.live_bytes(), 30);
        m.pop(a).unwrap();
        assert_eq!(m.live_bytes(), 10);
        assert_eq!(m.stats().peak_live, 60);
        assert_eq!(m.stats().regions_created, 2);
    }
}
