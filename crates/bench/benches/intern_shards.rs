//! Micro-benchmark for the sharded interner: warm (read-path) lookups from
//! one thread and from many concurrent threads — the contention profile of
//! a multi-client compile daemon, where every connection lexes identifiers
//! through the process-global interner. With the lock sharded by string
//! hash, the N-thread case should scale instead of serializing on one
//! `RwLock`.

use cj_frontend::intern::{Symbol, INTERNER_SHARDS};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A deterministic identifier pool resembling real program symbols.
fn names() -> Vec<String> {
    (0..512)
        .map(|i| match i % 4 {
            0 => format!("Class{i}"),
            1 => format!("method{i}"),
            2 => format!("field{i}"),
            _ => format!("var{i}"),
        })
        .collect()
}

fn bench_warm_lookups(c: &mut Criterion) {
    let pool = names();
    // Warm the interner so the benchmark measures the read fast path.
    for n in &pool {
        Symbol::intern(n);
    }
    let mut group = c.benchmark_group("intern_shards");
    group.bench_function("warm-lookup/1-thread", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for n in &pool {
                acc ^= Symbol::intern(black_box(n)).as_str().len();
            }
            black_box(acc)
        })
    });
    for threads in [2usize, 8] {
        group.bench_function(format!("warm-lookup/{threads}-threads"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for t in 0..threads {
                        let pool = &pool;
                        handles.push(scope.spawn(move || {
                            let mut acc = 0usize;
                            for n in pool.iter().skip(t % 7) {
                                acc ^= Symbol::intern(black_box(n)).as_str().len();
                            }
                            acc
                        }));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("bench thread"))
                        .fold(0usize, |a, b| a ^ b)
                })
            })
        });
    }
    group.finish();
    eprintln!("interner shards: {INTERNER_SHARDS}");
}

criterion_group!(benches, bench_warm_lookups);
criterion_main!(benches);
