//! Ablation: inference cost of the three region-subtyping modes (Sec 3.2)
//! on a representative pair of programs — the design choice DESIGN.md
//! calls out. Field subtyping buys space reuse (Fig 8) for a modest
//! constraint-solving overhead, measured here.

use cj_bench::frontend;
use cj_benchmarks::by_name;
use cj_infer::{infer, InferOptions, SubtypeMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_modes");
    for name in ["Reynolds3", "Merge Sort"] {
        let b = by_name(name).expect("benchmark exists");
        let kp = frontend(&b);
        for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
            group.bench_function(format!("{name}/{mode}"), |bench| {
                bench.iter(|| {
                    let (p, _) =
                        infer(black_box(&kp), InferOptions::with_mode(mode)).expect("infers");
                    black_box(p.localized_region_count())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
