//! Ablation: inference cost of the three region-subtyping modes (Sec 3.2)
//! on a representative pair of programs — the design choice DESIGN.md
//! calls out. Field subtyping buys space reuse (Fig 8) for a modest
//! constraint-solving overhead, measured here.
//!
//! The second group measures what the `Session` driver buys: sweeping all
//! three modes through one session shares a single parsed + typechecked
//! kernel, versus the one-shot path that re-runs the front end per mode.

use cj_bench::{frontend, session_for};
use cj_benchmarks::by_name;
use cj_driver::{Session, SessionOptions};
use cj_infer::{infer, infer_source, InferOptions, SubtypeMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_modes");
    for name in ["Reynolds3", "Merge Sort"] {
        let b = by_name(name).expect("benchmark exists");
        let kp = frontend(&b);
        for mode in SubtypeMode::ALL {
            group.bench_function(format!("{name}/{mode}"), |bench| {
                bench.iter(|| {
                    let (p, _) =
                        infer(black_box(&kp), InferOptions::with_mode(mode)).expect("infers");
                    black_box(p.localized_region_count())
                })
            });
        }
    }
    group.finish();
}

fn bench_session_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_frontend_sharing");
    for name in ["Reynolds3", "Merge Sort"] {
        let b = by_name(name).expect("benchmark exists");
        group.bench_function(format!("{name}/one-shot-per-mode"), |bench| {
            bench.iter(|| {
                let mut total = 0usize;
                for mode in SubtypeMode::ALL {
                    let (p, _) = infer_source(black_box(b.source), InferOptions::with_mode(mode))
                        .expect("infers");
                    total += p.localized_region_count();
                }
                black_box(total)
            })
        });
        group.bench_function(format!("{name}/session-shared-kernel"), |bench| {
            bench.iter(|| {
                let mut session = session_for(&b);
                let mut total = 0usize;
                for mode in SubtypeMode::ALL {
                    let compilation = session
                        .infer_with(InferOptions::with_mode(mode))
                        .expect("infers");
                    total += compilation.program.localized_region_count();
                }
                assert_eq!(session.pass_counts().typecheck, 1);
                black_box(total)
            })
        });
    }
    group.finish();
}

// On multi-core machines the worker-thread path approaches
// `suite-time / cores`; on a single core `compile_many` degrades to the
// serial path, so the two rows coincide.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_compile_many");
    let inputs: Vec<cj_driver::SourceInput> = cj_benchmarks::regjava_benchmarks()
        .into_iter()
        .map(|b| cj_driver::SourceInput::new(b.name, b.source))
        .collect();
    group.sample_size(10);
    group.bench_function("regjava-suite/serial", |bench| {
        bench.iter(|| {
            let compiled: usize = inputs
                .iter()
                .filter(|input| {
                    Session::new(input.source.clone(), SessionOptions::default())
                        .check()
                        .is_ok()
                })
                .count();
            black_box(compiled)
        })
    });
    group.bench_function("regjava-suite/worker-threads", |bench| {
        bench.iter(|| {
            let results = cj_driver::compile_many(&inputs, &SessionOptions::default());
            black_box(results.iter().filter(|r| r.is_ok()).count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_modes, bench_session_reuse, bench_batch);
criterion_main!(benches);
