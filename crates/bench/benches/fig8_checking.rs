//! Criterion benchmark: region checking time on each Fig 8 program
//! (the "Compile-Time Checking" column).

use cj_bench::{frontend, timed_infer};
use cj_benchmarks::regjava_benchmarks;
use cj_infer::SubtypeMode;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_checking");
    for b in regjava_benchmarks() {
        let kp = frontend(&b);
        let (p, _, _) = timed_infer(&kp, SubtypeMode::Field);
        group.bench_function(b.name, |bench| {
            bench.iter(|| cj_check::check(black_box(&p)).expect("checks"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checking);
criterion_main!(benches);
