//! Criterion benchmark: region inference time on each Olden conversion
//! (Fig 9).

use cj_bench::frontend;
use cj_benchmarks::olden_benchmarks;
use cj_infer::{infer, InferOptions, SubtypeMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_olden(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_olden");
    group.sample_size(20);
    for b in olden_benchmarks() {
        let kp = frontend(&b);
        group.bench_function(b.name, |bench| {
            bench.iter(|| {
                let (p, _) = infer(black_box(&kp), InferOptions::with_mode(SubtypeMode::Field))
                    .expect("infers");
                black_box(p.localized_region_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_olden);
criterion_main!(benches);
