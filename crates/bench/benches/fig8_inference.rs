//! Criterion benchmark: region inference time on each Fig 8 program
//! (the "Compile-Time Inference" column).

use cj_bench::{frontend, timed_infer};
use cj_benchmarks::regjava_benchmarks;
use cj_infer::{infer, InferOptions, SubtypeMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_inference");
    for b in regjava_benchmarks() {
        let kp = frontend(&b);
        // Sanity: inference must succeed before we measure it.
        let _ = timed_infer(&kp, SubtypeMode::Field);
        group.bench_function(b.name, |bench| {
            bench.iter(|| {
                let (p, _) = infer(black_box(&kp), InferOptions::with_mode(SubtypeMode::Field))
                    .expect("infers");
                black_box(p.localized_region_count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
