//! Quick validation: every benchmark parses, typechecks, infers, checks, runs.
use cj_benchmarks::all_benchmarks;
use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, RunConfig, Value};

fn main() {
    for b in all_benchmarks() {
        print!("{:30}", b.name);
        let t0 = std::time::Instant::now();
        match infer_source(b.source, InferOptions::with_mode(SubtypeMode::Field)) {
            Ok((p, stats)) => {
                let infer_ms = t0.elapsed().as_secs_f64() * 1000.0;
                let t1 = std::time::Instant::now();
                let check = cj_check::check(&p);
                let check_ms = t1.elapsed().as_secs_f64() * 1000.0;
                let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
                match check {
                    Ok(()) => match run_main_big_stack(&p, &args, RunConfig::default()) {
                        Ok(out) => println!(
                            " infer {:7.2}ms check {:6.2}ms letregs {:2} ratio {:.3} result {}",
                            infer_ms,
                            check_ms,
                            stats.localized_regions,
                            out.space.space_ratio(),
                            out.value
                        ),
                        Err(e) => println!(" RUNTIME ERROR: {e}"),
                    },
                    Err(e) => println!(" CHECK FAILED: {}", e.items[0]),
                }
            }
            Err(e) => println!(" INFER FAILED: {e}"),
        }
    }
}
