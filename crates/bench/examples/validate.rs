//! Quick validation: every benchmark parses, typechecks, infers, checks,
//! runs — through one `Session` each, with structured diagnostics on any
//! failure.
use cj_benchmarks::all_benchmarks;
use cj_driver::SessionOptions;
use cj_infer::{InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, RunConfig, Value};

fn main() {
    let opts = SessionOptions::with_infer(InferOptions::with_mode(SubtypeMode::Field));
    for b in all_benchmarks() {
        print!("{:30}", b.name);
        let mut session = cj_bench::session_for(&b);
        let t0 = std::time::Instant::now();
        let compilation = match session.infer_with(opts.infer) {
            Ok(c) => c,
            Err(diags) => {
                println!(" INFER FAILED:\n{}", session.emitter().render_all(&diags));
                continue;
            }
        };
        let infer_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = std::time::Instant::now();
        if let Err(diags) = session.check_with(opts.infer) {
            println!(" CHECK FAILED:\n{}", session.emitter().render_all(&diags));
            continue;
        }
        let check_ms = t1.elapsed().as_secs_f64() * 1000.0;
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        match run_main_big_stack(&compilation.program, &args, RunConfig::default()) {
            Ok(out) => println!(
                " infer {:7.2}ms check {:6.2}ms letregs {:2} ratio {:.3} result {}",
                infer_ms,
                check_ms,
                compilation.stats.localized_regions,
                out.space.space_ratio(),
                out.value
            ),
            Err(e) => println!(" RUNTIME ERROR: {e}"),
        }
    }
}
