//! # cj-bench — the harness that regenerates the paper's tables
//!
//! - `cargo run -p cj-bench --release --bin fig8_table` reproduces **Fig 8**
//!   (comparative statistics on inference, checking and region subtyping);
//! - `cargo run -p cj-bench --release --bin fig9_table` reproduces **Fig 9**
//!   (Olden inference times);
//! - `cargo bench -p cj-bench` runs the Criterion benchmarks
//!   (`fig8_inference`, `fig8_checking`, `fig9_olden`, `ablation_modes`).
//!
//! Absolute numbers differ from the paper (different decade, language and
//! machine); the *shape* — which programs reuse space, under which
//! subtyping mode, and how inference time scales — is the reproduction
//! target (see EXPERIMENTS.md).
#![forbid(unsafe_code)]

use cj_benchmarks::Benchmark;
use cj_driver::{Session, SessionOptions};
use cj_frontend::KProgram;
use cj_infer::{infer, InferOptions, RProgram, SubtypeMode};
use cj_runtime::{run_main_big_stack, RunConfig, Value};
use std::time::{Duration, Instant};

/// Result of measuring one benchmark under one subtyping mode.
#[derive(Debug, Clone)]
pub struct ModeMeasurement {
    /// Subtyping mode used.
    pub mode: SubtypeMode,
    /// Wall-clock inference time (parse + normal typecheck excluded).
    pub infer_time: Duration,
    /// Wall-clock region-checking time.
    pub check_time: Duration,
    /// `letreg`-localized region count.
    pub localized: usize,
    /// Peak-live / total-allocated after running the paper input.
    pub space_ratio: Option<f64>,
}

/// One full Fig 8 row.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Lines in *our* Core-Java source.
    pub source_lines: usize,
    /// Annotated declaration sites (class headers, class-typed fields,
    /// method signatures) — our analogue of Fig 8's "Ann." column.
    pub ann_lines: usize,
    /// Input display string.
    pub input: &'static str,
    /// Per-mode measurements (no-sub, object-sub, field-sub).
    pub modes: Vec<ModeMeasurement>,
    /// Localized-region difference vs the hand annotation (paper-encoded;
    /// see DESIGN.md substitution 2).
    pub diff_vs_hand: i64,
}

/// A [`Session`] over a benchmark's source, named after it.
pub fn session_for(b: &Benchmark) -> Session {
    Session::new(b.source, SessionOptions::default()).with_name(b.name)
}

/// Parses and normal-typechecks a benchmark.
///
/// # Panics
///
/// Panics if the benchmark source does not typecheck (a bug in the suite).
pub fn frontend(b: &Benchmark) -> KProgram {
    let mut session = session_for(b);
    match session.typecheck() {
        Ok(kp) => KProgram::clone(&kp),
        Err(diags) => panic!("{}:\n{}", b.name, session.emitter().render_all(&diags)),
    }
}

/// Runs inference under `mode`, returning the program and elapsed time.
///
/// # Panics
///
/// Panics on inference failure.
pub fn timed_infer(kp: &KProgram, mode: SubtypeMode) -> (RProgram, Duration, usize) {
    let t0 = Instant::now();
    let (p, stats) = infer(kp, InferOptions::with_mode(mode)).expect("inference succeeds");
    (p, t0.elapsed(), stats.localized_regions)
}

/// Runs the region checker, returning elapsed time.
///
/// # Panics
///
/// Panics if checking fails (Theorem 1 violation — a bug).
pub fn timed_check(p: &RProgram) -> Duration {
    let t0 = Instant::now();
    cj_check::check(p).expect("inferred program must check");
    t0.elapsed()
}

/// Executes the benchmark on its paper input, returning the space ratio.
pub fn space_ratio(p: &RProgram, input: &[i64]) -> Option<f64> {
    let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
    run_main_big_stack(p, &args, RunConfig::default())
        .ok()
        .map(|out| out.space.space_ratio())
}

/// Counts the declaration sites that receive region annotations in the
/// target language: class headers, class- or array-typed fields, and
/// method signatures.
pub fn annotation_sites(kp: &KProgram) -> usize {
    let table = &kp.table;
    let mut n = 0;
    for info in table.classes() {
        if info.id == cj_frontend::ClassId::OBJECT {
            continue;
        }
        n += 1; // class header
        n += info
            .own_fields
            .iter()
            .filter(|f| f.ty.is_reference())
            .count();
        n += info.own_methods.len();
    }
    n += table.statics().len();
    n
}

/// Measures one benchmark under all three subtyping modes.
///
/// One [`Session`] serves all three: the benchmark is parsed and
/// typechecked once, and each mode's inference artifact is derived from
/// the shared kernel (exactly the reuse the ablation bench measures).
pub fn fig8_row(b: &Benchmark, run_programs: bool) -> Fig8Row {
    let mut session = session_for(b);
    let kp = session
        .typecheck()
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let modes = SubtypeMode::ALL
        .into_iter()
        .map(|mode| {
            let opts = InferOptions::with_mode(mode);
            let t0 = Instant::now();
            let compilation = session
                .infer_with(opts)
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            let infer_time = t0.elapsed();
            let t1 = Instant::now();
            session
                .check_with(opts)
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            let check_time = t1.elapsed();
            let space_ratio = if run_programs {
                space_ratio(&compilation.program, b.paper_input)
            } else {
                None
            };
            ModeMeasurement {
                mode,
                infer_time,
                check_time,
                localized: compilation.stats.localized_regions,
                space_ratio,
            }
        })
        .collect();
    assert_eq!(
        session.pass_counts().typecheck,
        1,
        "the three modes must share one typechecked kernel"
    );
    Fig8Row {
        name: b.name,
        source_lines: cj_benchmarks::source_lines(b),
        ann_lines: annotation_sites(&kp),
        input: b.input_display,
        modes,
        diff_vs_hand: b.localized_diff_vs_hand,
    }
}

/// One Fig 9 row: our source size and inference time.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Our conversion's line count.
    pub source_lines: usize,
    /// The paper conversion's line count (Fig 9 "Source (lines)").
    pub paper_source_lines: u32,
    /// Annotated declaration sites.
    pub ann_lines: usize,
    /// Inference wall-clock time (field subtyping).
    pub infer_time: Duration,
}

/// Measures one Olden benchmark.
pub fn fig9_row(b: &Benchmark) -> Fig9Row {
    let mut session = session_for(b);
    let kp = session
        .typecheck()
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let t0 = Instant::now();
    session
        .infer_with(InferOptions::with_mode(SubtypeMode::Field))
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let infer_time = t0.elapsed();
    Fig9Row {
        name: b.name,
        source_lines: cj_benchmarks::source_lines(b),
        paper_source_lines: b.paper_source_lines,
        ann_lines: annotation_sites(&kp),
        infer_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_row_measures_without_running() {
        let b = cj_benchmarks::by_name("Ackermann").unwrap();
        let row = fig8_row(&b, false);
        assert_eq!(row.modes.len(), 3);
        assert!(row.modes.iter().all(|m| m.space_ratio.is_none()));
        assert!(row.source_lines > 10);
        assert!(row.ann_lines >= 3);
    }

    #[test]
    fn fig9_row_measures_inference() {
        let b = cj_benchmarks::by_name("treeadd").unwrap();
        let row = fig9_row(&b);
        assert!(row.infer_time.as_nanos() > 0);
        assert_eq!(row.paper_source_lines, 195);
    }
}
