//! Regenerates Fig 8: "Comparative Statistics on Inference/Checking and
//! Region Subtyping".
//!
//! Usage: `cargo run -p cj-bench --release --bin fig8_table`

use cj_bench::fig8_row;
use cj_benchmarks::regjava_benchmarks;

fn main() {
    println!(
        "Fig 8 — Comparative statistics on inference/checking and region subtyping\n\
         (space usage = peak-live / total-allocated when running the paper input)\n"
    );
    println!(
        "{:<26} {:>5} {:>4}  {:>10} {:>10}  {:>7}  {:>8} {:>8} {:>8}  {:>5}",
        "Program",
        "Lines",
        "Ann",
        "Infer(ms)",
        "Check(ms)",
        "Input",
        "NoSub",
        "ObjSub",
        "FieldSub",
        "Diff"
    );
    println!("{}", "-".repeat(108));
    for b in regjava_benchmarks() {
        let row = fig8_row(&b, true);
        let ratio = |i: usize| match row.modes[i].space_ratio {
            Some(r) => format!("{r:.3}"),
            None => "-".to_string(),
        };
        println!(
            "{:<26} {:>5} {:>4}  {:>10.2} {:>10.2}  {:>7}  {:>8} {:>8} {:>8}  {:>5}",
            row.name,
            row.source_lines,
            row.ann_lines,
            row.modes[2].infer_time.as_secs_f64() * 1000.0,
            row.modes[2].check_time.as_secs_f64() * 1000.0,
            row.input,
            ratio(0),
            ratio(1),
            ratio(2),
            row.diff_vs_hand,
        );
    }
    println!(
        "\nDiff column: localized-region difference vs RegJava's hand annotation\n\
         (paper-derived; -1 for optimized life (dangling) reflects the\n\
         no-dangling vs no-dangling-access policy gap, Sec 6)."
    );
}
