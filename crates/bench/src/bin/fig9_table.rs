//! Regenerates Fig 9: "Region Inference Times for the Olden Benchmark
//! Programs".
//!
//! Usage: `cargo run -p cj-bench --release --bin fig9_table`

use cj_bench::fig9_row;
use cj_benchmarks::olden_benchmarks;

fn main() {
    println!("Fig 9 — Region inference times for the Olden benchmark programs\n");
    println!(
        "{:<12} {:>12} {:>12} {:>6} {:>14}",
        "Program", "Lines (ours)", "Lines (paper)", "Ann", "Inference (ms)"
    );
    println!("{}", "-".repeat(62));
    for b in olden_benchmarks() {
        let row = fig9_row(&b);
        println!(
            "{:<12} {:>12} {:>13} {:>6} {:>14.2}",
            row.name,
            row.source_lines,
            row.paper_source_lines,
            row.ann_lines,
            row.infer_time.as_secs_f64() * 1000.0
        );
    }
    println!(
        "\nShape target (paper): all times well under interactive thresholds,\n\
         with health and voronoi among the slowest."
    );
}
