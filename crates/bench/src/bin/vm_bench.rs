//! `vm_bench` — the engine benchmark harness behind `BENCH_vm.json`.
//!
//! Runs every benchmark program (the Fig 8 RegJava suite and the Fig 9
//! Olden suite) on **all three** execution tiers — the tree-walking
//! interpreter, the `cj-vm` stack bytecode VM and the `cj-rvm`
//! direct-threaded register machine — asserting their outcomes are
//! identical (value, prints, space statistics), and records wall time,
//! steps/dispatches retired, peak live bytes and the space ratio per
//! engine, plus per-suite geometric-mean speedups for each tier pair.
//!
//! ```text
//! cargo run -p cj-bench --release --bin vm_bench -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` uses the small test inputs (smoke runs); the default — used
//! by CI too — runs the paper inputs. Output goes to `BENCH_vm.json` (or
//! `--out PATH`) and a table is printed to stdout. The harness exits
//! non-zero when any program's outcome diverges between engines, or when
//! a tier fails its perf acceptance gate on Olden wall time: the VM must
//! beat the interpreter AND the register machine must beat the VM.

use cj_benchmarks::{all_benchmarks, Benchmark, Suite};
use cj_infer::{InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, Outcome, RunConfig, Value};
use std::time::Instant;

struct EngineRow {
    wall_ms: f64,
    steps: u64,
    peak_live: usize,
    total_allocated: usize,
    space_ratio: f64,
}

struct BenchRow {
    name: &'static str,
    suite: Suite,
    input: &'static str,
    instructions: usize,
    register_instructions: usize,
    fused: u64,
    interp: EngineRow,
    vm: EngineRow,
    rvm: EngineRow,
}

fn engine_row(out: &Outcome, wall_ms: f64) -> EngineRow {
    EngineRow {
        wall_ms,
        steps: out.steps,
        peak_live: out.space.peak_live,
        total_allocated: out.space.total_allocated,
        space_ratio: out.space.space_ratio(),
    }
}

fn observable(out: &Outcome) -> (String, Vec<String>, cj_runtime::SpaceStats) {
    (out.value.to_string(), out.prints.clone(), out.space)
}

/// Times `f` over `n` runs and keeps the best (minimum) wall time — the
/// standard way to strip scheduler/cache noise from short deterministic
/// programs — along with one outcome (all runs are identical).
fn best_of(n: u32, mut f: impl FnMut() -> Outcome) -> (Outcome, f64) {
    let mut best_ms = f64::INFINITY;
    let mut out = None;
    for _ in 0..n {
        let t = Instant::now();
        let o = f();
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    (out.expect("n >= 1"), best_ms)
}

fn measure(b: &Benchmark, quick: bool) -> BenchRow {
    let opts = InferOptions::with_mode(SubtypeMode::Field);
    let mut session = cj_bench::session_for(b);
    let compilation = session
        .check_with(opts)
        .unwrap_or_else(|e| panic!("{}: {}", b.name, session.emitter().render_all(&e)));
    let compiled = session
        .compiled_with(opts)
        .unwrap_or_else(|e| panic!("{}: {}", b.name, session.emitter().render_all(&e)));
    let register = session
        .rvm_compiled_with(opts)
        .unwrap_or_else(|e| panic!("{}: {}", b.name, session.emitter().render_all(&e)));
    let input = if quick { b.test_input } else { b.paper_input };
    let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
    let cfg = RunConfig::default();

    // The bytecode tiers are fast enough that scheduler noise swamps a
    // single run on the smaller programs; best-of-3 makes the speedup
    // columns reproducible. The interpreter baseline runs long enough
    // that two runs suffice.
    let (vm, vm_ms) = best_of(3, || {
        cj_vm::run_main(&compiled, &args, cfg).unwrap_or_else(|e| panic!("{} [vm]: {e}", b.name))
    });
    let (rvm, rvm_ms) = best_of(3, || {
        cj_rvm::run_main(&register, &args, cfg).unwrap_or_else(|e| panic!("{} [rvm]: {e}", b.name))
    });
    let (interp, interp_ms) = best_of(2, || {
        run_main_big_stack(&compilation.program, &args, cfg)
            .unwrap_or_else(|e| panic!("{} [interp]: {e}", b.name))
    });

    assert_eq!(
        observable(&vm),
        observable(&interp),
        "{}: vm/interp diverged",
        b.name
    );
    assert_eq!(
        observable(&rvm),
        observable(&vm),
        "{}: rvm/vm diverged",
        b.name
    );

    BenchRow {
        name: b.name,
        suite: b.suite,
        input: if quick { "test" } else { b.input_display },
        instructions: compiled.instruction_count(),
        register_instructions: register.instruction_count(),
        fused: register.fused_count(),
        interp: engine_row(&interp, interp_ms),
        vm: engine_row(&vm, vm_ms),
        rvm: engine_row(&rvm, rvm_ms),
    }
}

/// Measures the `RegionHeap` recycled-chunk pool directly: the letreg
/// churn pattern (push, allocate, pop, repeat) that dominates the
/// RegJava loops. Reports how many pushes were served from the pool and
/// the wall time of the churn loop.
fn measure_heap_pool(quick: bool) -> (u64, u64, f64) {
    use cj_vm::heap::RegionHeap;
    let rounds: u64 = if quick { 20_000 } else { 200_000 };
    let mut heap = RegionHeap::new();
    let t0 = Instant::now();
    for i in 0..rounds {
        let r = heap.push();
        // A handful of small objects per region, like a loop-body letreg.
        for f in 0..4u64 {
            heap.alloc_object(r, 1, &[r], &[i, f]).expect("live region");
        }
        heap.pop(r).expect("top of stack");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (rounds, heap.chunks_reused(), wall_ms)
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

fn engine_json(e: &EngineRow) -> String {
    format!(
        "{{\"wall_ms\":{:.4},\"steps\":{},\"peak_live\":{},\"total_allocated\":{},\
         \"space_ratio\":{:.6}}}",
        e.wall_ms, e.steps, e.peak_live, e.total_allocated, e.space_ratio
    )
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_vm.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("vm_bench: unknown argument `{other}`");
                eprintln!("usage: vm_bench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let rows: Vec<BenchRow> = all_benchmarks()
        .iter()
        .map(|b| {
            let row = measure(b, quick);
            println!(
                "{:28} {:8} interp {:9.3}ms  vm {:9.3}ms  rvm {:9.3}ms  \
                 vm/interp {:5.2}x  rvm/vm {:5.2}x  ratio {:.4}",
                row.name,
                match row.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                row.interp.wall_ms,
                row.vm.wall_ms,
                row.rvm.wall_ms,
                row.interp.wall_ms / row.vm.wall_ms,
                row.vm.wall_ms / row.rvm.wall_ms,
                row.rvm.space_ratio
            );
            row
        })
        .collect();

    let suite_geomean = |suite: Suite, speedup: fn(&BenchRow) -> f64| {
        geomean(rows.iter().filter(|r| r.suite == suite).map(speedup))
    };
    let vm_vs_interp = |r: &BenchRow| r.interp.wall_ms / r.vm.wall_ms;
    let rvm_vs_vm = |r: &BenchRow| r.vm.wall_ms / r.rvm.wall_ms;
    let rvm_vs_interp = |r: &BenchRow| r.interp.wall_ms / r.rvm.wall_ms;
    let olden_vm = suite_geomean(Suite::Olden, vm_vs_interp);
    let regjava_vm = suite_geomean(Suite::RegJava, vm_vs_interp);
    let overall_vm = geomean(rows.iter().map(vm_vs_interp));
    let olden_rvm = suite_geomean(Suite::Olden, rvm_vs_vm);
    let regjava_rvm = suite_geomean(Suite::RegJava, rvm_vs_vm);
    let overall_rvm = geomean(rows.iter().map(rvm_vs_vm));
    let olden_rvm_interp = suite_geomean(Suite::Olden, rvm_vs_interp);
    let overall_rvm_interp = geomean(rows.iter().map(rvm_vs_interp));
    println!(
        "geomean vm-vs-interp: olden {olden_vm:.2}x  regjava {regjava_vm:.2}x  \
         overall {overall_vm:.2}x"
    );
    println!(
        "geomean rvm-vs-vm:    olden {olden_rvm:.2}x  regjava {regjava_rvm:.2}x  \
         overall {overall_rvm:.2}x"
    );
    println!(
        "geomean rvm-vs-interp: olden {olden_rvm_interp:.2}x  overall {overall_rvm_interp:.2}x"
    );

    let (pool_rounds, pool_reused, pool_ms) = measure_heap_pool(quick);
    println!(
        "heap pool: {pool_reused}/{pool_rounds} region pushes served from \
         recycled chunks ({pool_ms:.3}ms churn loop)"
    );

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"suite\":\"{}\",\"input\":\"{}\",\
                 \"compiled_instructions\":{},\"register_instructions\":{},\
                 \"fused_superinstructions\":{},\
                 \"interp\":{},\"vm\":{},\"rvm\":{},\
                 \"vm_vs_interp\":{:.4},\"rvm_vs_vm\":{:.4},\"rvm_vs_interp\":{:.4}}}",
                r.name,
                match r.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                r.input,
                r.instructions,
                r.register_instructions,
                r.fused,
                engine_json(&r.interp),
                engine_json(&r.vm),
                engine_json(&r.rvm),
                vm_vs_interp(r),
                rvm_vs_vm(r),
                rvm_vs_interp(r)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\":\"bench-vm/v2\",\n  \"input_scale\":\"{}\",\n  \
         \"benchmarks\":[\n{}\n  ],\n  \"summary\":{{\
         \"olden_geomean_speedup\":{olden_vm:.4},\
         \"regjava_geomean_speedup\":{regjava_vm:.4},\
         \"overall_geomean_speedup\":{overall_vm:.4},\
         \"olden_rvm_vs_vm_geomean\":{olden_rvm:.4},\
         \"regjava_rvm_vs_vm_geomean\":{regjava_rvm:.4},\
         \"overall_rvm_vs_vm_geomean\":{overall_rvm:.4},\
         \"olden_rvm_vs_interp_geomean\":{olden_rvm_interp:.4},\
         \"overall_rvm_vs_interp_geomean\":{overall_rvm_interp:.4},\
         \"vm_faster_on_olden\":{},\"rvm_faster_on_olden\":{},\
         \"heap_pool\":{{\"churn_rounds\":{},\"chunks_reused\":{},\"wall_ms\":{:.4}}}}}\n}}\n",
        if quick { "test" } else { "paper" },
        body.join(",\n"),
        olden_vm > 1.0,
        olden_rvm > 1.0,
        pool_rounds,
        pool_reused,
        pool_ms
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");

    let mut failed = false;
    if olden_vm <= 1.0 {
        eprintln!(
            "vm_bench: FAIL — VM is not faster than the interpreter on olden \
             (geomean {olden_vm:.2}x)"
        );
        failed = true;
    }
    if olden_rvm <= 1.0 {
        eprintln!(
            "vm_bench: FAIL — register machine is not faster than the VM on olden \
             (geomean {olden_rvm:.2}x)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
