//! `vm_bench` — the engine benchmark harness behind `BENCH_vm.json`.
//!
//! Runs every benchmark program (the Fig 8 RegJava suite and the Fig 9
//! Olden suite) on **both** execution engines — the `cj-vm` bytecode VM
//! and the tree-walking interpreter — asserting their outcomes are
//! identical (value, prints, space statistics), and records wall time,
//! steps/instructions retired, peak live bytes and the space ratio per
//! engine, plus per-suite geometric-mean speedups.
//!
//! ```text
//! cargo run -p cj-bench --release --bin vm_bench -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` uses the small test inputs (smoke runs); the default — used
//! by CI too — runs the paper
//! inputs. Output goes to `BENCH_vm.json` (or `--out PATH`) and a table
//! is printed to stdout. The harness exits non-zero when any program's
//! outcome diverges between engines, or when the VM fails to beat the
//! interpreter on Olden wall time — the perf acceptance gate.

use cj_benchmarks::{all_benchmarks, Benchmark, Suite};
use cj_infer::{InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, Outcome, RunConfig, Value};
use std::time::Instant;

struct EngineRow {
    wall_ms: f64,
    steps: u64,
    peak_live: usize,
    total_allocated: usize,
    space_ratio: f64,
}

struct BenchRow {
    name: &'static str,
    suite: Suite,
    input: &'static str,
    instructions: usize,
    interp: EngineRow,
    vm: EngineRow,
}

fn engine_row(out: &Outcome, wall_ms: f64) -> EngineRow {
    EngineRow {
        wall_ms,
        steps: out.steps,
        peak_live: out.space.peak_live,
        total_allocated: out.space.total_allocated,
        space_ratio: out.space.space_ratio(),
    }
}

fn observable(out: &Outcome) -> (String, Vec<String>, cj_runtime::SpaceStats) {
    (out.value.to_string(), out.prints.clone(), out.space)
}

fn measure(b: &Benchmark, quick: bool) -> BenchRow {
    let opts = InferOptions::with_mode(SubtypeMode::Field);
    let mut session = cj_bench::session_for(b);
    let compilation = session
        .check_with(opts)
        .unwrap_or_else(|e| panic!("{}: {}", b.name, session.emitter().render_all(&e)));
    let compiled = session
        .compiled_with(opts)
        .unwrap_or_else(|e| panic!("{}: {}", b.name, session.emitter().render_all(&e)));
    let input = if quick { b.test_input } else { b.paper_input };
    let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
    let cfg = RunConfig::default();

    let t0 = Instant::now();
    let vm =
        cj_vm::run_main(&compiled, &args, cfg).unwrap_or_else(|e| panic!("{} [vm]: {e}", b.name));
    let vm_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let interp = run_main_big_stack(&compilation.program, &args, cfg)
        .unwrap_or_else(|e| panic!("{} [interp]: {e}", b.name));
    let interp_ms = t1.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        observable(&vm),
        observable(&interp),
        "{}: engines diverged",
        b.name
    );

    BenchRow {
        name: b.name,
        suite: b.suite,
        input: if quick { "test" } else { b.input_display },
        instructions: compiled.instruction_count(),
        interp: engine_row(&interp, interp_ms),
        vm: engine_row(&vm, vm_ms),
    }
}

/// Measures the `RegionHeap` recycled-chunk pool directly: the letreg
/// churn pattern (push, allocate, pop, repeat) that dominates the
/// RegJava loops. Reports how many pushes were served from the pool and
/// the wall time of the churn loop.
fn measure_heap_pool(quick: bool) -> (u64, u64, f64) {
    use cj_vm::heap::RegionHeap;
    let rounds: u64 = if quick { 20_000 } else { 200_000 };
    let mut heap = RegionHeap::new();
    let t0 = Instant::now();
    for i in 0..rounds {
        let r = heap.push();
        // A handful of small objects per region, like a loop-body letreg.
        for f in 0..4u64 {
            heap.alloc_object(r, 1, &[r], &[i, f]).expect("live region");
        }
        heap.pop(r).expect("top of stack");
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (rounds, heap.chunks_reused(), wall_ms)
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u32);
    for x in xs {
        sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (sum / n as f64).exp()
    }
}

fn engine_json(e: &EngineRow) -> String {
    format!(
        "{{\"wall_ms\":{:.4},\"steps\":{},\"peak_live\":{},\"total_allocated\":{},\
         \"space_ratio\":{:.6}}}",
        e.wall_ms, e.steps, e.peak_live, e.total_allocated, e.space_ratio
    )
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_vm.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("vm_bench: unknown argument `{other}`");
                eprintln!("usage: vm_bench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let rows: Vec<BenchRow> = all_benchmarks()
        .iter()
        .map(|b| {
            let row = measure(b, quick);
            println!(
                "{:28} {:8} interp {:9.3}ms  vm {:9.3}ms  speedup {:5.2}x  ratio {:.4}",
                row.name,
                match row.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                row.interp.wall_ms,
                row.vm.wall_ms,
                row.interp.wall_ms / row.vm.wall_ms,
                row.vm.space_ratio
            );
            row
        })
        .collect();

    let speedups = |suite: Suite| {
        geomean(
            rows.iter()
                .filter(|r| r.suite == suite)
                .map(|r| r.interp.wall_ms / r.vm.wall_ms),
        )
    };
    let olden = speedups(Suite::Olden);
    let regjava = speedups(Suite::RegJava);
    let overall = geomean(rows.iter().map(|r| r.interp.wall_ms / r.vm.wall_ms));
    println!("geomean speedup: olden {olden:.2}x  regjava {regjava:.2}x  overall {overall:.2}x");

    let (pool_rounds, pool_reused, pool_ms) = measure_heap_pool(quick);
    println!(
        "heap pool: {pool_reused}/{pool_rounds} region pushes served from \
         recycled chunks ({pool_ms:.3}ms churn loop)"
    );

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"suite\":\"{}\",\"input\":\"{}\",\
                 \"compiled_instructions\":{},\"interp\":{},\"vm\":{},\"speedup\":{:.4}}}",
                r.name,
                match r.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                r.input,
                r.instructions,
                engine_json(&r.interp),
                engine_json(&r.vm),
                r.interp.wall_ms / r.vm.wall_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\":\"bench-vm/v1\",\n  \"input_scale\":\"{}\",\n  \
         \"benchmarks\":[\n{}\n  ],\n  \"summary\":{{\"olden_geomean_speedup\":{:.4},\
         \"regjava_geomean_speedup\":{:.4},\"overall_geomean_speedup\":{:.4},\
         \"vm_faster_on_olden\":{},\
         \"heap_pool\":{{\"churn_rounds\":{},\"chunks_reused\":{},\"wall_ms\":{:.4}}}}}\n}}\n",
        if quick { "test" } else { "paper" },
        body.join(",\n"),
        olden,
        regjava,
        overall,
        olden > 1.0,
        pool_rounds,
        pool_reused,
        pool_ms
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");

    if olden <= 1.0 {
        eprintln!(
            "vm_bench: FAIL — VM is not faster than the interpreter on olden \
             (geomean {olden:.2}x)"
        );
        std::process::exit(1);
    }
}
