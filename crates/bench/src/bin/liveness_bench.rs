//! `liveness_bench` — the extent-inference benchmark harness behind
//! `BENCH_liveness.json`.
//!
//! Compiles every benchmark program (the Fig 8 RegJava suite and the Fig 9
//! Olden suite) under **both** extent modes — the paper's block-scoped
//! `letreg` placement and the flow-sensitive liveness tightening — and
//! runs each on **both** execution engines. For every benchmark it
//! asserts:
//!
//! - observables (value, prints) are identical across the four
//!   mode × engine combinations;
//! - allocation totals are identical across modes (tightening moves pops
//!   earlier; it never changes what is allocated);
//! - `peak_live` under liveness placement is never worse than under paper
//!   placement, on either engine — the space-safety acceptance gate.
//!
//! ```text
//! cargo run -p cj-bench --release --bin liveness_bench -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` uses the small test inputs (smoke runs); the default — used
//! by CI too — runs the paper inputs. Output goes to
//! `BENCH_liveness.json` (or `--out PATH`) and a table is printed to
//! stdout. The harness exits non-zero when any gate fails.

use cj_benchmarks::{all_benchmarks, Benchmark, Suite};
use cj_infer::{ExtentMode, InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, Outcome, RunConfig, Value};

struct ModeRow {
    peak_interp: usize,
    peak_vm: usize,
    total_allocated: usize,
    space_ratio: f64,
    extent_rewrites: u32,
}

struct BenchRow {
    name: &'static str,
    suite: Suite,
    input: &'static str,
    paper: ModeRow,
    liveness: ModeRow,
}

fn observable(out: &Outcome) -> (String, Vec<String>) {
    (out.value.to_string(), out.prints.clone())
}

fn measure_mode(
    b: &Benchmark,
    extent: ExtentMode,
    quick: bool,
) -> (ModeRow, (String, Vec<String>)) {
    let opts = InferOptions {
        extent,
        ..InferOptions::with_mode(SubtypeMode::Field)
    };
    let mut session = cj_bench::session_for(b);
    let compilation = session.check_with(opts).unwrap_or_else(|e| {
        panic!(
            "{} [{extent}]: {}",
            b.name,
            session.emitter().render_all(&e)
        )
    });
    let compiled = session.compiled_with(opts).unwrap_or_else(|e| {
        panic!(
            "{} [{extent}]: {}",
            b.name,
            session.emitter().render_all(&e)
        )
    });
    let extent_rewrites = session.pass_counts().extent_rewrites;
    let input = if quick { b.test_input } else { b.paper_input };
    let args: Vec<Value> = input.iter().map(|&v| Value::Int(v)).collect();
    let cfg = RunConfig::default();

    let vm = cj_vm::run_main(&compiled, &args, cfg)
        .unwrap_or_else(|e| panic!("{} [{extent} vm]: {e}", b.name));
    let interp = run_main_big_stack(&compilation.program, &args, cfg)
        .unwrap_or_else(|e| panic!("{} [{extent} interp]: {e}", b.name));

    assert_eq!(
        observable(&vm),
        observable(&interp),
        "{} [{extent}]: engines diverged",
        b.name
    );
    assert_eq!(
        vm.space.total_allocated, interp.space.total_allocated,
        "{} [{extent}]: engines disagree on allocation totals",
        b.name
    );

    let row = ModeRow {
        peak_interp: interp.space.peak_live,
        peak_vm: vm.space.peak_live,
        total_allocated: interp.space.total_allocated,
        space_ratio: interp.space.space_ratio(),
        extent_rewrites,
    };
    (row, observable(&interp))
}

fn measure(b: &Benchmark, quick: bool) -> BenchRow {
    let (paper, obs_paper) = measure_mode(b, ExtentMode::Paper, quick);
    let (liveness, obs_live) = measure_mode(b, ExtentMode::Liveness, quick);
    assert_eq!(
        obs_paper, obs_live,
        "{}: extent modes changed the program's observables",
        b.name
    );
    assert_eq!(
        paper.total_allocated, liveness.total_allocated,
        "{}: extent tightening changed what was allocated",
        b.name
    );
    assert!(
        liveness.peak_interp <= paper.peak_interp,
        "{}: liveness placement raised the interpreter peak ({} > {})",
        b.name,
        liveness.peak_interp,
        paper.peak_interp
    );
    assert!(
        liveness.peak_vm <= paper.peak_vm,
        "{}: liveness placement raised the VM peak ({} > {})",
        b.name,
        liveness.peak_vm,
        paper.peak_vm
    );
    BenchRow {
        name: b.name,
        suite: b.suite,
        input: if quick { "test" } else { b.input_display },
        paper,
        liveness,
    }
}

fn mode_json(m: &ModeRow) -> String {
    format!(
        "{{\"peak_live_interp\":{},\"peak_live_vm\":{},\"total_allocated\":{},\
         \"space_ratio\":{:.6},\"extent_rewrites\":{}}}",
        m.peak_interp, m.peak_vm, m.total_allocated, m.space_ratio, m.extent_rewrites
    )
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_liveness.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            other => {
                eprintln!("liveness_bench: unknown argument `{other}`");
                eprintln!("usage: liveness_bench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let rows: Vec<BenchRow> = all_benchmarks()
        .iter()
        .map(|b| {
            let row = measure(b, quick);
            let saved = row
                .paper
                .peak_interp
                .saturating_sub(row.liveness.peak_interp);
            println!(
                "{:28} {:8} peak paper {:>10}  liveness {:>10}  saved {:>9}  \
                 rewrites {:>3}  ratio {:.4} -> {:.4}",
                row.name,
                match row.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                row.paper.peak_interp,
                row.liveness.peak_interp,
                saved,
                row.liveness.extent_rewrites,
                row.paper.space_ratio,
                row.liveness.space_ratio
            );
            row
        })
        .collect();

    let improved = rows
        .iter()
        .filter(|r| r.liveness.peak_interp < r.paper.peak_interp)
        .count();
    let rewrites: u32 = rows.iter().map(|r| r.liveness.extent_rewrites).sum();
    println!(
        "{} / {} benchmarks with a strictly lower peak; {} letregs rewritten",
        improved,
        rows.len(),
        rewrites
    );

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\":\"{}\",\"suite\":\"{}\",\"input\":\"{}\",\
                 \"paper\":{},\"liveness\":{}}}",
                r.name,
                match r.suite {
                    Suite::RegJava => "regjava",
                    Suite::Olden => "olden",
                },
                r.input,
                mode_json(&r.paper),
                mode_json(&r.liveness)
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\":\"bench-liveness/v1\",\n  \"input_scale\":\"{}\",\n  \
         \"benchmarks\":[\n{}\n  ],\n  \"summary\":{{\"benchmarks\":{},\
         \"peak_improved\":{},\"letregs_rewritten\":{},\
         \"peak_never_worse\":true}}\n}}\n",
        if quick { "test" } else { "paper" },
        body.join(",\n"),
        rows.len(),
        improved,
        rewrites
    );
    std::fs::write(&out_path, &json).expect("write bench output");
    println!("wrote {out_path}");
}
