//! Constraint abstractions and their fixed-point analysis.
//!
//! The paper captures the region constraint of each class and method with a
//! *constraint abstraction* [Gustavsson & Svenningsson]:
//!
//! ```text
//! inv.cn⟨r1…rn⟩  = rc            (class invariant)
//! pre.m⟨r1…rn⟩   = rc            (method precondition)
//! ```
//!
//! where the right-hand side may conjoin atoms with *applications* of other
//! abstractions, e.g. (Fig 6):
//!
//! ```text
//! pre.join⟨r1…r9⟩ = (r2 ≥ r8) ∧ pre.join⟨r4,r5,r6,r1,r2,r3,r7,r8,r9⟩
//! ```
//!
//! Recursive systems (method SCCs with region-polymorphic recursion) are
//! solved by [`solve_fixpoint`]: Kleene iteration from `true`, substituting
//! the current approximation at each application and projecting onto the
//! abstraction's parameters, until closed forms are reached. Termination is
//! guaranteed because atoms range over the finite parameter set and
//! iterations only grow the approximation.

use crate::constraint::ConstraintSet;
use crate::solve::Solver;
use crate::subst::RegSubst;
use crate::var::RegVar;
use std::collections::BTreeMap;
use std::fmt;

/// An application `q⟨r1…rn⟩` of a named abstraction to argument regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsCall {
    /// Name of the applied abstraction (e.g. `pre.join`).
    pub name: String,
    /// Argument regions, positionally matching the callee's parameters.
    pub args: Vec<RegVar>,
}

impl fmt::Display for AbsCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(">")
    }
}

/// The body of an abstraction: atoms plus applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsBody {
    /// Plain atomic constraints.
    pub atoms: ConstraintSet,
    /// Applications of (possibly mutually recursive) abstractions.
    pub calls: Vec<AbsCall>,
}

impl AbsBody {
    /// A body with no calls.
    pub fn from_atoms(atoms: ConstraintSet) -> AbsBody {
        AbsBody {
            atoms,
            calls: Vec::new(),
        }
    }
}

/// A named, parameterized constraint abstraction `q⟨params⟩ = body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintAbs {
    /// Abstraction name (`inv.cn`, `pre.cn.mn` or `pre.mn`).
    pub name: String,
    /// Formal region parameters.
    pub params: Vec<RegVar>,
    /// Right-hand side.
    pub body: AbsBody,
}

impl fmt::Display for ConstraintAbs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}<", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "> = {}", self.body.atoms)?;
        for c in &self.body.calls {
            write!(f, " & {c}")?;
        }
        Ok(())
    }
}

/// The environment `Q` of all constraint abstractions of a program.
#[derive(Debug, Clone, Default)]
pub struct AbsEnv {
    map: BTreeMap<String, ConstraintAbs>,
}

impl AbsEnv {
    /// An empty environment.
    pub fn new() -> AbsEnv {
        AbsEnv::default()
    }

    /// Inserts (or replaces) an abstraction.
    pub fn insert(&mut self, abs: ConstraintAbs) {
        self.map.insert(abs.name.clone(), abs);
    }

    /// Looks up by name.
    pub fn get(&self, name: &str) -> Option<&ConstraintAbs> {
        self.map.get(name)
    }

    /// Iterates in name order.
    pub fn iter(&self) -> impl Iterator<Item = &ConstraintAbs> {
        self.map.values()
    }

    /// Number of abstractions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Conjoins extra atoms onto the body of `name` (used by override
    /// conflict resolution and escaping-region instantiation, which
    /// strengthen raw abstractions between solves). Returns `true` if the
    /// body actually grew.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown.
    pub fn add_atoms(&mut self, name: &str, extra: &ConstraintSet) -> bool {
        let abs = self
            .map
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown abstraction `{name}`"));
        let before = abs.body.atoms.len();
        abs.body.atoms.and(extra);
        abs.body.atoms.len() != before
    }

    /// Instantiates the *closed form* of `name` with `args`: the
    /// abstraction must have been solved (no residual calls).
    ///
    /// # Panics
    ///
    /// Panics if `name` is unknown or still has residual calls.
    pub fn instantiate(&self, name: &str, args: &[RegVar]) -> ConstraintSet {
        let abs = self
            .map
            .get(name)
            .unwrap_or_else(|| panic!("unknown abstraction `{name}`"));
        assert!(
            abs.body.calls.is_empty(),
            "abstraction `{name}` has not been solved to closed form"
        );
        let s = RegSubst::instantiation(&abs.params, args);
        abs.body.atoms.subst(&s)
    }
}

/// Solves a (mutually) recursive family of abstractions to closed forms.
///
/// `names` is the SCC to solve simultaneously; abstractions outside the SCC
/// that are applied from within must already be in closed form in `env`.
/// On return, every abstraction in `names` has an empty call list and its
/// atoms are the least fixed point projected onto its parameters — exactly
/// the iteration displayed in Fig 6(d).
///
/// Returns the number of Kleene iterations performed.
///
/// # Panics
///
/// Panics if a call references an unknown abstraction or one outside the
/// SCC that still has residual calls.
pub fn solve_fixpoint(env: &mut AbsEnv, names: &[String]) -> usize {
    // Current approximations for the SCC, starting at `true`.
    let mut approx: BTreeMap<String, ConstraintSet> = names
        .iter()
        .map(|n| (n.clone(), ConstraintSet::new()))
        .collect();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for name in names {
            let abs = env
                .get(name)
                .unwrap_or_else(|| panic!("unknown abstraction `{name}`"))
                .clone();
            // full = atoms ∧ (instantiated approximations of all calls)
            let mut solver = Solver::from_set(&abs.body.atoms);
            for call in &abs.body.calls {
                let imported = if let Some(a) = approx.get(&call.name) {
                    // Within the SCC: use the current approximation.
                    let callee = env.get(&call.name).expect("SCC member present");
                    let s = RegSubst::instantiation(&callee.params, &call.args);
                    a.subst(&s)
                } else {
                    // Outside the SCC: must be closed.
                    env.instantiate(&call.name, &call.args)
                };
                solver.add_set(&imported);
            }
            let params = abs.params.iter().copied().collect();
            let next = solver.project(&params);
            let cur = approx.get_mut(name).expect("approx seeded");
            if *cur != next {
                *cur = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Safety valve: the lattice is finite, but guard against bugs.
        assert!(
            iterations < 1000,
            "constraint-abstraction fixpoint failed to converge"
        );
    }
    // Write back closed forms.
    for name in names {
        let closed = approx.remove(name).expect("present");
        let abs = env.map.get_mut(name).expect("present");
        abs.body = AbsBody::from_atoms(closed);
    }
    iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Atom;

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    /// Fig 6(d): pre.join⟨r1..r9⟩ = (r2 ≥ r8) ∧ pre.join⟨r4,r5,r6,r1,r2,r3,r7,r8,r9⟩
    /// must converge to r2 ≥ r8 ∧ r5 ≥ r8 in three iterations.
    #[test]
    fn fig6_join_fixpoint() {
        let params: Vec<RegVar> = (1..=9).map(r).collect();
        let args: Vec<RegVar> = [4, 5, 6, 1, 2, 3, 7, 8, 9].iter().map(|&i| r(i)).collect();
        let mut body = AbsBody::from_atoms(ConstraintSet::singleton(Atom::outlives(r(2), r(8))));
        body.calls.push(AbsCall {
            name: "pre.join".into(),
            args,
        });
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "pre.join".into(),
            params,
            body,
        });
        let iters = solve_fixpoint(&mut env, &["pre.join".to_string()]);
        let closed = env.get("pre.join").unwrap();
        assert!(closed.body.calls.is_empty());
        assert_eq!(closed.body.atoms.to_string(), "r2>=r8 & r5>=r8");
        // p0=true, p1={r2>=r8}, p2={r2>=r8, r5>=r8}, p3=p2: converges by
        // the 3rd recomputation (the 4th detects stability).
        assert!((3..=4).contains(&iters), "iterations: {iters}");
    }

    #[test]
    fn nonrecursive_abstraction_closes_in_one_step() {
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "inv.Pair".into(),
            params: vec![r(1), r(2), r(3)],
            body: AbsBody::from_atoms(
                [Atom::outlives(r(2), r(1)), Atom::outlives(r(3), r(1))]
                    .into_iter()
                    .collect(),
            ),
        });
        solve_fixpoint(&mut env, &["inv.Pair".to_string()]);
        let inst = env.instantiate("inv.Pair", &[r(10), r(20), r(30)]);
        assert_eq!(inst.to_string(), "r20>=r10 & r30>=r10");
    }

    #[test]
    fn mutual_recursion_converges() {
        // p<a,b> = (a>=b) ∧ q<b,a>;  q<a,b> = p<a,b>
        // q imports p's (a>=b) directly; p imports q<b,a> = p<b,a> → b>=a.
        // Fixpoint: both become a>=b ∧ b>=a, i.e. a=b.
        let (a, b) = (r(1), r(2));
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "p".into(),
            params: vec![a, b],
            body: AbsBody {
                atoms: ConstraintSet::singleton(Atom::outlives(a, b)),
                calls: vec![AbsCall {
                    name: "q".into(),
                    args: vec![b, a],
                }],
            },
        });
        env.insert(ConstraintAbs {
            name: "q".into(),
            params: vec![a, b],
            body: AbsBody {
                atoms: ConstraintSet::new(),
                calls: vec![AbsCall {
                    name: "p".into(),
                    args: vec![a, b],
                }],
            },
        });
        solve_fixpoint(&mut env, &["p".to_string(), "q".to_string()]);
        assert_eq!(env.get("p").unwrap().body.atoms.to_string(), "r1=r2");
        assert_eq!(env.get("q").unwrap().body.atoms.to_string(), "r1=r2");
    }

    #[test]
    fn call_to_closed_outside_scc() {
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "inv.A".into(),
            params: vec![r(1), r(2)],
            body: AbsBody::from_atoms(ConstraintSet::singleton(Atom::outlives(r(2), r(1)))),
        });
        env.insert(ConstraintAbs {
            name: "pre.m".into(),
            params: vec![r(3), r(4)],
            body: AbsBody {
                atoms: ConstraintSet::new(),
                calls: vec![AbsCall {
                    name: "inv.A".into(),
                    args: vec![r(3), r(4)],
                }],
            },
        });
        solve_fixpoint(&mut env, &["pre.m".to_string()]);
        assert_eq!(env.get("pre.m").unwrap().body.atoms.to_string(), "r4>=r3");
    }

    #[test]
    #[should_panic(expected = "unknown abstraction")]
    fn unknown_call_panics() {
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "p".into(),
            params: vec![r(1)],
            body: AbsBody {
                atoms: ConstraintSet::new(),
                calls: vec![AbsCall {
                    name: "nope".into(),
                    args: vec![r(1)],
                }],
            },
        });
        solve_fixpoint(&mut env, &["p".to_string()]);
    }

    #[test]
    fn display_forms() {
        let abs = ConstraintAbs {
            name: "pre.swap".into(),
            params: vec![r(1), r(2), r(3)],
            body: AbsBody::from_atoms(ConstraintSet::singleton(Atom::eq(r(2), r(3)))),
        };
        assert_eq!(abs.to_string(), "pre.swap<r1,r2,r3> = r2=r3");
    }
}
