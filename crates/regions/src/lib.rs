//! # cj-regions — region variables, lifetime constraints and their solver
//!
//! The constraint layer of the PLDI 2004 region-inference system:
//!
//! - [`var`]: region variables and the distinguished `heap` region;
//! - [`constraint`]: atomic constraints `r₁ ≥ r₂` (outlives) and `r₁ = r₂`,
//!   and conjunctions thereof;
//! - [`subst`]: region substitutions (instantiation, and the `ctr(·)`
//!   conversion used by override resolution);
//! - [`solve`]: the solver — union-find + outlives graph with cycle
//!   collapse, entailment, projection (existential elimination) and the
//!   escape closure of rule \[exp-block\];
//! - [`abstraction`]: constraint abstractions `inv.cn` / `pre.m` and the
//!   Kleene fixed-point analysis of Fig 6(d) that supports
//!   region-polymorphic recursion;
//! - [`incremental`]: α-invariant canonical forms of abstractions and a
//!   content-addressed memo of solved SCCs, the engine behind demand-driven
//!   re-solving in the `Workspace` driver.
//!
//! This crate is deliberately independent of the Core-Java frontend: it
//! deals only in region variables and names.
//!
//! # Examples
//!
//! ```
//! use cj_regions::{solve::Solver, var::RegVar, constraint::Atom};
//!
//! let (a, b, c) = (RegVar(1), RegVar(2), RegVar(3));
//! let mut s = Solver::new();
//! s.add_outlives(a, b);
//! s.add_outlives(b, c);
//! assert!(s.entails_atom(Atom::outlives(a, c)));
//! ```
#![forbid(unsafe_code)]

pub mod abstraction;
pub mod constraint;
pub mod incremental;
pub mod solve;
pub mod subst;
pub mod var;

pub use abstraction::{AbsBody, AbsCall, AbsEnv, ConstraintAbs};
pub use constraint::{Atom, ConstraintSet};
pub use incremental::{solve_scc_memo, solve_scc_memo_as, SccOutcome, SolveMemo};
pub use solve::Solver;
pub use subst::RegSubst;
pub use var::{RegVar, RegVarGen};
