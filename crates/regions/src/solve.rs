//! The region constraint solver.
//!
//! A [`Solver`] maintains a conjunction of outlives/equality constraints in
//! solved form: a union-find of region equivalence classes plus a directed
//! graph of outlives edges between class representatives. It answers the
//! three questions the inference and checker ask:
//!
//! - **entailment** — does the conjunction imply `a ≥ b` / `a = b`?
//! - **projection** — existentially eliminate all variables outside a kept
//!   set, returning the strongest derivable constraint over the kept set
//!   (used to form method preconditions, Fig 6);
//! - **escape closure** — which regions outlive a seed set (rule
//!   \[exp-block\]'s "all regions that outlive these regions also escape").
//!
//! Two semantic rules are built in:
//! - cycles of `≥` collapse to equalities (mutual outlives means equal
//!   lifetime — this is what merges cyclic structures into one region,
//!   Fig 5);
//! - `heap ≥ r` holds axiomatically for every `r`, and `r ≥ heap` forces
//!   `r = heap`.
//!
//! Constraint sets here are always satisfiable (mapping every variable to
//! `heap` satisfies any conjunction), so there is no "unsat" state.

use crate::constraint::{Atom, ConstraintSet};
use crate::var::RegVar;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// An incremental solver for region constraints. See the module docs.
///
/// # Examples
///
/// ```
/// use cj_regions::{constraint::Atom, solve::Solver, var::RegVar};
///
/// let (a, b, c) = (RegVar(1), RegVar(2), RegVar(3));
/// let mut s = Solver::new();
/// s.add_outlives(a, b);
/// s.add_outlives(b, c);
/// assert!(s.entails_atom(Atom::outlives(a, c))); // transitivity
/// s.add_outlives(c, a);
/// assert!(s.entails_atom(Atom::eq(a, c))); // cycle collapses
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    parent: HashMap<RegVar, RegVar>,
    /// Outlives edges between representatives: `src ≥ dst`.
    edges: HashMap<RegVar, BTreeSet<RegVar>>,
    dirty: bool,
}

impl Solver {
    /// An empty solver (the constraint `true`).
    pub fn new() -> Solver {
        Solver::default()
    }

    /// A solver pre-loaded with `set`.
    pub fn from_set(set: &ConstraintSet) -> Solver {
        let mut s = Solver::new();
        s.add_set(set);
        s
    }

    /// Representative of `v`'s equivalence class.
    pub fn find(&self, mut v: RegVar) -> RegVar {
        while let Some(&p) = self.parent.get(&v) {
            if p == v {
                break;
            }
            v = p;
        }
        v
    }

    fn union(&mut self, a: RegVar, b: RegVar) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // The heap always wins; otherwise the smaller id (typically the
        // earlier-created signature region) represents the class.
        let (winner, loser) = if ra.is_heap() {
            (ra, rb)
        } else if rb.is_heap() {
            (rb, ra)
        } else if ra < rb {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent.insert(loser, winner);
        // Migrate the loser's edges.
        if let Some(outs) = self.edges.remove(&loser) {
            self.edges.entry(winner).or_default().extend(outs);
        }
        self.dirty = true;
    }

    /// Adds `a = b`.
    pub fn add_eq(&mut self, a: RegVar, b: RegVar) {
        self.union(a, b);
    }

    /// Adds `a ≥ b`.
    pub fn add_outlives(&mut self, a: RegVar, b: RegVar) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb || ra.is_heap() {
            return; // trivial or axiomatic
        }
        if rb.is_heap() {
            // a >= heap forces a = heap.
            self.union(ra, rb);
            return;
        }
        self.edges.entry(ra).or_default().insert(rb);
        self.dirty = true;
    }

    /// Adds one atom.
    pub fn add_atom(&mut self, atom: Atom) {
        match atom {
            Atom::Outlives(a, b) => self.add_outlives(a, b),
            Atom::Eq(a, b) => self.add_eq(a, b),
        }
    }

    /// Conjoins a whole set.
    pub fn add_set(&mut self, set: &ConstraintSet) {
        for a in set.iter() {
            self.add_atom(a);
        }
    }

    /// Collapses `≥`-cycles into equalities and re-canonicalizes edges.
    /// Queries call this automatically.
    pub fn normalize(&mut self) {
        while self.dirty {
            self.dirty = false;
            // Canonicalize edge endpoints.
            let mut canon: HashMap<RegVar, BTreeSet<RegVar>> = HashMap::new();
            let mut to_heap: Vec<RegVar> = Vec::new();
            for (&src, dsts) in &self.edges {
                let s = self.find(src);
                for &dst in dsts {
                    let d = self.find(dst);
                    if s == d || s.is_heap() {
                        continue;
                    }
                    if d.is_heap() {
                        to_heap.push(s);
                        continue;
                    }
                    canon.entry(s).or_default().insert(d);
                }
            }
            self.edges = canon;
            for s in to_heap {
                self.union(s, RegVar::HEAP);
            }
            if self.dirty {
                continue; // unions happened; re-canonicalize
            }
            // Collapse SCCs of the (now canonical) outlives graph.
            let nodes: Vec<RegVar> = self.edges.keys().copied().collect();
            let index: HashMap<RegVar, usize> =
                nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            let sccs = tarjan(&nodes, &index, &self.edges);
            for scc in sccs {
                if scc.len() > 1 {
                    for w in &scc[1..] {
                        self.union(scc[0], *w);
                    }
                }
            }
        }
    }

    /// Whether `a` and `b` are known equal.
    pub fn equal(&mut self, a: RegVar, b: RegVar) -> bool {
        self.normalize();
        self.find(a) == self.find(b)
    }

    /// Whether the conjunction entails `a ≥ b`.
    pub fn outlives_holds(&mut self, a: RegVar, b: RegVar) -> bool {
        self.normalize();
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb || ra.is_heap() {
            return true;
        }
        self.reaches(ra, rb)
    }

    /// Whether the conjunction entails `atom`.
    pub fn entails_atom(&mut self, atom: Atom) -> bool {
        match atom {
            Atom::Outlives(a, b) => self.outlives_holds(a, b),
            Atom::Eq(a, b) => self.equal(a, b),
        }
    }

    /// Whether the conjunction entails every atom of `set`.
    pub fn entails(&mut self, set: &ConstraintSet) -> bool {
        set.iter().all(|a| self.entails_atom(a))
    }

    fn reaches(&self, from: RegVar, to: RegVar) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            if v == to {
                return true;
            }
            if !seen.insert(v) {
                continue;
            }
            if let Some(outs) = self.edges.get(&v) {
                queue.extend(outs.iter().copied());
            }
        }
        false
    }

    /// All representatives reachable from `from` (excluding itself unless on
    /// a path), i.e. every region that `from` is known to outlive.
    fn reach_set(&self, from: RegVar) -> BTreeSet<RegVar> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(v) = queue.pop_front() {
            if !seen.insert(v) {
                continue;
            }
            if let Some(outs) = self.edges.get(&v) {
                queue.extend(outs.iter().copied());
            }
        }
        seen
    }

    /// Projects the conjunction onto `keep`: the strongest constraint over
    /// only the kept variables that the current conjunction entails
    /// (existential elimination of everything else).
    ///
    /// This is how method preconditions are formed: the body constraint is
    /// projected onto the method's region parameters.
    pub fn project(&mut self, keep: &BTreeSet<RegVar>) -> ConstraintSet {
        self.normalize();
        let mut out = ConstraintSet::new();
        // Group kept vars by representative; emit equalities within groups.
        let mut groups: BTreeMap<RegVar, Vec<RegVar>> = BTreeMap::new();
        for &v in keep {
            groups.entry(self.find(v)).or_default().push(v);
        }
        for vars in groups.values() {
            for pair in vars.windows(2) {
                out.add_eq(pair[0], pair[1]);
            }
        }
        // Outlives between groups via reachability.
        let reprs: Vec<(RegVar, RegVar)> =
            groups.iter().map(|(&rep, vars)| (rep, vars[0])).collect();
        for &(rep_a, var_a) in &reprs {
            let reach = self.reach_set(rep_a);
            for &(rep_b, var_b) in &reprs {
                if rep_a != rep_b && reach.contains(&rep_b) {
                    out.add_outlives(var_a, var_b);
                }
            }
            // Kept vars equal to heap surface as r = heap... they are
            // handled because HEAP is its own representative: if a kept var
            // collapsed into heap, its group representative is HEAP and the
            // equality `v = heap` must be recorded explicitly.
        }
        for (&rep, vars) in &groups {
            if rep.is_heap() && !vars.contains(&RegVar::HEAP) {
                out.add_eq(vars[0], RegVar::HEAP);
            }
        }
        out
    }

    /// The escape closure of rule \[exp-block\]: every variable of `universe`
    /// that is equal to, or outlives, a seed. (`r` escapes iff
    /// `φ ⊢ r ≥ e` for some escaping `e`.)
    pub fn escape_closure(
        &mut self,
        seeds: impl IntoIterator<Item = RegVar>,
        universe: &BTreeSet<RegVar>,
    ) -> BTreeSet<RegVar> {
        self.normalize();
        // Reverse-reachability from seed representatives.
        let seed_reps: BTreeSet<RegVar> = seeds.into_iter().map(|v| self.find(v)).collect();
        let mut rev: HashMap<RegVar, Vec<RegVar>> = HashMap::new();
        for (&src, dsts) in &self.edges {
            for &dst in dsts {
                rev.entry(dst).or_default().push(src);
            }
        }
        let mut escaping: BTreeSet<RegVar> = BTreeSet::new();
        let mut queue: VecDeque<RegVar> = seed_reps.iter().copied().collect();
        while let Some(v) = queue.pop_front() {
            if !escaping.insert(v) {
                continue;
            }
            if let Some(preds) = rev.get(&v) {
                queue.extend(preds.iter().copied());
            }
        }
        universe
            .iter()
            .copied()
            .filter(|&v| {
                let r = self.find(v);
                r.is_heap() || escaping.contains(&r)
            })
            .collect()
    }

    /// The full solved form over a given universe of interest: equalities
    /// for collapsed classes and the outlives edges, restricted to
    /// variables of `universe`.
    pub fn solved_form(&mut self, universe: &BTreeSet<RegVar>) -> ConstraintSet {
        self.project(&universe.iter().copied().collect())
    }
}

fn tarjan(
    nodes: &[RegVar],
    index_of: &HashMap<RegVar, usize>,
    edges: &HashMap<RegVar, BTreeSet<RegVar>>,
) -> Vec<Vec<RegVar>> {
    let n = nodes.len();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|v| {
            edges
                .get(v)
                .map(|outs| {
                    outs.iter()
                        .filter_map(|d| index_of.get(d).copied())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    // Iterative Tarjan (mirrors cj-frontend's; regions stays dependency-free).
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut counter = 0usize;
    let mut out: Vec<Vec<RegVar>> = Vec::new();
    let mut work: Vec<(usize, usize)> = Vec::new(); // (node, next-edge-index)
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] && index[w] < low[v] {
                    low[v] = index[w];
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    if low[v] < low[parent] {
                        low[parent] = low[v];
                    }
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("nonempty");
                        on_stack[w] = false;
                        scc.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    out.push(scc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    #[test]
    fn transitive_outlives() {
        let mut s = Solver::new();
        s.add_outlives(r(1), r(2));
        s.add_outlives(r(2), r(3));
        assert!(s.outlives_holds(r(1), r(3)));
        assert!(!s.outlives_holds(r(3), r(1)));
    }

    #[test]
    fn reflexive_and_heap_axioms() {
        let mut s = Solver::new();
        assert!(s.outlives_holds(r(7), r(7)));
        assert!(s.outlives_holds(RegVar::HEAP, r(7)));
        assert!(!s.outlives_holds(r(7), RegVar::HEAP));
    }

    #[test]
    fn outliving_heap_collapses_to_heap() {
        let mut s = Solver::new();
        s.add_outlives(r(1), RegVar::HEAP);
        assert!(s.equal(r(1), RegVar::HEAP));
        assert!(s.outlives_holds(r(1), r(99)));
    }

    #[test]
    fn cycle_collapses_to_equality_fig5() {
        // Fig 5: r2 >= r1b, r1b >= r1, r1 >= r2a, r2a >= r2
        // implies r1 = r2 = r1b = r2a.
        let (r1, r1b, r2, r2a) = (r(1), r(2), r(3), r(4));
        let mut s = Solver::new();
        s.add_outlives(r2, r1b);
        s.add_outlives(r1b, r1);
        s.add_outlives(r1, r2a);
        s.add_outlives(r2a, r2);
        for &(a, b) in &[(r1, r2), (r1, r1b), (r1, r2a), (r2, r2a)] {
            assert!(s.equal(a, b), "{a} and {b} should collapse");
        }
    }

    #[test]
    fn equality_merges_edges() {
        let mut s = Solver::new();
        s.add_outlives(r(1), r(2));
        s.add_eq(r(1), r(3));
        assert!(s.outlives_holds(r(3), r(2)));
    }

    #[test]
    fn entails_set() {
        let mut s = Solver::new();
        s.add_outlives(r(1), r(2));
        s.add_outlives(r(2), r(3));
        let mut want = ConstraintSet::new();
        want.add_outlives(r(1), r(3));
        want.add_outlives(r(1), r(2));
        assert!(s.entails(&want));
        want.add_eq(r(1), r(2));
        assert!(!s.entails(&want));
    }

    #[test]
    fn projection_keeps_only_kept_vars() {
        // r1 >= t >= r2 with t eliminated must yield r1 >= r2.
        let mut s = Solver::new();
        s.add_outlives(r(1), r(9));
        s.add_outlives(r(9), r(2));
        let keep: BTreeSet<_> = [r(1), r(2)].into_iter().collect();
        let p = s.project(&keep);
        assert_eq!(p.to_string(), "r1>=r2");
    }

    #[test]
    fn projection_emits_equalities() {
        let mut s = Solver::new();
        s.add_eq(r(1), r(9));
        s.add_eq(r(9), r(2));
        let keep: BTreeSet<_> = [r(1), r(2)].into_iter().collect();
        let p = s.project(&keep);
        assert_eq!(p.to_string(), "r1=r2");
    }

    #[test]
    fn projection_records_heap_equality() {
        let mut s = Solver::new();
        s.add_outlives(r(1), RegVar::HEAP);
        let keep: BTreeSet<_> = [r(1)].into_iter().collect();
        let p = s.project(&keep);
        assert_eq!(p.to_string(), "heap=r1");
    }

    #[test]
    fn escape_closure_fig4() {
        // Fig 4: result regions escape; r4 >= r2b drags r4 (and r4a, r4b
        // which outlive r4) into the escape set; r1* and r3* stay local.
        let names: Vec<RegVar> = (1..=12).map(r).collect();
        let [r1, r1a, r1b, r2, r2a, r2b, r3, r3a, r3b, r4, r4a, r4b]: [RegVar; 12] =
            names.clone().try_into().unwrap();
        let mut s = Solver::new();
        for &(a, b) in &[
            (r4a, r4),
            (r4b, r4),
            (r3a, r3),
            (r3b, r3),
            (r4, r3a),
            (r2a, r2),
            (r2b, r2),
            (r4, r2b),
            (r1a, r1),
            (r1b, r1),
            (r2, r1a),
            (r3, r1b),
        ] {
            s.add_outlives(a, b);
        }
        let universe: BTreeSet<RegVar> = names.iter().copied().collect();
        let escaping = s.escape_closure([r2, r2a, r2b], &universe);
        let expect: BTreeSet<RegVar> = [r2, r2a, r2b, r4, r4a, r4b].into_iter().collect();
        assert_eq!(escaping, expect);
    }

    #[test]
    fn escape_closure_includes_equalities() {
        let mut s = Solver::new();
        s.add_eq(r(1), r(2));
        let universe: BTreeSet<RegVar> = [r(1), r(2), r(3)].into_iter().collect();
        let escaping = s.escape_closure([r(1)], &universe);
        assert!(escaping.contains(&r(2)));
        assert!(!escaping.contains(&r(3)));
    }

    #[test]
    fn normalize_is_idempotent() {
        let mut s = Solver::new();
        s.add_outlives(r(1), r(2));
        s.add_outlives(r(2), r(1));
        s.normalize();
        let before = format!("{s:?}");
        s.normalize();
        assert_eq!(before, format!("{s:?}"));
    }

    #[test]
    fn long_chain_projection() {
        let mut s = Solver::new();
        for i in 1..100 {
            s.add_outlives(r(i), r(i + 1));
        }
        let keep: BTreeSet<_> = [r(1), r(100)].into_iter().collect();
        assert_eq!(s.project(&keep).to_string(), "r1>=r100");
        assert!(s.outlives_holds(r(1), r(100)));
    }
}
