//! Incremental solving: canonical forms and a content-addressed memo for
//! per-SCC fixed points.
//!
//! The global analysis (paper Sec 4.3) solves the constraint-abstraction
//! system bottom-up over its SCC condensation. The result of solving one
//! SCC is fully determined by
//!
//! 1. the raw bodies of the SCC's members (atoms + applications), and
//! 2. the *closed* forms of every abstraction applied from inside the SCC
//!    but defined outside it (already solved, by bottom-up order),
//!
//! both considered **up to a consistent renaming of region variables**.
//! [`canon`] computes that α-invariant form: formal parameters map to
//! `1..=k` positionally, the heap to `0`, and every other (body-local)
//! variable to the next id in first-occurrence order. [`SolveMemo`] keys
//! solved SCCs by the canonical serialization of (1) + (2); on a hit the
//! cached closed forms — which mention only parameters and the heap — are
//! re-expressed over the current parameters and written back without
//! re-running the Kleene iteration.
//!
//! Because the key is content-addressed rather than name- or
//! revision-based, the same memo serves two tiers of reuse:
//!
//! - **within one inference run**: the repair loop (escaping-region
//!   instantiation, override resolution) re-solves after strengthening a
//!   few abstractions; every untouched SCC whose imports are unchanged is
//!   a hit;
//! - **across revisions of a workspace**: editing one method body leaves
//!   every other SCC's canonical key unchanged, so only the dirty SCCs and
//!   the dependents whose imports actually changed are re-solved;
//! - **across clients compiling different programs**: the memo is
//!   thread-safe (sharded locks, atomic counters), so a compile daemon can
//!   hand one `Arc<SolveMemo>` to every connection — α-equivalent SCCs
//!   solved by *any* client are hits for all of them, counted separately
//!   as [`SolveMemo::shared_hits`];
//! - **across processes**: entries are α-invariant summaries with no
//!   process-local state, so they can be [`export`](SolveMemo::export)ed
//!   verbatim and [`preload`](SolveMemo::preload)ed into a fresh memo —
//!   the `cj-persist` crate persists them to disk so a restarted daemon
//!   starts warm, with such hits counted as [`SolveMemo::disk_hits`].

use crate::abstraction::{solve_fixpoint, AbsEnv, ConstraintAbs};
use crate::constraint::{Atom, ConstraintSet};
use crate::var::RegVar;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash as _, Hasher as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A canonical variable numbering: heap ↦ 0, params ↦ 1..=k, locals ↦
/// k+1... in first-occurrence order.
#[derive(Debug, Default)]
struct Canonizer {
    map: BTreeMap<RegVar, u32>,
    next: u32,
}

impl Canonizer {
    fn for_params(params: &[RegVar]) -> Canonizer {
        let mut c = Canonizer {
            map: BTreeMap::new(),
            next: params.len() as u32 + 1,
        };
        c.map.insert(RegVar::HEAP, 0);
        for (i, &p) in params.iter().enumerate() {
            c.map.entry(p).or_insert(i as u32 + 1);
        }
        c
    }

    fn id(&mut self, v: RegVar) -> u32 {
        if let Some(&i) = self.map.get(&v) {
            return i;
        }
        let i = self.next;
        self.next += 1;
        self.map.insert(v, i);
        i
    }
}

/// The canonical (α-invariant) serialization of one abstraction's raw body:
/// parameter count, atoms, and applications. Applications are rendered with
/// the callee's *name* replaced by the placeholder the caller supplies (see
/// [`canon_with`]) so the form can be made independent of naming.
pub fn canon(abs: &ConstraintAbs) -> String {
    canon_with(abs, |name| format!("@{name}"))
}

/// [`canon`] with control over how callee names are rendered.
pub fn canon_with(abs: &ConstraintAbs, callee_tag: impl Fn(&str) -> String) -> String {
    let mut c = Canonizer::for_params(&abs.params);
    let mut out = String::new();
    let _ = write!(out, "p{}|", abs.params.len());
    for atom in abs.body.atoms.iter() {
        match atom {
            Atom::Outlives(a, b) => {
                let _ = write!(out, "{}>{};", c.id(a), c.id(b));
            }
            Atom::Eq(a, b) => {
                let _ = write!(out, "{}={};", c.id(a), c.id(b));
            }
        }
    }
    for call in &abs.body.calls {
        let _ = write!(out, "[{}](", callee_tag(&call.name));
        for &a in &call.args {
            let _ = write!(out, "{},", c.id(a));
        }
        out.push(')');
    }
    out
}

/// The canonical form of a *closed* abstraction (no residual calls): its
/// atoms with parameters renamed positionally to `1..=k` and the heap to
/// `0`. Closed forms mention only parameters and the heap, so this is a
/// total renaming.
pub fn canon_closed(abs: &ConstraintAbs) -> ConstraintSet {
    debug_assert!(abs.body.calls.is_empty(), "canon_closed needs closed form");
    let mut c = Canonizer::for_params(&abs.params);
    abs.body
        .atoms
        .iter()
        .map(|a| match a {
            Atom::Outlives(x, y) => Atom::outlives(RegVar(c.id(x)), RegVar(c.id(y))),
            Atom::Eq(x, y) => Atom::eq(RegVar(c.id(x)), RegVar(c.id(y))),
        })
        .collect()
}

/// Re-expresses a canonical closed form over concrete parameters:
/// canonical id `i` (1-based) becomes `params[i-1]`, `0` the heap.
pub fn uncanon_closed(canonical: &ConstraintSet, params: &[RegVar]) -> ConstraintSet {
    let decode = |v: RegVar| -> RegVar {
        if v.0 == 0 {
            RegVar::HEAP
        } else {
            params[v.0 as usize - 1]
        }
    };
    canonical
        .iter()
        .map(|a| match a {
            Atom::Outlives(x, y) => Atom::outlives(decode(x), decode(y)),
            Atom::Eq(x, y) => Atom::eq(decode(x), decode(y)),
        })
        .collect()
}

/// Result of [`solve_scc_memo`] for one SCC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SccOutcome {
    /// Whether the closed forms came from the memo.
    pub reused: bool,
    /// Whether the hit entry was solved by a *different* client (see
    /// [`SolveMemo::register_client`]); always `false` on a miss.
    pub shared: bool,
    /// Whether the hit entry was preloaded from an on-disk cache (see
    /// [`SolveMemo::preload`]); always `false` on a miss.
    pub disk: bool,
    /// Kleene iterations actually performed (0 on reuse).
    pub iterations: usize,
}

/// One solved-SCC record: the canonical closed atoms per member, in the
/// same (name-sorted) member order the key was built in, tagged with the
/// client that solved it.
#[derive(Debug, Clone)]
struct MemoEntry {
    owner: u64,
    closed: Vec<ConstraintSet>,
}

/// A content-addressed memo of solved SCCs. See the module docs.
///
/// Thread-safe: entries live in [`SolveMemo::SHARDS`] mutex-protected
/// shards selected by key hash, and the counters are atomics, so one memo
/// can be shared (`Arc<SolveMemo>`) by many concurrently compiling clients
/// — e.g. every connection of a compile daemon — without serializing their
/// solves on a single lock.
///
/// Bounded: when a shard's entry count reaches its slice of
/// [`SolveMemo::MAX_ENTRIES`] that shard is flushed wholesale. Correctness
/// never depends on a hit, so the only cost of a flush is one cold
/// re-solve per SCC — which keeps a long-lived compile server's memory
/// flat across unbounded edit streams.
///
/// Entries are tagged with the *client* that solved them (see
/// [`register_client`](SolveMemo::register_client)); a hit on another
/// client's entry counts as a **shared hit**, making cross-client reuse
/// observable.
#[derive(Debug)]
pub struct SolveMemo {
    shards: [Mutex<HashMap<String, MemoEntry>>; SolveMemo::SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    shared_hits: AtomicU64,
    disk_hits: AtomicU64,
    next_client: AtomicU64,
    /// Monotone count of entry installations (solves + preloads); see
    /// [`installs`](SolveMemo::installs).
    installs: AtomicU64,
    /// Total entry budget (split evenly across shards).
    capacity: usize,
}

impl Default for SolveMemo {
    fn default() -> SolveMemo {
        SolveMemo::with_capacity(SolveMemo::MAX_ENTRIES)
    }
}

impl SolveMemo {
    /// Default entry count at which the memo flushes itself (see the type
    /// docs); override with [`with_capacity`](SolveMemo::with_capacity).
    pub const MAX_ENTRIES: usize = 1 << 14;

    /// Number of independently locked shards.
    pub const SHARDS: usize = 16;

    /// The owner id tagging entries preloaded from an on-disk cache (see
    /// [`preload`](SolveMemo::preload)): hits on them are counted as
    /// [`disk_hits`](SolveMemo::disk_hits), never as shared hits, no
    /// matter which client looks them up. [`register_client`] can never
    /// return this id.
    ///
    /// [`register_client`]: SolveMemo::register_client
    pub const DISK_CLIENT: u64 = u64::MAX;

    /// An empty memo with the default entry budget.
    pub fn new() -> SolveMemo {
        SolveMemo::default()
    }

    /// An empty memo that flushes a shard when the total entry count would
    /// exceed `capacity` (clamped to at least one entry per shard).
    pub fn with_capacity(capacity: usize) -> SolveMemo {
        SolveMemo {
            shards: Default::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            next_client: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            capacity: capacity.max(SolveMemo::SHARDS),
        }
    }

    /// The per-shard slice of the entry budget.
    fn shard_budget(&self) -> usize {
        (self.capacity / SolveMemo::SHARDS).max(1)
    }

    /// Allocates a fresh client id for owner-tagging entries. A *client*
    /// is one logical user of the memo (one `InferCache`-style holder);
    /// hits on entries solved by a different client are counted as
    /// [`shared_hits`](SolveMemo::shared_hits). Ids start at 1 — id 0 is
    /// reserved for anonymous callers ([`solve_scc_memo`]), so a
    /// registered client never aliases them.
    pub fn register_client(&self) -> u64 {
        self.next_client.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of memo hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of memo misses (actual fixpoint runs) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of hits served from an entry solved by a *different* client
    /// — the cross-client reuse a shared daemon memo exists for.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits.load(Ordering::Relaxed)
    }

    /// Number of hits served from an entry [`preload`](SolveMemo::preload)ed
    /// out of an on-disk cache — the cross-*process* reuse a persistent
    /// cache exists for. Disjoint from [`shared_hits`](SolveMemo::shared_hits).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Monotone count of entry installations — every [`store`d] solve and
    /// every successful [`preload`](SolveMemo::preload). A persistence
    /// layer can remember this stamp and skip its next flush entirely
    /// when it is unchanged, instead of exporting the whole memo to
    /// discover there is nothing new.
    ///
    /// [`store`d]: SolveMemo::misses
    pub fn installs(&self) -> u64 {
        self.installs.load(Ordering::Relaxed)
    }

    /// Number of distinct solved-SCC entries retained.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, MemoEntry>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % SolveMemo::SHARDS]
    }

    /// Looks up a solved SCC; on a hit updates the hit counters and
    /// reports whether the entry was solved by a different client
    /// (`shared`) or preloaded from disk (`disk`) — mutually exclusive.
    fn lookup(&self, key: &str, client: u64) -> Option<(Vec<ConstraintSet>, bool, bool)> {
        let shard = self.shard(key).lock().expect("memo shard poisoned");
        let entry = shard.get(key)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        let disk = entry.owner == SolveMemo::DISK_CLIENT;
        let shared = !disk && entry.owner != client;
        if disk {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
        } else if shared {
            self.shared_hits.fetch_add(1, Ordering::Relaxed);
        }
        Some((entry.closed.clone(), shared, disk))
    }

    /// Records a freshly solved SCC, reclaiming space when the target
    /// shard's slice of the entry budget is exhausted: disk-preloaded
    /// entries go first (they are only a restart convenience and remain
    /// on disk anyway); if the shard is full of *live* entries it is
    /// flushed wholesale. A concurrent solver may have stored the same
    /// key already; the values are identical by determinism of the
    /// fixpoint, so last-write-wins is safe.
    fn store(&self, key: String, client: u64, closed: Vec<ConstraintSet>) {
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        if shard.len() >= self.shard_budget() {
            shard.retain(|_, e| e.owner != SolveMemo::DISK_CLIENT);
            if shard.len() >= self.shard_budget() {
                shard.clear();
            }
        }
        shard.insert(
            key,
            MemoEntry {
                owner: client,
                closed,
            },
        );
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.installs.fetch_add(1, Ordering::Relaxed);
    }

    // ---- persistence hooks --------------------------------------------

    /// Seeds one solved-SCC entry recovered from an on-disk cache. The
    /// entry is tagged with [`DISK_CLIENT`](SolveMemo::DISK_CLIENT), so
    /// hits on it are counted as [`disk_hits`](SolveMemo::disk_hits); no
    /// miss is recorded. An entry already present (e.g. solved live while
    /// the cache loaded) is left untouched — its owner tag is more
    /// precise — and preloads fill each shard only to *half* its budget,
    /// so a warm start always leaves headroom for live solves (a shard
    /// filled to the brim by preloads would otherwise flush on the very
    /// first store). Returns whether the entry was installed.
    ///
    /// Correctness never depends on what is preloaded *existing*, but it
    /// does depend on the value being the genuine closed form for the
    /// key; callers must only feed back entries a [`SolveMemo`] exported.
    pub fn preload(&self, key: String, closed: Vec<ConstraintSet>) -> bool {
        let mut shard = self.shard(&key).lock().expect("memo shard poisoned");
        if shard.contains_key(&key) || shard.len() >= (self.shard_budget() / 2).max(1) {
            return false;
        }
        shard.insert(
            key,
            MemoEntry {
                owner: SolveMemo::DISK_CLIENT,
                closed,
            },
        );
        self.installs.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// A snapshot of every entry — canonical key plus the closed forms in
    /// member order — for an on-disk cache to persist. Keys are
    /// α-invariant and content-addressed ([`canon`]), so exported entries
    /// are process-independent: feeding them to [`preload`](SolveMemo::preload) in another
    /// process reproduces the hit.
    pub fn export(&self) -> Vec<(String, Vec<ConstraintSet>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("memo shard poisoned");
            out.extend(shard.iter().map(|(k, e)| (k.clone(), e.closed.clone())));
        }
        // Shard iteration order is hash-dependent; sort so exports (and
        // the cache files built from them) are deterministic.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Builds the content-addressed key of one SCC: the canonical raw bodies of
/// its members (in name-sorted order, calls to members rendered by member
/// index) together with the canonical closed forms of every external
/// callee.
///
/// # Panics
///
/// Panics when an external callee has residual calls (i.e. the SCC order is
/// not bottom-up).
fn scc_key(env: &AbsEnv, members: &[String]) -> String {
    let member_index: BTreeMap<&str, usize> = members
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut key = String::new();
    for name in members {
        let abs = env
            .get(name)
            .unwrap_or_else(|| panic!("unknown abstraction `{name}`"));
        let body = canon_with(abs, |callee| match member_index.get(callee) {
            Some(i) => format!("m{i}"),
            None => {
                let c = env
                    .get(callee)
                    .unwrap_or_else(|| panic!("unknown abstraction `{callee}`"));
                assert!(
                    c.body.calls.is_empty(),
                    "external callee `{callee}` is not closed"
                );
                format!("x{}", canon_closed(c))
            }
        });
        key.push_str(&body);
        key.push('\n');
    }
    key
}

/// Solves one SCC to closed forms, reusing the memo when an identical SCC
/// (up to renaming) has been solved before. `names` may arrive in any
/// order; results are written back into `env` either way.
///
/// # Panics
///
/// Panics if a member or callee is unknown, or an external callee is not
/// yet closed (the caller must process SCCs bottom-up).
pub fn solve_scc_memo(env: &mut AbsEnv, names: &[String], memo: &SolveMemo) -> SccOutcome {
    solve_scc_memo_as(env, names, memo, 0)
}

/// [`solve_scc_memo`] on behalf of a registered client (see
/// [`SolveMemo::register_client`]): hits on entries another client solved
/// are reported as `shared` in the outcome and counted by the memo.
///
/// # Panics
///
/// Same conditions as [`solve_scc_memo`].
pub fn solve_scc_memo_as(
    env: &mut AbsEnv,
    names: &[String],
    memo: &SolveMemo,
    client: u64,
) -> SccOutcome {
    let mut span = cj_trace::span("pipeline", "solve-scc");
    span.add("members", names.len() as u64);
    let mut members: Vec<String> = names.to_vec();
    members.sort();
    let key = scc_key(env, &members);
    if let Some((closed, shared, disk)) = memo.lookup(&key, client) {
        span.add("hit", 1);
        if shared {
            span.add("shared", 1);
        }
        if disk {
            span.add("disk", 1);
        }
        for (name, canonical) in members.iter().zip(closed) {
            let abs = env.get(name).expect("member present").clone();
            let atoms = uncanon_closed(&canonical, &abs.params);
            env.insert(ConstraintAbs {
                name: abs.name,
                params: abs.params,
                body: crate::abstraction::AbsBody::from_atoms(atoms),
            });
        }
        return SccOutcome {
            reused: true,
            shared,
            disk,
            iterations: 0,
        };
    }
    span.add("miss", 1);
    let iterations = solve_fixpoint(env, names);
    span.add("iterations", iterations as u64);
    let closed: Vec<ConstraintSet> = members
        .iter()
        .map(|n| canon_closed(env.get(n).expect("member solved")))
        .collect();
    memo.store(key, client, closed);
    SccOutcome {
        reused: false,
        shared: false,
        disk: false,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{AbsBody, AbsCall};

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    fn join_abs(name: &str, base: u32) -> ConstraintAbs {
        // pre⟨p1..p9⟩ = (p2 ≥ p8) ∧ pre⟨p4,p5,p6,p1,p2,p3,p7,p8,p9⟩, with
        // params starting at `base` so alpha-equivalent copies differ in ids.
        let params: Vec<RegVar> = (0..9).map(|i| r(base + i)).collect();
        let args: Vec<RegVar> = [3, 4, 5, 0, 1, 2, 6, 7, 8]
            .iter()
            .map(|&i| params[i])
            .collect();
        let mut body = AbsBody::from_atoms(ConstraintSet::singleton(Atom::outlives(
            params[1], params[7],
        )));
        body.calls.push(AbsCall {
            name: name.to_string(),
            args,
        });
        ConstraintAbs {
            name: name.to_string(),
            params,
            body,
        }
    }

    #[test]
    fn canonical_form_is_alpha_invariant() {
        let a = join_abs("pre.join", 1);
        let b = join_abs("pre.join", 100);
        assert_eq!(canon(&a), canon(&b));
        let c = join_abs("pre.other", 1);
        // Same shape, different name: canon (default tag) differs…
        assert_ne!(canon(&a), canon(&c));
        // …but a name-insensitive tag matches.
        let tagless = |_: &str| "self".to_string();
        assert_eq!(canon_with(&a, tagless), canon_with(&c, tagless));
    }

    #[test]
    fn memo_reuses_alpha_equivalent_sccs() {
        let memo = SolveMemo::new();
        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 1));
        let first = solve_scc_memo(&mut env, &["pre.join".to_string()], &memo);
        assert!(!first.reused);
        assert!(first.iterations > 0);
        let closed1 = env.get("pre.join").unwrap().body.atoms.to_string();
        assert_eq!(closed1, "r2>=r8 & r5>=r8");

        // A renamed copy of the same system must hit the memo and produce
        // the matching closed form over its own parameters.
        let mut env2 = AbsEnv::new();
        env2.insert(join_abs("pre.join", 41));
        let second = solve_scc_memo(&mut env2, &["pre.join".to_string()], &memo);
        assert!(second.reused);
        assert_eq!(second.iterations, 0);
        assert_eq!(
            env2.get("pre.join").unwrap().body.atoms.to_string(),
            "r42>=r48 & r45>=r48"
        );
        assert_eq!(memo.hits(), 1);
        assert_eq!(memo.misses(), 1);
    }

    #[test]
    fn key_tracks_external_callee_closed_forms() {
        // pre.m⟨a,b⟩ = inv.A⟨a,b⟩ with inv.A closed as b ≥ a: solving twice
        // hits; changing inv.A's closed form misses.
        let memo = SolveMemo::new();
        let mk_env = |inv_atoms: ConstraintSet| {
            let mut env = AbsEnv::new();
            env.insert(ConstraintAbs {
                name: "inv.A".into(),
                params: vec![r(1), r(2)],
                body: AbsBody::from_atoms(inv_atoms),
            });
            env.insert(ConstraintAbs {
                name: "pre.m".into(),
                params: vec![r(3), r(4)],
                body: AbsBody {
                    atoms: ConstraintSet::new(),
                    calls: vec![AbsCall {
                        name: "inv.A".into(),
                        args: vec![r(3), r(4)],
                    }],
                },
            });
            env
        };
        let weak = ConstraintSet::singleton(Atom::outlives(r(2), r(1)));
        let strong = ConstraintSet::singleton(Atom::eq(r(1), r(2)));

        let mut env = mk_env(weak.clone());
        solve_scc_memo(&mut env, &["pre.m".to_string()], &memo);
        let mut env = mk_env(weak);
        let hit = solve_scc_memo(&mut env, &["pre.m".to_string()], &memo);
        assert!(hit.reused);
        assert_eq!(env.get("pre.m").unwrap().body.atoms.to_string(), "r4>=r3");

        let mut env = mk_env(strong);
        let miss = solve_scc_memo(&mut env, &["pre.m".to_string()], &memo);
        assert!(!miss.reused, "changed import must invalidate");
        assert_eq!(env.get("pre.m").unwrap().body.atoms.to_string(), "r3=r4");
    }

    #[test]
    fn cross_client_hits_are_counted_as_shared() {
        let memo = SolveMemo::new();
        let (a, b) = (memo.register_client(), memo.register_client());
        assert_ne!(a, b);
        // Id 0 is reserved for anonymous `solve_scc_memo` callers; a
        // registered client must never alias it.
        assert_ne!(a, 0);
        assert_ne!(b, 0);

        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 1));
        let first = solve_scc_memo_as(&mut env, &["pre.join".to_string()], &memo, a);
        assert!(!first.reused && !first.shared);

        // Same client again: a hit, but not a shared one.
        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 1));
        let own = solve_scc_memo_as(&mut env, &["pre.join".to_string()], &memo, a);
        assert!(own.reused && !own.shared);
        assert_eq!(memo.shared_hits(), 0);

        // A different client compiling an α-equivalent system: shared hit.
        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 77));
        let other = solve_scc_memo_as(&mut env, &["pre.join".to_string()], &memo, b);
        assert!(other.reused && other.shared);
        assert_eq!(memo.shared_hits(), 1);
        assert_eq!(memo.hits(), 2);
        assert_eq!(
            env.get("pre.join").unwrap().body.atoms.to_string(),
            "r78>=r84 & r81>=r84"
        );
    }

    #[test]
    fn memo_is_safe_and_consistent_under_concurrent_solvers() {
        use std::sync::Arc;
        let memo = Arc::new(SolveMemo::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let memo = Arc::clone(&memo);
            handles.push(std::thread::spawn(move || {
                let client = memo.register_client();
                let base = 1 + t * 100;
                let mut env = AbsEnv::new();
                env.insert(join_abs("pre.join", base));
                solve_scc_memo_as(&mut env, &["pre.join".to_string()], &memo, client);
                env.get("pre.join").unwrap().body.atoms.to_string()
            }));
        }
        let results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must see the fixpoint expressed over its own params.
        for (t, got) in results.iter().enumerate() {
            let base = 1 + t as u32 * 100;
            let expect = format!(
                "r{}>=r{} & r{}>=r{}",
                base + 1,
                base + 7,
                base + 4,
                base + 7
            );
            assert_eq!(*got, expect);
        }
        // All eight solved the same canonical SCC: one entry, and every
        // memo access is accounted as either a hit or a miss.
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.hits() + memo.misses(), 8);
        assert!(memo.misses() >= 1);
        assert_eq!(memo.shared_hits(), memo.hits());
    }

    #[test]
    fn shard_flush_keeps_memo_bounded() {
        let memo = SolveMemo::new();
        let total = SolveMemo::MAX_ENTRIES + SolveMemo::MAX_ENTRIES / 4;
        for i in 0..total {
            memo.store(format!("key-{i}"), 0, Vec::new());
            assert!(memo.len() <= SolveMemo::MAX_ENTRIES);
        }
        // More keys than the budget were stored, so at least one shard
        // flushed — yet the memo kept serving within its bound.
        assert!(memo.len() < total);
        assert!(!memo.is_empty());
        assert_eq!(memo.misses() as usize, total);
    }

    #[test]
    fn exported_entries_preload_as_disk_hits_in_a_fresh_memo() {
        // Process 1: solve cold, export.
        let memo1 = SolveMemo::new();
        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 1));
        solve_scc_memo(&mut env, &["pre.join".to_string()], &memo1);
        let exported = memo1.export();
        assert_eq!(exported.len(), 1);

        // Process 2: preload, then solve an α-equivalent system. The hit
        // must come from the disk tier — counted as a disk hit, not a
        // shared hit — and produce the identical closed form.
        let memo2 = SolveMemo::new();
        let client = memo2.register_client();
        for (key, closed) in exported {
            assert!(memo2.preload(key, closed));
        }
        assert_eq!(memo2.len(), 1);
        let mut env2 = AbsEnv::new();
        env2.insert(join_abs("pre.join", 41));
        let out = solve_scc_memo_as(&mut env2, &["pre.join".to_string()], &memo2, client);
        assert!(out.reused && out.disk && !out.shared);
        assert_eq!(out.iterations, 0);
        assert_eq!(
            env2.get("pre.join").unwrap().body.atoms.to_string(),
            "r42>=r48 & r45>=r48"
        );
        assert_eq!(memo2.disk_hits(), 1);
        assert_eq!(memo2.shared_hits(), 0);
        assert_eq!(memo2.misses(), 0);
    }

    #[test]
    fn preload_never_overwrites_live_entries_or_busts_the_budget() {
        let memo = SolveMemo::with_capacity(SolveMemo::SHARDS);
        // A live (solved) entry wins over a later preload of the same key.
        let mut env = AbsEnv::new();
        env.insert(join_abs("pre.join", 1));
        solve_scc_memo(&mut env, &["pre.join".to_string()], &memo);
        let (key, closed) = memo.export().pop().unwrap();
        assert!(!memo.preload(key, closed.clone()));
        let mut env2 = AbsEnv::new();
        env2.insert(join_abs("pre.join", 1));
        let hit = solve_scc_memo(&mut env2, &["pre.join".to_string()], &memo);
        assert!(hit.reused && !hit.disk, "live owner tag must be preserved");

        // With each shard budgeted one entry, surplus preloads are
        // dropped instead of evicting anything.
        let mut installed = 0;
        for i in 0..64 {
            if memo.preload(format!("key-{i}"), closed.clone()) {
                installed += 1;
            }
        }
        assert!(installed < 64);
        assert!(memo.len() <= SolveMemo::SHARDS);
    }

    #[test]
    fn store_prefers_evicting_disk_entries_over_live_ones() {
        let memo = SolveMemo::with_capacity(SolveMemo::SHARDS * 2); // 2 per shard
                                                                    // Find two more keys living in the anchor's shard.
        let anchor = "k0".to_string();
        let mut same = Vec::new();
        for i in 1..10_000 {
            let k = format!("k{i}");
            if std::ptr::eq(memo.shard(&anchor), memo.shard(&k)) {
                same.push(k);
                if same.len() == 2 {
                    break;
                }
            }
        }
        let (live1, live2) = (same[0].clone(), same[1].clone());
        assert!(memo.preload(anchor.clone(), Vec::new()));
        memo.store(live1.clone(), 1, Vec::new()); // shard: 1 disk + 1 live
        memo.store(live2.clone(), 1, Vec::new()); // at budget: disk goes first
        assert!(
            memo.lookup(&live1, 1).is_some(),
            "live entry must survive the reclaim"
        );
        assert!(memo.lookup(&live2, 1).is_some());
        assert!(
            memo.lookup(&anchor, 1).is_none(),
            "the disk entry is reclaimed before any live one"
        );
    }

    #[test]
    fn preload_fills_shards_to_half_budget_leaving_live_headroom() {
        let memo = SolveMemo::with_capacity(SolveMemo::SHARDS * 4); // 4 per shard
        for i in 0..SolveMemo::SHARDS * 16 {
            memo.preload(format!("warm-{i}"), Vec::new());
        }
        assert!(
            memo.len() <= SolveMemo::SHARDS * 2,
            "warm entries must leave half of every shard free: {}",
            memo.len()
        );
    }

    #[test]
    fn export_is_deterministic_and_roundtrips() {
        let memo = SolveMemo::new();
        for base in [1u32, 100, 1] {
            let mut env = AbsEnv::new();
            env.insert(join_abs("pre.join", base));
            solve_scc_memo(&mut env, &["pre.join".to_string()], &memo);
        }
        let a = memo.export();
        let b = memo.export();
        assert_eq!(a.len(), 1, "α-equivalent systems share one entry");
        assert_eq!(
            a.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            b.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn closed_forms_roundtrip_through_canonical_ids() {
        let abs = ConstraintAbs {
            name: "inv.X".into(),
            params: vec![r(7), r(9), r(11)],
            body: AbsBody::from_atoms(
                [Atom::outlives(r(9), r(7)), Atom::eq(r(11), RegVar::HEAP)]
                    .into_iter()
                    .collect(),
            ),
        };
        let canonical = canon_closed(&abs);
        let back = uncanon_closed(&canonical, &abs.params);
        assert_eq!(back, abs.body.atoms);
    }
}
