//! Region substitutions.
//!
//! A [`RegSubst`] maps region variables to region variables. Substitutions
//! arise at every instantiation site: class invariants instantiated with a
//! `new`'s regions, method preconditions instantiated with call-site
//! regions, and the override-conflict-resolution rule of Sec 4.4 (which
//! also converts a substitution back into equality constraints via
//! [`RegSubst::to_equalities`], the paper's `ctr(·)`).

use crate::constraint::{Atom, ConstraintSet};
use crate::var::RegVar;
use std::collections::BTreeMap;
use std::fmt;

/// A finite map from region variables to region variables; variables not in
/// the domain are mapped to themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegSubst {
    map: BTreeMap<RegVar, RegVar>,
}

impl RegSubst {
    /// The identity substitution.
    pub fn new() -> RegSubst {
        RegSubst::default()
    }

    /// Builds a substitution from `(from, to)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the same `from` is bound twice to different targets.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (RegVar, RegVar)>) -> RegSubst {
        let mut s = RegSubst::new();
        for (from, to) in pairs {
            s.bind(from, to);
        }
        s
    }

    /// Builds the substitution `params[i] ↦ args[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or a parameter repeats
    /// with conflicting arguments.
    pub fn instantiation(params: &[RegVar], args: &[RegVar]) -> RegSubst {
        assert_eq!(
            params.len(),
            args.len(),
            "region arity mismatch: {} parameters vs {} arguments",
            params.len(),
            args.len()
        );
        RegSubst::from_pairs(params.iter().copied().zip(args.iter().copied()))
    }

    /// Adds a binding.
    ///
    /// # Panics
    ///
    /// Panics on conflicting rebinding of `from`.
    pub fn bind(&mut self, from: RegVar, to: RegVar) {
        if let Some(&old) = self.map.get(&from) {
            assert_eq!(old, to, "conflicting binding for {from}: {old} vs {to}");
            return;
        }
        self.map.insert(from, to);
    }

    /// Applies the substitution to one variable.
    pub fn apply(&self, v: RegVar) -> RegVar {
        self.map.get(&v).copied().unwrap_or(v)
    }

    /// Applies the substitution to a list of variables.
    pub fn apply_all(&self, vs: &[RegVar]) -> Vec<RegVar> {
        vs.iter().map(|&v| self.apply(v)).collect()
    }

    /// Whether the substitution is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().all(|(k, v)| k == v)
    }

    /// Number of explicit bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no explicit bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the explicit bindings.
    pub fn iter(&self) -> impl Iterator<Item = (RegVar, RegVar)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// The paper's `ctr(σ)`: the substitution as equality constraints
    /// `from = to` for every binding.
    pub fn to_equalities(&self) -> ConstraintSet {
        self.map
            .iter()
            .map(|(&from, &to)| Atom::eq(from, to))
            .collect()
    }
}

impl fmt::Display for RegSubst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}->{v}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    #[test]
    fn identity_outside_domain() {
        let s = RegSubst::from_pairs([(r(1), r(2))]);
        assert_eq!(s.apply(r(1)), r(2));
        assert_eq!(s.apply(r(3)), r(3));
    }

    #[test]
    fn instantiation_zips() {
        let s = RegSubst::instantiation(&[r(1), r(2)], &[r(10), r(20)]);
        assert_eq!(s.apply_all(&[r(1), r(2), r(3)]), vec![r(10), r(20), r(3)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn instantiation_checks_arity() {
        let _ = RegSubst::instantiation(&[r(1)], &[r(10), r(20)]);
    }

    #[test]
    #[should_panic(expected = "conflicting binding")]
    fn conflicting_binding_panics() {
        let mut s = RegSubst::new();
        s.bind(r(1), r(2));
        s.bind(r(1), r(3));
    }

    #[test]
    fn repeated_consistent_binding_ok() {
        let s = RegSubst::instantiation(&[r(1), r(1)], &[r(5), r(5)]);
        assert_eq!(s.apply(r(1)), r(5));
    }

    #[test]
    fn to_equalities_is_ctr() {
        let s = RegSubst::from_pairs([(r(4), r(2)), (r(3), r(1))]);
        let c = s.to_equalities();
        assert_eq!(c.to_string(), "r1=r3 & r2=r4");
    }

    #[test]
    fn display() {
        let s = RegSubst::from_pairs([(r(1), r(2))]);
        assert_eq!(s.to_string(), "[r1->r2]");
    }
}
