//! Region variables.
//!
//! A [`RegVar`] stands for a runtime region. The distinguished variable
//! [`RegVar::HEAP`] denotes the global heap region with unlimited lifetime:
//! the paper's axiom is `∀r. heap ≥ r` (the heap outlives every region).

use std::fmt;

/// A region variable.
///
/// Fresh variables are produced by a [`RegVarGen`]; equality is identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegVar(pub u32);

impl RegVar {
    /// The global heap region (`heap` in the paper).
    pub const HEAP: RegVar = RegVar(0);

    /// Whether this is the heap region.
    pub fn is_heap(self) -> bool {
        self == RegVar::HEAP
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_heap() {
            f.write_str("heap")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for RegVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A generator of fresh region variables.
///
/// # Examples
///
/// ```
/// use cj_regions::var::{RegVar, RegVarGen};
///
/// let mut gen = RegVarGen::new();
/// let a = gen.fresh();
/// let b = gen.fresh();
/// assert_ne!(a, b);
/// assert!(!a.is_heap());
/// ```
#[derive(Debug, Clone)]
pub struct RegVarGen {
    next: u32,
}

impl RegVarGen {
    /// A generator whose first variable is `r1` (`r0` is the heap).
    pub fn new() -> RegVarGen {
        RegVarGen { next: 1 }
    }

    /// Produces a fresh, never-before-seen region variable.
    pub fn fresh(&mut self) -> RegVar {
        let v = RegVar(self.next);
        self.next += 1;
        v
    }

    /// Produces `n` fresh variables.
    pub fn fresh_n(&mut self, n: usize) -> Vec<RegVar> {
        (0..n).map(|_| self.fresh()).collect()
    }

    /// Advances the counter as if `n` variables had been handed out,
    /// without materializing them. Used when previously minted ids are
    /// replayed from a cache: the generator must end up in the same state a
    /// fresh mint would have produced.
    pub fn skip(&mut self, n: u32) {
        self.next += n;
    }

    /// Number of variables handed out so far (excluding the heap).
    pub fn count(&self) -> u32 {
        self.next - 1
    }
}

impl Default for RegVarGen {
    fn default() -> Self {
        RegVarGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_is_zero_and_distinct() {
        let mut gen = RegVarGen::new();
        assert!(RegVar::HEAP.is_heap());
        for _ in 0..100 {
            assert!(!gen.fresh().is_heap());
        }
    }

    #[test]
    fn fresh_n_yields_distinct() {
        let mut gen = RegVarGen::new();
        let vs = gen.fresh_n(10);
        for i in 0..10 {
            for j in i + 1..10 {
                assert_ne!(vs[i], vs[j]);
            }
        }
        assert_eq!(gen.count(), 10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RegVar::HEAP.to_string(), "heap");
        assert_eq!(RegVar(3).to_string(), "r3");
    }
}
