//! Region lifetime constraints.
//!
//! The paper's constraint language `rc` has two forms the inference ever
//! produces: the outlives constraint `r₁ ≥ r₂` (the lifetime of `r₁` is not
//! shorter than that of `r₂`) and the equality `r₁ = r₂`. A
//! [`ConstraintSet`] is a conjunction of such [`Atom`]s.

use crate::subst::RegSubst;
use crate::var::RegVar;
use std::collections::BTreeSet;
use std::fmt;

/// An atomic region constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Atom {
    /// `a ≥ b`: region `a` lives at least as long as region `b`.
    Outlives(RegVar, RegVar),
    /// `a = b`: the two variables denote the same region. Stored with the
    /// smaller variable first.
    Eq(RegVar, RegVar),
}

impl Atom {
    /// An equality atom in canonical orientation.
    pub fn eq(a: RegVar, b: RegVar) -> Atom {
        if a <= b {
            Atom::Eq(a, b)
        } else {
            Atom::Eq(b, a)
        }
    }

    /// An outlives atom `a ≥ b`.
    pub fn outlives(a: RegVar, b: RegVar) -> Atom {
        Atom::Outlives(a, b)
    }

    /// Whether the atom is trivially true: `a ≥ a`, `a = a`, or
    /// `heap ≥ b` (the heap outlives everything).
    pub fn is_trivial(self) -> bool {
        match self {
            Atom::Outlives(a, b) => a == b || a.is_heap(),
            Atom::Eq(a, b) => a == b,
        }
    }

    /// The variables mentioned.
    pub fn vars(self) -> [RegVar; 2] {
        match self {
            Atom::Outlives(a, b) | Atom::Eq(a, b) => [a, b],
        }
    }

    /// Applies a substitution.
    pub fn subst(self, s: &RegSubst) -> Atom {
        match self {
            Atom::Outlives(a, b) => Atom::Outlives(s.apply(a), s.apply(b)),
            Atom::Eq(a, b) => Atom::eq(s.apply(a), s.apply(b)),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Outlives(a, b) => write!(f, "{a}>={b}"),
            Atom::Eq(a, b) => write!(f, "{a}={b}"),
        }
    }
}

/// A conjunction of atomic constraints.
///
/// The set is deduplicated and ordered, so its `Display` form is
/// deterministic. Trivial atoms are dropped on insertion.
///
/// # Examples
///
/// ```
/// use cj_regions::constraint::{Atom, ConstraintSet};
/// use cj_regions::var::RegVar;
///
/// let (a, b) = (RegVar(1), RegVar(2));
/// let mut c = ConstraintSet::new();
/// c.add(Atom::outlives(a, b));
/// c.add(Atom::outlives(a, a)); // trivial, dropped
/// assert_eq!(c.len(), 1);
/// assert_eq!(c.to_string(), "r1>=r2");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    atoms: BTreeSet<Atom>,
}

impl ConstraintSet {
    /// The empty (true) constraint.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// A set with a single atom.
    pub fn singleton(atom: Atom) -> ConstraintSet {
        let mut s = ConstraintSet::new();
        s.add(atom);
        s
    }

    /// Adds one atom (unless trivial).
    pub fn add(&mut self, atom: Atom) {
        if !atom.is_trivial() {
            self.atoms.insert(atom);
        }
    }

    /// Adds `a ≥ b`.
    pub fn add_outlives(&mut self, a: RegVar, b: RegVar) {
        self.add(Atom::outlives(a, b));
    }

    /// Adds `a = b`.
    pub fn add_eq(&mut self, a: RegVar, b: RegVar) {
        self.add(Atom::eq(a, b));
    }

    /// Conjoins another constraint set.
    pub fn and(&mut self, other: &ConstraintSet) {
        for &a in &other.atoms {
            self.add(a);
        }
    }

    /// The conjunction of `self` and `other` as a new set.
    pub fn conj(&self, other: &ConstraintSet) -> ConstraintSet {
        let mut out = self.clone();
        out.and(other);
        out
    }

    /// Whether the constraint is the trivial `true`.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Iterates over the atoms in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Atom> + '_ {
        self.atoms.iter().copied()
    }

    /// Whether `atom` appears syntactically (use
    /// [`Solver::entails_atom`](crate::solve::Solver::entails_atom) for the
    /// semantic question).
    pub fn contains(&self, atom: Atom) -> bool {
        atom.is_trivial() || self.atoms.contains(&atom)
    }

    /// All region variables mentioned.
    pub fn vars(&self) -> BTreeSet<RegVar> {
        self.atoms.iter().flat_map(|a| a.vars()).collect()
    }

    /// Applies a substitution, returning the rewritten set.
    pub fn subst(&self, s: &RegSubst) -> ConstraintSet {
        let mut out = ConstraintSet::new();
        for &a in &self.atoms {
            out.add(a.subst(s));
        }
        out
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl FromIterator<Atom> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        let mut s = ConstraintSet::new();
        for a in iter {
            s.add(a);
        }
        s
    }
}

impl Extend<Atom> for ConstraintSet {
    fn extend<T: IntoIterator<Item = Atom>>(&mut self, iter: T) {
        for a in iter {
            self.add(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    #[test]
    fn trivial_atoms_dropped() {
        let mut c = ConstraintSet::new();
        c.add_outlives(r(1), r(1));
        c.add_eq(r(2), r(2));
        c.add_outlives(RegVar::HEAP, r(3)); // heap >= r3 is axiomatic
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "true");
    }

    #[test]
    fn eq_canonical_orientation() {
        assert_eq!(Atom::eq(r(5), r(2)), Atom::eq(r(2), r(5)));
        let mut c = ConstraintSet::new();
        c.add_eq(r(5), r(2));
        c.add_eq(r(2), r(5));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn outlives_is_directed() {
        let mut c = ConstraintSet::new();
        c.add_outlives(r(1), r(2));
        c.add_outlives(r(2), r(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn display_deterministic() {
        let mut c = ConstraintSet::new();
        c.add_outlives(r(3), r(1));
        c.add_eq(r(2), r(1));
        c.add_outlives(r(2), r(1));
        assert_eq!(c.to_string(), "r2>=r1 & r3>=r1 & r1=r2");
    }

    #[test]
    fn subst_rewrites_and_renormalizes() {
        let mut c = ConstraintSet::new();
        c.add_outlives(r(1), r(2));
        let s = RegSubst::from_pairs([(r(1), r(2))]);
        assert!(c.subst(&s).is_empty()); // r2 >= r2 is trivial
    }

    #[test]
    fn vars_collects_all() {
        let mut c = ConstraintSet::new();
        c.add_outlives(r(1), r(2));
        c.add_eq(r(3), r(4));
        let vs = c.vars();
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn conj_unions() {
        let a = ConstraintSet::singleton(Atom::outlives(r(1), r(2)));
        let b = ConstraintSet::singleton(Atom::outlives(r(2), r(3)));
        let c = a.conj(&b);
        assert_eq!(c.len(), 2);
    }
}
