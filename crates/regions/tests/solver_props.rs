//! In-crate property tests for the constraint solver: semantic soundness
//! against a brute-force model.
//!
//! The model: a constraint set is satisfied by an assignment of variables
//! to totally ordered "lifetimes" (here: integers, larger = lives longer,
//! with heap = +inf). `C ⊨ a` should hold iff every model of C satisfies
//! a. Since entailment over outlives/equality constraints is decided by
//! graph reachability, we can cross-check the solver against a randomized
//! model search: if the solver claims entailment, no counter-model may
//! exist among a batch of random assignments that satisfy C.

use cj_regions::{Atom, ConstraintSet, RegVar, Solver};
use proptest::prelude::*;

const NVARS: u32 = 6;

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0..NVARS, 0..NVARS, any::<bool>()).prop_map(|(a, b, eq)| {
        if eq {
            Atom::eq(RegVar(a + 1), RegVar(b + 1)) // avoid heap for the model
        } else {
            Atom::outlives(RegVar(a + 1), RegVar(b + 1))
        }
    })
}

fn satisfies(assign: &[i32], atom: Atom) -> bool {
    let life = |v: RegVar| assign[(v.0 - 1) as usize];
    match atom {
        Atom::Outlives(a, b) => life(a) >= life(b),
        Atom::Eq(a, b) => life(a) == life(b),
    }
}

proptest! {
    /// If the solver claims `C ⊨ atom`, then every random assignment that
    /// satisfies C also satisfies atom (soundness of entailment).
    #[test]
    fn entailment_is_sound_wrt_lifetime_models(
        atoms in proptest::collection::vec(arb_atom(), 0..10),
        candidates in proptest::collection::vec(
            proptest::collection::vec(0i32..5, NVARS as usize), 0..40),
        probe in arb_atom(),
    ) {
        let set: ConstraintSet = atoms.iter().copied().collect();
        let mut solver = Solver::from_set(&set);
        if solver.entails_atom(probe) {
            for assign in &candidates {
                let model = set.iter().all(|a| satisfies(assign, a));
                if model {
                    prop_assert!(
                        satisfies(assign, probe),
                        "solver claims {probe} from {set}, \
                         but assignment {assign:?} is a counter-model"
                    );
                }
            }
        }
    }

    /// Conjunction is monotone: adding atoms never loses entailments.
    #[test]
    fn entailment_is_monotone(
        base in proptest::collection::vec(arb_atom(), 0..8),
        extra in proptest::collection::vec(arb_atom(), 0..4),
        probe in arb_atom(),
    ) {
        let small: ConstraintSet = base.iter().copied().collect();
        let mut big = small.clone();
        big.extend(extra.iter().copied());
        let mut s1 = Solver::from_set(&small);
        let mut s2 = Solver::from_set(&big);
        if s1.entails_atom(probe) {
            prop_assert!(s2.entails_atom(probe));
        }
    }

    /// Substitution commutes with conjunction.
    #[test]
    fn subst_distributes_over_conj(
        a in proptest::collection::vec(arb_atom(), 0..6),
        b in proptest::collection::vec(arb_atom(), 0..6),
        from in 1..=NVARS,
        to in 1..=NVARS,
    ) {
        let sa: ConstraintSet = a.iter().copied().collect();
        let sb: ConstraintSet = b.iter().copied().collect();
        let sub = cj_regions::RegSubst::from_pairs([(RegVar(from), RegVar(to))]);
        let lhs = sa.conj(&sb).subst(&sub);
        let rhs = sa.subst(&sub).conj(&sb.subst(&sub));
        prop_assert_eq!(lhs, rhs);
    }

    /// A solved fixpoint is itself a fixpoint: re-solving closed
    /// abstractions changes nothing.
    #[test]
    fn fixpoint_is_idempotent(atoms in proptest::collection::vec(arb_atom(), 0..8)) {
        use cj_regions::{AbsBody, AbsEnv, ConstraintAbs};
        let params: Vec<RegVar> = (1..=NVARS).map(RegVar).collect();
        let set: ConstraintSet = atoms.iter().copied().collect();
        let mut env = AbsEnv::new();
        env.insert(ConstraintAbs {
            name: "p".into(),
            params: params.clone(),
            body: AbsBody::from_atoms(set),
        });
        cj_regions::abstraction::solve_fixpoint(&mut env, &["p".to_string()]);
        let once = env.get("p").unwrap().body.atoms.clone();
        cj_regions::abstraction::solve_fixpoint(&mut env, &["p".to_string()]);
        let twice = env.get("p").unwrap().body.atoms.clone();
        prop_assert_eq!(once, twice);
    }
}
