//! Property tests for [`SolveMemo`]'s bounded per-shard flush: under a
//! tiny capacity that forces constant evictions, owner-tagged accounting
//! must stay exact (every solve is exactly one hit or one miss, shared
//! hits only on other clients' entries), an entry freshly stored in a
//! solve round must never be flushed by its own insertion (the immediate
//! re-solve always hits), and whatever the eviction pattern, every reused
//! closed form must equal the ground-truth fixpoint.

use cj_regions::abstraction::{AbsBody, AbsEnv, ConstraintAbs};
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::incremental::{solve_scc_memo_as, SolveMemo};
use cj_regions::var::RegVar;
use proptest::prelude::*;

/// Builds the single-abstraction system of one `variant`, over parameters
/// starting at `base` (so α-equivalent copies differ in raw ids). The
/// atom pattern is a function of the variant bits only, so two ops with
/// the same variant are α-equivalent no matter their bases.
fn variant_env(variant: u8, base: u32) -> AbsEnv {
    let k = 2 + (variant % 4) as usize;
    let params: Vec<RegVar> = (0..k as u32).map(|i| RegVar(base + i)).collect();
    let mut atoms = ConstraintSet::new();
    for bit in 0..6 {
        if variant >> bit & 1 == 1 {
            let a = params[bit % k];
            let b = params[(bit + 1 + bit / k) % k];
            if bit % 2 == 0 {
                atoms.add(Atom::outlives(a, b));
            } else {
                atoms.add(Atom::eq(a, b));
            }
        }
    }
    let mut env = AbsEnv::new();
    env.insert(ConstraintAbs {
        name: "q".to_string(),
        params,
        body: AbsBody::from_atoms(atoms),
    });
    env
}

/// The ground-truth closed form of a variant, canonicalized over a fixed
/// base so solves at any base compare equal after rebasing to it.
fn ground_truth(variant: u8) -> String {
    let mut env = variant_env(variant, 1);
    cj_regions::abstraction::solve_fixpoint(&mut env, &["q".to_string()]);
    env.get("q").unwrap().body.atoms.to_string()
}

proptest! {
    #[test]
    fn bounded_flush_preserves_accounting_and_round_local_entries(
        ops in proptest::collection::vec((any::<u8>(), 0u8..3), 1..60)
    ) {
        // One entry per shard: nearly every second distinct key evicts.
        let memo = SolveMemo::with_capacity(SolveMemo::SHARDS);
        let clients: Vec<u64> = (0..3).map(|_| memo.register_client()).collect();
        let mut solves = 0u64;
        let mut distinct = std::collections::HashSet::new();
        for (i, &(variant, who)) in ops.iter().enumerate() {
            let base = 1 + i as u32 * 100;
            let client = clients[who as usize];
            distinct.insert((ground_truth(variant), 2 + (variant % 4)));

            // The solve under test (hit or miss, we don't care which —
            // eviction makes it nondeterministic across shard layouts).
            let mut env = variant_env(variant, base);
            let out = solve_scc_memo_as(&mut env, &["q".to_string()], &memo, client);
            solves += 1;
            prop_assert!(!out.disk, "nothing was preloaded");
            // Whatever the memo did, the closed form must be the ground
            // truth rebased onto this op's parameters.
            let mut want = variant_env(variant, base);
            cj_regions::abstraction::solve_fixpoint(&mut want, &["q".to_string()]);
            prop_assert_eq!(
                env.get("q").unwrap().body.atoms.to_string(),
                want.get("q").unwrap().body.atoms.to_string(),
                "variant {} at op {}", variant, i
            );

            // Round-local reuse: the entry this op stored (or hit) is in
            // the memo *now*, so an immediate same-client re-solve must
            // hit it — owned by this client if this op solved it, else by
            // whoever the first solve already hit (the owner tag never
            // churns on hits, so both lookups must agree on `shared`)…
            let mut env = variant_env(variant, base + 31);
            let own = solve_scc_memo_as(&mut env, &["q".to_string()], &memo, client);
            solves += 1;
            prop_assert!(own.reused, "own entry dropped within the round");
            prop_assert_eq!(own.shared, out.reused && out.shared);
            prop_assert_eq!(own.iterations, 0);

            // …and a different client hitting the same entry is a shared
            // hit exactly when this op's solver didn't own the entry less
            // precisely: the owner is whoever stored it, so the only
            // guarantee is hit + correct rebase; `shared` must agree with
            // the owner comparison, which we can observe through counters.
            let other = clients[(who as usize + 1) % clients.len()];
            let shared_before = memo.shared_hits();
            let mut env = variant_env(variant, base + 57);
            let cross = solve_scc_memo_as(&mut env, &["q".to_string()], &memo, other);
            solves += 1;
            prop_assert!(cross.reused, "entry dropped between adjacent lookups");
            prop_assert_eq!(
                memo.shared_hits() - shared_before,
                u64::from(cross.shared),
                "shared flag and shared counter must move together"
            );
            prop_assert_eq!(
                env.get("q").unwrap().body.atoms.to_string(),
                ground_truth_at(variant, base + 57)
            );
        }
        // Exact accounting: every solve is one hit or one miss, never
        // both, never neither — no matter how many shards flushed.
        prop_assert_eq!(memo.hits() + memo.misses(), solves);
        prop_assert!(memo.shared_hits() <= memo.hits());
        prop_assert_eq!(memo.disk_hits(), 0);
        // The budget holds at all times (spot-checked at the end; `store`
        // flushes before inserting, so it can never overshoot).
        prop_assert!(memo.len() <= SolveMemo::SHARDS);
        // Every *first* solve of a distinct canonical form is necessarily
        // a miss, so misses cover the distinct systems seen.
        prop_assert!(memo.misses() >= distinct.len() as u64);
    }
}

/// [`ground_truth`] expressed over parameters starting at `base`.
fn ground_truth_at(variant: u8, base: u32) -> String {
    let mut env = variant_env(variant, base);
    cj_regions::abstraction::solve_fixpoint(&mut env, &["q".to_string()]);
    env.get("q").unwrap().body.atoms.to_string()
}

/// Deterministic companion: drive well past the budget and observe that
/// eviction actually happened (more misses than distinct systems would
/// need) while the memo stayed within its bound.
#[test]
fn tiny_capacity_evicts_and_stays_bounded() {
    let memo = SolveMemo::with_capacity(SolveMemo::SHARDS);
    let client = memo.register_client();
    for round in 0..4u32 {
        for variant in 0..64u8 {
            let mut env = variant_env(variant, 1 + round * 6400 + variant as u32 * 100);
            solve_scc_memo_as(&mut env, &["q".to_string()], &memo, client);
            assert!(memo.len() <= SolveMemo::SHARDS);
        }
    }
    let distinct: std::collections::HashSet<String> = (0..64u8)
        .map(|v| format!("{}|{}", 2 + v % 4, ground_truth(v)))
        .collect();
    assert!(
        memo.misses() > distinct.len() as u64,
        "4 rounds over a {}-entry memo must have re-solved evicted systems \
         (misses {}, distinct {})",
        SolveMemo::SHARDS,
        memo.misses(),
        distinct.len()
    );
    assert_eq!(memo.hits() + memo.misses(), 4 * 64);
}
