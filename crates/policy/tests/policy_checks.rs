//! End-to-end policy-engine tests: for every rule kind, one program that
//! violates it and one that satisfies it, checked against real inference
//! output; plus rule-resolution errors and the verdict memo.

use cj_diag::codes;
use cj_infer::{infer_source, InferOptions, RProgram};
use cj_policy::{PolicyEngine, PolicySet};

fn infer(src: &str) -> RProgram {
    let (p, _) = infer_source(src, InferOptions::default()).unwrap();
    cj_check::check(&p).expect("baseline must check");
    p
}

fn check(src: &str, rules: &str) -> Vec<(String, String)> {
    let program = infer(src);
    let set = PolicySet::parse("<test>", rules).expect("rules must parse");
    let mut engine = PolicyEngine::new();
    let report = engine.check(&program, &set);
    report
        .violations
        .into_iter()
        .map(|v| (v.code.to_string(), v.message))
        .collect()
}

#[test]
fn no_escape_flags_allocation_reaching_open_world() {
    // `leak` is never called inside the program, so its region parameters
    // face the open world: the allocation it returns escapes.
    let found = check(
        "class Cell { Object v; }
         class M {
           static Cell leak() { new Cell(null) }
           static void main() { }
         }",
        "no-escape Cell",
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, codes::POLICY_NO_ESCAPE);
    assert!(found[0].1.contains("`Cell`"), "{}", found[0].1);
}

#[test]
fn no_escape_accepts_letreg_confined_allocation() {
    // `make`'s result region is instantiated by `main` with a region that
    // dies inside `main` — the closed call graph proves confinement.
    let found = check(
        "class Cell { Object v; }
         class M {
           static Cell make() { new Cell(null) }
           static void main() { Cell c = make(); c.v = null; }
         }",
        "no-escape Cell",
    );
    assert_eq!(found, Vec::new());
}

#[test]
fn confine_flags_allocation_outside_owner_regions() {
    let found = check(
        "class Cell { Object v; }
         class Box { Cell c; }
         class M {
           static void main() { Cell x = new Cell(null); x.v = null; }
         }",
        "confine Cell to Box",
    );
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, codes::POLICY_CONFINE);
    assert!(found[0].1.contains("`Box`"), "{}", found[0].1);
}

#[test]
fn confine_accepts_allocation_into_owner_field_region() {
    // The fresh Cell is stored into a Box field, so its region is one of
    // the Box occurrence's regions (directly or via an entailed equality).
    let found = check(
        "class Cell { Object v; }
         class Box {
           Cell c;
           void fill() { this.c = new Cell(null); }
         }
         class M {
           static void main() { Box b = new Box(null); b.fill(); }
         }",
        "confine Cell to Box",
    );
    assert_eq!(found, Vec::new());
}

#[test]
fn separate_flags_tainted_argument_at_sink() {
    let found = check(
        "class Secret { Object v; }
         class M {
           static void log(Object o) { }
           static void main() {
             Secret s = new Secret(null);
             log(s);
           }
         }",
        "separate Secret from log",
    );
    assert!(!found.is_empty(), "{found:?}");
    assert!(found.iter().all(|f| f.0 == codes::POLICY_SEPARATE));
    assert!(found[0].1.contains("`Secret`"), "{}", found[0].1);
}

#[test]
fn separate_accepts_untainted_argument_at_sink() {
    // Inference coalesces a method's local allocations into one region, so
    // true separation means the sink is fed from a region no `Secret`
    // occurrence can reach — here, a helper with no `Secret` in scope.
    let found = check(
        "class Secret { Object v; }
         class M {
           static void log(Object o) { }
           static void audit() { Object o = new Object(); log(o); }
           static void main() {
             Secret s = new Secret(null);
             s.v = null;
             audit();
           }
         }",
        "separate Secret from log",
    );
    assert_eq!(found, Vec::new());
}

#[test]
fn separate_matches_instance_method_sinks() {
    let found = check(
        "class Secret { Object v; }
         class Sink {
           void consume(Object o) { }
         }
         class M {
           static void main() {
             Sink k = new Sink();
             Secret s = new Secret(null);
             k.consume(s);
           }
         }",
        "separate Secret from Sink.consume",
    );
    assert!(!found.is_empty(), "{found:?}");
    assert!(found.iter().all(|f| f.0 == codes::POLICY_SEPARATE));
}

#[test]
fn unresolvable_rules_become_policy_errors() {
    let program = infer("class M { static void main() { } }");
    let set = PolicySet::parse(
        "<test>",
        "no-escape Ghost\nseparate M from nolog\nconfine M to M",
    )
    .unwrap();
    let report = PolicyEngine::new().check(&program, &set);
    let errors: Vec<_> = report.violations.iter().filter(|v| v.in_policy).collect();
    assert_eq!(errors.len(), 2, "{:?}", report.violations);
    assert!(errors.iter().all(|v| v.code == codes::POLICY));
    assert!(errors[0].message.contains("unknown class `Ghost`"));
    assert!(errors[1]
        .message
        .contains("unknown static sink method `nolog`"));
}

#[test]
fn verdicts_are_memoized_across_checks() {
    let program = infer(
        "class Cell { Object v; }
         class M {
           static Cell leak() { new Cell(null) }
           static void main() { Cell c = new Cell(null); c.v = null; }
         }",
    );
    let set = PolicySet::parse("<test>", "no-escape Cell").unwrap();
    let mut engine = PolicyEngine::new();
    let first = engine.check(&program, &set);
    assert!(first.methods_checked > 0);
    assert!(first.rules_checked > 0);
    let second = engine.check(&program, &set);
    assert_eq!(second.methods_checked, 0);
    assert_eq!(second.rules_checked, 0);
    assert_eq!(second.new_violations, 0);
    assert_eq!(second.methods_reused, first.methods_checked);
    let strip = |r: &cj_policy::PolicyReport| {
        r.violations
            .iter()
            .map(|v| (v.rule, v.code, v.message.clone(), v.span))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&first), strip(&second));
}

#[test]
fn memo_distinguishes_rule_sets() {
    let program = infer(
        "class Cell { Object v; }
         class M { static Cell leak() { new Cell(null) } static void main() { } }",
    );
    let mut engine = PolicyEngine::new();
    let loose = PolicySet::parse("<test>", "no-escape M").unwrap();
    let strict = PolicySet::parse("<test>", "no-escape Cell").unwrap();
    let first = engine.check(&program, &loose);
    let second = engine.check(&program, &strict);
    assert!(second.methods_checked > 0, "new rule set must re-evaluate");
    assert_ne!(
        first.violations.len(),
        second.violations.len(),
        "{:?} vs {:?}",
        first.violations,
        second.violations
    );
}
