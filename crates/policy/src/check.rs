//! The policy checker: rule resolution, the interprocedural escape
//! fixpoint, per-method evaluation, and the α-invariant verdict memo.
//!
//! The engine consumes a fully inferred [`RProgram`] and a [`PolicySet`]
//! and produces located [`Violation`]s. Verdicts are memoized per method
//! under a fingerprint of everything they depend on — the rule set, the
//! method's canonicalized annotations (region ids α-renamed, spans
//! excluded), the signatures of its callees (closed imports), its escape
//! context, and the subclass relations between every class it mentions and
//! every class the rules name — so a host re-checking after an incremental
//! edit re-evaluates only the methods the edit actually affected.

use crate::{PolicySet, Rule, RuleKind};
use cj_diag::{codes, Span};
use cj_frontend::intern::Symbol;
use cj_frontend::types::{ClassId, MethodId};
use cj_infer::rast::{walk_rexpr, RExpr, RExprKind, RMethod, RProgram, RType};
use cj_regions::constraint::Atom;
use cj_regions::solve::Solver;
use cj_regions::var::RegVar;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// One policy finding, located in the program (or, for rule-resolution
/// errors, in the policy source).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the rule in the [`PolicySet`].
    pub rule: usize,
    /// Diagnostic code (one of the `codes::POLICY*` family).
    pub code: &'static str,
    /// Primary message.
    pub message: String,
    /// Primary span: the offending allocation or call, or the rule itself
    /// for resolution errors.
    pub span: Span,
    /// Whether `span` points into the policy source rather than the
    /// program (true exactly for rule-resolution errors).
    pub in_policy: bool,
    /// Supporting notes.
    pub notes: Vec<String>,
}

/// The outcome of one [`PolicyEngine::check`] call.
#[derive(Debug, Clone, Default)]
pub struct PolicyReport {
    /// Every finding, in deterministic order: rule-resolution errors first
    /// (rule order), then per-method findings (program method order).
    pub violations: Vec<Violation>,
    /// Rule × method evaluations actually executed (memo misses only).
    pub rules_checked: u32,
    /// Violations discovered by executed evaluations (memo replays are
    /// not re-counted).
    pub new_violations: u32,
    /// Methods whose verdicts were computed this call.
    pub methods_checked: u32,
    /// Methods whose verdicts were replayed from the memo.
    pub methods_reused: u32,
}

/// A memoized per-method finding: the site is a pre-order ordinal into the
/// method body, resolved against the *current* body on replay (bodies with
/// equal fingerprints are α-identical, so ordinals line up while spans may
/// have moved with an edit elsewhere in the file).
#[derive(Debug, Clone)]
struct Stored {
    rule: u32,
    site: u32,
    code: &'static str,
    message: String,
    notes: Vec<String>,
}

/// A rule with its class names resolved against one program.
struct Resolved {
    idx: usize,
    target: Target,
}

enum Target {
    NoEscape {
        class: ClassId,
    },
    Confine {
        class: ClassId,
        owner: ClassId,
    },
    Separate {
        source: ClassId,
        sink_class: Option<ClassId>,
        sink_method: Symbol,
    },
}

/// The region-effect policy checker with its per-method verdict memo.
///
/// The memo survives across [`check`](PolicyEngine::check) calls (and so
/// across host revisions); it is keyed by content, never invalidated.
#[derive(Debug, Default)]
pub struct PolicyEngine {
    cache: HashMap<u64, Arc<Vec<Stored>>>,
}

impl PolicyEngine {
    /// A fresh engine with an empty memo.
    pub fn new() -> PolicyEngine {
        PolicyEngine::default()
    }

    /// Checks every rule of `set` against `program`.
    pub fn check(&mut self, program: &RProgram, set: &PolicySet) -> PolicyReport {
        let mut span = cj_trace::span("pipeline", "policy-check");
        span.add("rules", set.rules.len() as u64);
        let mut report = PolicyReport::default();
        let mut resolved = Vec::new();
        for (idx, rule) in set.rules.iter().enumerate() {
            match resolve_rule(program, idx, rule) {
                Ok(r) => resolved.push(r),
                Err(v) => report.violations.push(v),
            }
        }
        if resolved.is_empty() {
            return report;
        }

        let cx = ProgramCx::build(program, &resolved);
        for (mi, (id, m)) in cx.methods.iter().enumerate() {
            let nodes = preorder(&m.body);
            let key = method_key(&cx, set.fingerprint, mi, *id, m, &nodes);
            let stored = match self.cache.get(&key) {
                Some(stored) => {
                    report.methods_reused += 1;
                    Arc::clone(stored)
                }
                None => {
                    let found = evaluate(&cx, mi, *id, m, &nodes, &resolved);
                    report.rules_checked += resolved.len() as u32;
                    report.new_violations += found.len() as u32;
                    report.methods_checked += 1;
                    let found = Arc::new(found);
                    self.cache.insert(key, Arc::clone(&found));
                    found
                }
            };
            for s in stored.iter() {
                report.violations.push(Violation {
                    rule: s.rule as usize,
                    code: s.code,
                    message: s.message.clone(),
                    span: nodes[s.site as usize].span,
                    in_policy: false,
                    notes: s.notes.clone(),
                });
            }
        }
        span.add("violations", report.violations.len() as u64);
        report
    }
}

/// Resolves one rule's names, or reports why it cannot apply.
fn resolve_rule(program: &RProgram, idx: usize, rule: &Rule) -> Result<Resolved, Violation> {
    let table = &program.kernel.table;
    let err = |message: String| Violation {
        rule: idx,
        code: codes::POLICY,
        message,
        span: rule.span,
        in_policy: true,
        notes: Vec::new(),
    };
    let class_of = |name: &str| {
        table
            .class_id(name)
            .ok_or_else(|| err(format!("rule references unknown class `{name}`")))
    };
    let target = match rule.kind {
        RuleKind::NoEscape => Target::NoEscape {
            class: class_of(&rule.class)?,
        },
        RuleKind::Confine => Target::Confine {
            class: class_of(&rule.class)?,
            owner: class_of(rule.owner.as_deref().unwrap_or_default())?,
        },
        RuleKind::Separate => {
            let source = class_of(&rule.class)?;
            let method = Symbol::intern(rule.sink_method.as_deref().unwrap_or_default());
            let sink_class = match rule.sink_class.as_deref() {
                Some(name) => {
                    let c = class_of(name)?;
                    if table.lookup_method(c, method).is_none() {
                        return Err(err(format!(
                            "rule references unknown sink method `{name}.{method}`"
                        )));
                    }
                    Some(c)
                }
                None => {
                    if table.lookup_static(method).is_none() {
                        return Err(err(format!(
                            "rule references unknown static sink method `{method}`"
                        )));
                    }
                    None
                }
            };
            Target::Separate {
                source,
                sink_class,
                sink_method: method,
            }
        }
    };
    Ok(Resolved { idx, target })
}

/// Per-program context shared by hashing and evaluation: the method list in
/// canonical order, the letreg-local region sets, the escape fixpoint, the
/// per-class/per-method signature hashes, and the classes the rules name.
struct ProgramCx<'p> {
    program: &'p RProgram,
    methods: Vec<(MethodId, &'p RMethod)>,
    /// Regions bound by a `letreg` in each method's body.
    locals: Vec<BTreeSet<RegVar>>,
    /// `escapes[mi][k]`: abstraction parameter `k` of method `mi` may be
    /// bound (transitively, through the closed call graph) to `heap` or to
    /// an open-world region — a value allocated into it outlives every
    /// `letreg` extent.
    escapes: Vec<Vec<bool>>,
    class_sig: Vec<u64>,
    method_sig: Vec<u64>,
    /// Every class the resolved rules name, in rule order (subclass
    /// relations against these are part of each method's verdict key).
    rule_classes: Vec<ClassId>,
}

impl<'p> ProgramCx<'p> {
    fn build(program: &'p RProgram, resolved: &[Resolved]) -> ProgramCx<'p> {
        let methods: Vec<(MethodId, &RMethod)> = program.all_rmethods().collect();
        let index: HashMap<MethodId, usize> = methods
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
        let locals: Vec<BTreeSet<RegVar>> = methods
            .iter()
            .map(|(_, m)| {
                let mut set = BTreeSet::new();
                walk_rexpr(&m.body, &mut |e| {
                    if let RExprKind::Letreg(r, _) = &e.kind {
                        set.insert(*r);
                    }
                });
                set
            })
            .collect();

        // Call edges: each edge maps every callee abstraction parameter to
        // the caller-side region that instantiates it (`None` = unknown,
        // e.g. an override's extra class parameters).
        let mut in_edges: Vec<Vec<(usize, Vec<Option<RegVar>>)>> = vec![Vec::new(); methods.len()];
        for (ci, (_, m)) in methods.iter().enumerate() {
            walk_rexpr(&m.body, &mut |e| {
                let (target, inst) = match &e.kind {
                    RExprKind::CallVirtual { method, inst, .. }
                    | RExprKind::CallStatic { method, inst, .. } => (*method, inst),
                    _ => return,
                };
                for (callee, mapping) in call_targets(program, &index, &methods, target, inst) {
                    in_edges[callee].push((ci, mapping));
                }
            });
        }

        // The escape fixpoint. Roots (methods no program call reaches) face
        // the open world: their parameters escape by definition.
        let mut escapes: Vec<Vec<bool>> = methods
            .iter()
            .enumerate()
            .map(|(i, (_, m))| vec![in_edges[i].is_empty(); m.abs_params.len()])
            .collect();
        loop {
            let mut changed = false;
            for callee in 0..methods.len() {
                for (caller, mapping) in &in_edges[callee] {
                    for k in 0..escapes[callee].len() {
                        if escapes[callee][k] {
                            continue;
                        }
                        let esc = match mapping.get(k).copied().flatten() {
                            None => true,
                            Some(r) => {
                                if r.is_heap() {
                                    true
                                } else if locals[*caller].contains(&r) {
                                    false
                                } else {
                                    match methods[*caller].1.abs_params.iter().position(|&p| p == r)
                                    {
                                        Some(j) => escapes[*caller][j],
                                        None => true,
                                    }
                                }
                            }
                        };
                        if esc {
                            escapes[callee][k] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let rule_classes = resolved
            .iter()
            .flat_map(|r| match r.target {
                Target::NoEscape { class } => vec![class],
                Target::Confine { class, owner } => vec![class, owner],
                Target::Separate {
                    source, sink_class, ..
                } => sink_class.into_iter().chain([source]).collect(),
            })
            .collect();

        let class_sig = class_signatures(program);
        let method_sig = method_signatures(program, &methods, &class_sig);
        ProgramCx {
            program,
            methods,
            locals,
            escapes,
            class_sig,
            method_sig,
            rule_classes,
        }
    }

    fn table(&self) -> &cj_frontend::classtable::ClassTable {
        &self.program.kernel.table
    }
}

/// The methods a call site may reach: the statically resolved callee plus,
/// for virtual calls, every override in a subclass. Each target comes with
/// the instantiation of *its* abstraction parameters (the shared class
/// prefix and the method regions map through `inst`; an override's extra
/// class parameters are unknown).
fn call_targets(
    program: &RProgram,
    index: &HashMap<MethodId, usize>,
    methods: &[(MethodId, &RMethod)],
    target: MethodId,
    inst: &[RegVar],
) -> Vec<(usize, Vec<Option<RegVar>>)> {
    let mut out = Vec::new();
    if let Some(&ti) = index.get(&target) {
        let arity = methods[ti].1.abs_params.len();
        out.push((ti, (0..arity).map(|k| inst.get(k).copied()).collect()));
    }
    let MethodId::Instance(c, i) = target else {
        return out;
    };
    let table = &program.kernel.table;
    let name = table.class(c).own_methods[i as usize].name;
    let c_params = program.rclass(c).params.len();
    for info in table.classes() {
        if info.id == c || !table.is_subclass(info.id, c) {
            continue;
        }
        let Some(j) = info.own_methods.iter().position(|m| m.name == name) else {
            continue;
        };
        let over = MethodId::Instance(info.id, j as u32);
        let Some(&oi) = index.get(&over) else {
            continue;
        };
        let d_params = program.rclass(info.id).params.len();
        let arity = methods[oi].1.abs_params.len();
        let mapping = (0..arity)
            .map(|k| {
                if k < c_params {
                    inst.get(k).copied()
                } else if k < d_params {
                    None
                } else {
                    inst.get(c_params + (k - d_params)).copied()
                }
            })
            .collect();
        out.push((oi, mapping));
    }
    out
}

// ---- evaluation ---------------------------------------------------------

/// Pre-order node list of a method body; `Stored::site` indexes it.
fn preorder(body: &RExpr) -> Vec<&RExpr> {
    let mut nodes = Vec::new();
    walk_rexpr(body, &mut |e| nodes.push(e));
    nodes
}

/// Evaluates every resolved rule against one method, producing memoizable
/// findings. Messages use only α-stable names (classes, method display
/// names, 1-based positional region parameters) so a memo replay after an
/// incremental edit is bit-identical to a fresh evaluation.
fn evaluate(
    cx: &ProgramCx<'_>,
    mi: usize,
    id: MethodId,
    m: &RMethod,
    nodes: &[&RExpr],
    resolved: &[Resolved],
) -> Vec<Stored> {
    let table = cx.table();
    let mname = cx.program.kernel.method_name(id);
    // Every class-typed annotation occurring in the method, deduplicated:
    // the ownership ("owned by D") and taint ("hosts S values") relations
    // are read off these occurrences.
    let mut occurrences: BTreeSet<(ClassId, Vec<RegVar>)> = BTreeSet::new();
    let mut record = |t: &RType| {
        if let RType::Class { class, regions, .. } = t {
            occurrences.insert((*class, regions.clone()));
        }
    };
    for t in &m.var_types {
        record(t);
    }
    record(&m.ret_type);
    for node in nodes {
        record(&node.rtype);
    }

    // The closed constraint environment, built on first use.
    let mut solver: Option<Solver> = None;
    let mut entails = |atom: Atom| -> bool {
        solver
            .get_or_insert_with(|| Solver::from_set(&cx.program.method_closure(id)))
            .entails_atom(atom)
    };

    let mut found = Vec::new();
    for r in resolved {
        match r.target {
            Target::NoEscape { class } => {
                for (site, node) in nodes.iter().enumerate() {
                    let RExprKind::New {
                        class: alloc,
                        regions,
                        ..
                    } = &node.kind
                    else {
                        continue;
                    };
                    if !table.is_subclass(*alloc, class) {
                        continue;
                    }
                    let cn = table.name(*alloc);
                    let Some(&r0) = regions.first() else { continue };
                    let verdict = if r0.is_heap() {
                        Some((
                            format!(
                                "values of class `{cn}` must not escape their creation region, \
                                 but this allocation places one on the heap"
                            ),
                            vec!["the heap outlives every region".to_string()],
                        ))
                    } else if cx.locals[mi].contains(&r0) {
                        None
                    } else if let Some(i) = m.abs_params.iter().position(|&p| p == r0) {
                        cx.escapes[mi][i].then(|| {
                            (
                                format!(
                                    "values of class `{cn}` must not escape their creation \
                                     region, but this allocation's region (parameter r{} of \
                                     `{mname}`) may outlive the method",
                                    i + 1
                                ),
                                vec![format!(
                                    "the region flows out through `{mname}`'s signature and some \
                                     call chain binds it to the heap or to the open world"
                                )],
                            )
                        })
                    } else {
                        Some((
                            format!(
                                "values of class `{cn}` must not escape their creation region, \
                                 but this allocation's region has no `letreg` binding in `{mname}`"
                            ),
                            Vec::new(),
                        ))
                    };
                    if let Some((message, notes)) = verdict {
                        found.push(Stored {
                            rule: r.idx as u32,
                            site: site as u32,
                            code: codes::POLICY_NO_ESCAPE,
                            message,
                            notes,
                        });
                    }
                }
            }
            Target::Confine { class, owner } => {
                let owned: BTreeSet<RegVar> = occurrences
                    .iter()
                    .filter(|(c, _)| table.is_subclass(*c, owner))
                    .flat_map(|(_, regions)| regions.iter().copied())
                    .collect();
                let on = table.name(owner);
                for (site, node) in nodes.iter().enumerate() {
                    let RExprKind::New {
                        class: alloc,
                        regions,
                        ..
                    } = &node.kind
                    else {
                        continue;
                    };
                    if !table.is_subclass(*alloc, class) {
                        continue;
                    }
                    let Some(&r0) = regions.first() else { continue };
                    let confined =
                        owned.contains(&r0) || owned.iter().any(|&o| entails(Atom::eq(r0, o)));
                    if !confined {
                        let cn = table.name(*alloc);
                        let note = if owned.is_empty() {
                            format!("no `{on}`-owned region is in scope in `{mname}`")
                        } else {
                            format!(
                                "`{on}` owns {} region(s) here, none provably equal to the \
                                 allocation region",
                                owned.len()
                            )
                        };
                        found.push(Stored {
                            rule: r.idx as u32,
                            site: site as u32,
                            code: codes::POLICY_CONFINE,
                            message: format!(
                                "values of class `{cn}` may only be allocated into regions \
                                 owned by `{on}`, but this allocation's region is not one of them"
                            ),
                            notes: vec![note],
                        });
                    }
                }
            }
            Target::Separate {
                source,
                sink_class,
                sink_method,
            } => {
                let taint: BTreeSet<RegVar> = occurrences
                    .iter()
                    .filter(|(c, _)| table.is_subclass(*c, source))
                    .filter_map(|(_, regions)| regions.first().copied())
                    .collect();
                if taint.is_empty() {
                    continue;
                }
                let sn = table.name(source);
                for (site, node) in nodes.iter().enumerate() {
                    let (callee, args) = match &node.kind {
                        RExprKind::CallVirtual { method, args, .. } => (*method, args),
                        RExprKind::CallStatic { method, args, .. } => (*method, args),
                        _ => continue,
                    };
                    if !sink_matches(table, callee, sink_class, sink_method) {
                        continue;
                    }
                    let sink_name = cx.program.kernel.method_name(callee);
                    for (ai, a) in args.iter().enumerate() {
                        let Some(t) = m.var_types[a.index()].object_region() else {
                            continue;
                        };
                        let tainted = taint.contains(&t)
                            || taint.iter().any(|&s| entails(Atom::outlives(s, t)));
                        if tainted {
                            found.push(Stored {
                                rule: r.idx as u32,
                                site: site as u32,
                                code: codes::POLICY_SEPARATE,
                                message: format!(
                                    "values born in `{sn}`-hosting regions must not flow into \
                                     sink `{sink_name}`, but argument {} of this call lives in \
                                     a region reachable from one",
                                    ai + 1
                                ),
                                notes: vec![format!(
                                    "the closed constraints entail that a `{sn}`-hosting region \
                                     outlives the argument's region, so the argument can reach \
                                     `{sn}` data"
                                )],
                            });
                        }
                    }
                }
            }
        }
    }
    found
}

/// Whether a call's statically resolved callee matches a sink spec: a
/// class-qualified sink matches instance methods of the same name whose
/// declaring class is related to the sink class (either direction — a call
/// through a superclass may dispatch into the sink, and a call on a
/// subclass inherits it); a bare sink matches the static method of that
/// name.
fn sink_matches(
    table: &cj_frontend::classtable::ClassTable,
    callee: MethodId,
    sink_class: Option<ClassId>,
    sink_method: Symbol,
) -> bool {
    match (callee, sink_class) {
        (MethodId::Instance(c, i), Some(sc)) => {
            table.class(c).own_methods[i as usize].name == sink_method
                && (table.is_subclass(c, sc) || table.is_subclass(sc, c))
        }
        (MethodId::Static(i), None) => table.statics()[i as usize].name == sink_method,
        _ => false,
    }
}

// ---- α-invariant verdict keys -------------------------------------------

/// First-occurrence region renumbering: two methods that differ only by a
/// consistent (order-preserving) region-id shift — exactly what incremental
/// recompilation produces for untouched methods — hash identically.
#[derive(Default)]
struct Canon {
    map: HashMap<RegVar, u64>,
}

impl Canon {
    fn id(&mut self, r: RegVar) -> u64 {
        if r.is_heap() {
            return u64::MAX;
        }
        let next = self.map.len() as u64;
        *self.map.entry(r).or_insert(next)
    }
}

/// Hashes a constraint set under `canon`, order-independently (atoms are
/// canonicalized, then sorted).
fn hash_atoms(h: &mut DefaultHasher, canon: &mut Canon, atoms: impl Iterator<Item = Atom>) {
    let mut mapped: Vec<(u8, u64, u64)> = atoms
        .map(|a| match a {
            Atom::Outlives(x, y) => (0, canon.id(x), canon.id(y)),
            Atom::Eq(x, y) => {
                let (x, y) = (canon.id(x), canon.id(y));
                (1, x.min(y), x.max(y))
            }
        })
        .collect();
    mapped.sort_unstable();
    mapped.hash(h);
}

/// Per-class signature hashes: name, ancestry, canonicalized field types
/// and invariant. Folded into every type hash, so any change to a class a
/// method mentions re-keys that method.
fn class_signatures(program: &RProgram) -> Vec<u64> {
    let table = &program.kernel.table;
    program
        .classes
        .iter()
        .map(|rc| {
            let mut h = DefaultHasher::new();
            table.name(rc.id).as_str().hash(&mut h);
            let mut cur = table.class(rc.id).superclass;
            while let Some(s) = cur {
                table.name(s).as_str().hash(&mut h);
                cur = table.class(s).superclass;
            }
            rc.params.len().hash(&mut h);
            rc.rec_region.is_some().hash(&mut h);
            let mut canon = Canon::default();
            for &p in &rc.params {
                canon.id(p);
            }
            for t in &rc.field_types {
                hash_rtype_shallow(&mut h, &mut canon, table, t);
            }
            hash_atoms(&mut h, &mut canon, rc.invariant.iter());
            h.finish()
        })
        .collect()
}

/// Type hash without per-class signature folding (used inside the class
/// signatures themselves, where classes may be mutually recursive).
fn hash_rtype_shallow(
    h: &mut DefaultHasher,
    canon: &mut Canon,
    table: &cj_frontend::classtable::ClassTable,
    t: &RType,
) {
    match t {
        RType::Void => 0u8.hash(h),
        RType::Prim(p) => {
            1u8.hash(h);
            std::mem::discriminant(p).hash(h);
        }
        RType::Class {
            class,
            regions,
            pads,
        } => {
            2u8.hash(h);
            table.name(*class).as_str().hash(h);
            for &r in regions.iter().chain(pads.iter()) {
                canon.id(r).hash(h);
            }
            (regions.len(), pads.len()).hash(h);
        }
        RType::Array { elem, region } => {
            3u8.hash(h);
            std::mem::discriminant(elem).hash(h);
            canon.id(*region).hash(h);
        }
    }
}

/// Per-method *signature* hashes — what callers import: display name,
/// owner-class signature, canonicalized parameter/return types and closed
/// precondition.
fn method_signatures(
    program: &RProgram,
    methods: &[(MethodId, &RMethod)],
    class_sig: &[u64],
) -> Vec<u64> {
    methods
        .iter()
        .map(|(id, m)| {
            let mut h = DefaultHasher::new();
            program.kernel.method_name(*id).hash(&mut h);
            if let MethodId::Instance(c, _) = id {
                class_sig[c.index()].hash(&mut h);
            }
            m.abs_params.len().hash(&mut h);
            let mut canon = Canon::default();
            for &p in &m.abs_params {
                canon.id(p);
            }
            let table = &program.kernel.table;
            let kernel = program.kernel.method(*id);
            for &p in &kernel.params {
                hash_rtype_shallow(&mut h, &mut canon, table, &m.var_types[p.index()]);
            }
            hash_rtype_shallow(&mut h, &mut canon, table, &m.ret_type);
            hash_atoms(&mut h, &mut canon, m.precondition.iter());
            h.finish()
        })
        .collect()
}

/// Discriminant tag of a node kind. Together with each kind's fixed child
/// arity (plus the `Let` initializer bit, hashed separately), the pre-order
/// tag sequence pins the body's tree shape — and with it the site ordinals
/// memoized verdicts refer to.
fn kind_tag(k: &RExprKind) -> u8 {
    match k {
        RExprKind::Unit => 0,
        RExprKind::Int(_) => 1,
        RExprKind::Bool(_) => 2,
        RExprKind::Float(_) => 3,
        RExprKind::Null => 4,
        RExprKind::Var(_) => 5,
        RExprKind::Field(_, _) => 6,
        RExprKind::AssignVar(_, _) => 7,
        RExprKind::AssignField(_, _, _) => 8,
        RExprKind::New { .. } => 9,
        RExprKind::NewArray { .. } => 10,
        RExprKind::Index(_, _) => 11,
        RExprKind::AssignIndex(_, _, _) => 12,
        RExprKind::ArrayLen(_) => 13,
        RExprKind::CallVirtual { .. } => 14,
        RExprKind::CallStatic { .. } => 15,
        RExprKind::Seq(_, _) => 16,
        RExprKind::Let { .. } => 17,
        RExprKind::Letreg(_, _) => 18,
        RExprKind::If { .. } => 19,
        RExprKind::While { .. } => 20,
        RExprKind::Cast { .. } => 21,
        RExprKind::Unary(_, _) => 22,
        RExprKind::Binary(_, _, _) => 23,
        RExprKind::Print(_) => 24,
    }
}

/// The verdict key of one method: everything `evaluate` can read, spans
/// excluded, region ids α-renamed.
fn method_key(
    cx: &ProgramCx<'_>,
    set_fp: u64,
    mi: usize,
    id: MethodId,
    m: &RMethod,
    nodes: &[&RExpr],
) -> u64 {
    let table = cx.table();
    let mut h = DefaultHasher::new();
    set_fp.hash(&mut h);
    cx.program.kernel.method_name(id).hash(&mut h);
    id.is_static().hash(&mut h);
    if let MethodId::Instance(c, _) = id {
        cx.class_sig[c.index()].hash(&mut h);
        hash_rule_relations(&mut h, cx, c);
    }
    cx.escapes[mi].hash(&mut h);

    let mut canon = Canon::default();
    for &p in &m.abs_params {
        canon.id(p);
    }
    let hash_type = |h: &mut DefaultHasher, canon: &mut Canon, t: &RType| {
        hash_rtype_shallow(h, canon, table, t);
        if let RType::Class { class, .. } = t {
            cx.class_sig[class.index()].hash(h);
            hash_rule_relations(h, cx, *class);
        }
    };
    m.var_types.len().hash(&mut h);
    for t in &m.var_types {
        hash_type(&mut h, &mut canon, t);
    }
    hash_type(&mut h, &mut canon, &m.ret_type);
    hash_atoms(&mut h, &mut canon, m.precondition.iter());

    nodes.len().hash(&mut h);
    for node in nodes {
        kind_tag(&node.kind).hash(&mut h);
        hash_type(&mut h, &mut canon, &node.rtype);
        match &node.kind {
            RExprKind::New { class, regions, .. } => {
                cx.class_sig[class.index()].hash(&mut h);
                hash_rule_relations(&mut h, cx, *class);
                for &r in regions {
                    canon.id(r).hash(&mut h);
                }
            }
            RExprKind::NewArray { region, .. } => {
                canon.id(*region).hash(&mut h);
            }
            RExprKind::CallVirtual {
                method,
                inst,
                args,
                recv,
            } => {
                hash_call(&mut h, cx, &mut canon, *method, inst);
                recv.0.hash(&mut h);
                for a in args {
                    a.0.hash(&mut h);
                }
            }
            RExprKind::CallStatic { method, inst, args } => {
                hash_call(&mut h, cx, &mut canon, *method, inst);
                for a in args {
                    a.0.hash(&mut h);
                }
            }
            RExprKind::Letreg(r, _) => {
                canon.id(*r).hash(&mut h);
            }
            RExprKind::Let { init, var, .. } => {
                init.is_some().hash(&mut h);
                var.0.hash(&mut h);
            }
            RExprKind::Cast { class, regions, .. } => {
                cx.class_sig[class.index()].hash(&mut h);
                for &r in regions {
                    canon.id(r).hash(&mut h);
                }
            }
            _ => {}
        }
    }
    h.finish()
}

/// Folds one call site's closed import into the key: the callee's
/// signature hash, its class's relations to the rule classes (sink
/// matching), and the canonicalized instantiation (escape propagation).
fn hash_call(
    h: &mut DefaultHasher,
    cx: &ProgramCx<'_>,
    canon: &mut Canon,
    callee: MethodId,
    inst: &[RegVar],
) {
    if let Some(pos) = cx.methods.iter().position(|(id, _)| *id == callee) {
        cx.method_sig[pos].hash(h);
        // A caller's verdict also depends on the callee's escape row (the
        // site feeds the fixpoint) — cheap to include, avoids stale keys
        // when only a sibling caller changed the row.
        cx.escapes[pos].hash(h);
    }
    if let MethodId::Instance(c, _) = callee {
        hash_rule_relations(h, cx, c);
    }
    inst.len().hash(h);
    for &r in inst {
        canon.id(r).hash(h);
    }
}

/// Hashes `class`'s subtyping relations against every class the rules
/// name: the rule predicates (`is_subclass` filters, sink matching) read
/// exactly these bits, so hierarchy edits re-key affected methods.
fn hash_rule_relations(h: &mut DefaultHasher, cx: &ProgramCx<'_>, class: ClassId) {
    let table = cx.table();
    for &rc in &cx.rule_classes {
        (table.is_subclass(class, rc), table.is_subclass(rc, class)).hash(h);
    }
}
