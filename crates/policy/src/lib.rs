//! `cj-policy` — a region-effect policy engine on top of the inference.
//!
//! The paper's inference produces closed per-class invariants and per-method
//! preconditions plus a fully region-annotated program. This crate turns
//! those annotations into a static-analysis *service*: users declare rules
//! in a small line-oriented language (a `.cjpolicy` file, or the same text
//! inline in a serve/daemon request) and every violation is reported as a
//! first-class [`cj_diag`] diagnostic in the `E071x` code family, with the
//! primary span at the offending allocation or call and a secondary
//! "rule declared here" label pointing into the policy source.
//!
//! # The rule language
//!
//! One rule per line; `#` starts a comment; blank lines are ignored.
//!
//! ```text
//! # values of class Cell never escape their creation region
//! no-escape Cell
//!
//! # Node objects may only be allocated into regions owned by a Tree
//! confine Node to Tree
//!
//! # values born in a Secret-hosting region never reach Log.write's
//! # parameters (use a bare name for a static sink: `separate Secret from store`)
//! separate Secret from Log.write
//! ```
//!
//! Rule semantics are grounded entirely in the inferred annotations:
//!
//! - **`no-escape C`** ([`codes::POLICY_NO_ESCAPE`], E0711): every
//!   `new C⟨r…⟩` must allocate into a region that is provably deallocated —
//!   the object region is `letreg`-bound in the allocating method, or it is
//!   an abstraction parameter that every caller (transitively, over the
//!   closed call graph including overrides) instantiates with a
//!   `letreg`-bound region. Allocating into `heap`, into a parameter of an
//!   uncalled method (the open world), or into a parameter some call chain
//!   maps to `heap` is a violation.
//! - **`confine C to D`** ([`codes::POLICY_CONFINE`], E0712): every
//!   `new C⟨r…⟩` must place the object in a region *owned by `D`* — a
//!   region appearing in some `D`-typed (or `D`-subclass-typed) annotation
//!   in the allocating method, or provably equal to one under the method's
//!   closed precondition conjoined with the instantiated invariants of
//!   every class type in scope.
//! - **`separate S from D.m`** ([`codes::POLICY_SEPARATE`], E0713):
//!   taint-style source/sink separation. A region *hosts* `S` values when
//!   it is the object region of an `S`-typed (or subclass) annotation in
//!   the method. At every call whose resolved callee matches the sink, no
//!   argument's object region may be reachable from an `S`-hosting region:
//!   reachability is entailment of `s ≥ t` (the source region outlives the
//!   argument region, so argument-reachable structure can reference source
//!   data) over the same closed constraint environment.
//!
//! Verdicts are deterministic, independent of the execution engine, and
//! invariant under the `--extents` modes (extent rewriting moves `letreg`
//! *placement*, never the set of regions allocation sites live in).
//!
//! The [`check::PolicyEngine`] memoizes verdicts per method under an
//! α-invariant fingerprint of everything a verdict depends on (rule set,
//! canonical annotations, closed callee imports, escape context), so an
//! incremental host like `cj-driver`'s `Workspace` re-evaluates only the
//! methods an edit actually affected.

#![forbid(unsafe_code)]

pub mod check;

pub use check::{PolicyEngine, PolicyReport, Violation};

use cj_diag::{codes, Diagnostic, Diagnostics, Span};
use cj_infer::options::ParseOptionError;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

/// The three rule kinds of the policy language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// `no-escape C` — values of class `C` never escape their creation
    /// region.
    NoEscape,
    /// `confine C to D` — `C` objects are only allocated into regions
    /// owned by class `D`.
    Confine,
    /// `separate S from [D.]m` — values born in an `S`-hosting region
    /// never flow into the sink method's parameter regions.
    Separate,
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RuleKind::NoEscape => "no-escape",
            RuleKind::Confine => "confine",
            RuleKind::Separate => "separate",
        })
    }
}

impl RuleKind {
    /// Every rule kind.
    pub const ALL: [RuleKind; 3] = [RuleKind::NoEscape, RuleKind::Confine, RuleKind::Separate];

    /// Accepted spellings (canonical first).
    pub const NAMES: [&'static str; 4] = ["no-escape", "confine", "separate", "no_escape"];
}

impl FromStr for RuleKind {
    type Err = ParseOptionError;

    fn from_str(s: &str) -> Result<RuleKind, ParseOptionError> {
        match s {
            "no-escape" | "no_escape" => Ok(RuleKind::NoEscape),
            "confine" => Ok(RuleKind::Confine),
            "separate" => Ok(RuleKind::Separate),
            _ => Err(ParseOptionError {
                what: "policy rule kind",
                input: s.to_string(),
                expected: &RuleKind::NAMES,
            }),
        }
    }
}

/// One parsed policy rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule kind.
    pub kind: RuleKind,
    /// The guarded class: the allocation class for `no-escape`/`confine`,
    /// the source class for `separate`.
    pub class: String,
    /// The owner class of a `confine … to D` rule.
    pub owner: Option<String>,
    /// The sink's class for a `separate … from D.m` rule (`None` for a
    /// static sink `separate … from m`).
    pub sink_class: Option<String>,
    /// The sink's method name for a `separate` rule.
    pub sink_method: Option<String>,
    /// Span of the rule within the policy source.
    pub span: Span,
    /// The rule's source text (used for "rule declared here" labels).
    pub text: String,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RuleKind::NoEscape => write!(f, "no-escape {}", self.class),
            RuleKind::Confine => {
                write!(
                    f,
                    "confine {} to {}",
                    self.class,
                    self.owner.as_deref().unwrap_or("?")
                )
            }
            RuleKind::Separate => {
                write!(f, "separate {} from ", self.class)?;
                if let Some(c) = &self.sink_class {
                    write!(f, "{c}.")?;
                }
                f.write_str(self.sink_method.as_deref().unwrap_or("?"))
            }
        }
    }
}

/// A parsed, fingerprinted set of policy rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySet {
    /// Display name of the policy source (file name, or a pseudo-name for
    /// inline rules).
    pub name: String,
    /// The policy source text.
    pub source: String,
    /// The rules, in declaration order.
    pub rules: Vec<Rule>,
    /// A content fingerprint of the normalized rules (spans and comments
    /// excluded): two rule sets with equal fingerprints demand identical
    /// verdicts.
    pub fingerprint: u64,
}

impl PolicySet {
    /// Parses policy source text. Spans in the returned set (and in any
    /// error diagnostics) are local to `source`.
    ///
    /// # Errors
    ///
    /// One [`codes::POLICY`] diagnostic per malformed line.
    pub fn parse(
        name: impl Into<String>,
        source: impl Into<String>,
    ) -> Result<PolicySet, Diagnostics> {
        let name = name.into();
        let source = source.into();
        let mut rules = Vec::new();
        let mut errors = Diagnostics::new();
        let mut offset = 0u32;
        for line in source.split_inclusive('\n') {
            let line_start = offset;
            offset += line.len() as u32;
            let line = line.strip_suffix('\n').unwrap_or(line);
            let code = line.split('#').next().unwrap_or("");
            let trimmed = code.trim_end();
            let lead = trimmed.len() - trimmed.trim_start().len();
            let text = trimmed.trim_start();
            if text.is_empty() {
                continue;
            }
            let lo = line_start + lead as u32;
            let span = Span::new(lo, lo + text.len() as u32);
            match parse_rule(text, span) {
                Ok(rule) => rules.push(rule),
                Err(msg) => {
                    errors.push(Diagnostic::error(msg, span).with_code(codes::POLICY));
                }
            }
        }
        if errors.has_errors() {
            return Err(errors);
        }
        let fingerprint = fingerprint_rules(&rules);
        Ok(PolicySet {
            name,
            source,
            rules,
            fingerprint,
        })
    }

    /// Shifts every rule span by `base` (rebases the set into a host's
    /// global span space, e.g. a workspace file slot).
    pub fn shift_spans(&mut self, base: u32) {
        for rule in &mut self.rules {
            rule.span = Span::new(rule.span.lo + base, rule.span.hi + base);
        }
    }
}

/// Parses one rule line (comments and indentation already stripped).
fn parse_rule(text: &str, span: Span) -> Result<Rule, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let kind: RuleKind = tokens[0]
        .parse()
        .map_err(|e: ParseOptionError| e.to_string())?;
    let ident = |tok: &str, what: &str| -> Result<String, String> {
        let ok = !tok.is_empty()
            && tok
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && tok.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
        if ok {
            Ok(tok.to_string())
        } else {
            Err(format!("malformed {what} `{tok}` (expected an identifier)"))
        }
    };
    let rule = match kind {
        RuleKind::NoEscape => {
            let [_, class] = tokens[..] else {
                return Err("malformed rule (expected `no-escape <Class>`)".to_string());
            };
            Rule {
                kind,
                class: ident(class, "class name")?,
                owner: None,
                sink_class: None,
                sink_method: None,
                span,
                text: text.to_string(),
            }
        }
        RuleKind::Confine => {
            let [_, class, "to", owner] = tokens[..] else {
                return Err("malformed rule (expected `confine <Class> to <Owner>`)".to_string());
            };
            Rule {
                kind,
                class: ident(class, "class name")?,
                owner: Some(ident(owner, "owner class name")?),
                sink_class: None,
                sink_method: None,
                span,
                text: text.to_string(),
            }
        }
        RuleKind::Separate => {
            let [_, class, "from", sink] = tokens[..] else {
                return Err(
                    "malformed rule (expected `separate <Source> from [<Class>.]<method>`)"
                        .to_string(),
                );
            };
            let (sink_class, sink_method) = match sink.split_once('.') {
                Some((c, m)) => (
                    Some(ident(c, "sink class name")?),
                    ident(m, "sink method name")?,
                ),
                None => (None, ident(sink, "sink method name")?),
            };
            Rule {
                kind,
                class: ident(class, "source class name")?,
                owner: None,
                sink_class,
                sink_method: Some(sink_method),
                span,
                text: text.to_string(),
            }
        }
    };
    Ok(rule)
}

/// Hashes the normalized rule list (kinds and names only — spans, layout
/// and comments do not affect verdicts).
fn fingerprint_rules(rules: &[Rule]) -> u64 {
    let mut h = DefaultHasher::new();
    rules.len().hash(&mut h);
    for rule in rules {
        rule.kind.hash(&mut h);
        rule.class.hash(&mut h);
        rule.owner.hash(&mut h);
        rule.sink_class.hash(&mut h);
        rule.sink_method.hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_kind_display_from_str_round_trips() {
        for kind in RuleKind::ALL {
            let shown = kind.to_string();
            assert_eq!(shown.parse::<RuleKind>().unwrap(), kind);
        }
        assert_eq!("no_escape".parse::<RuleKind>().unwrap(), RuleKind::NoEscape);
        let err = "taint".parse::<RuleKind>().unwrap_err();
        assert_eq!(err.what, "policy rule kind");
        assert!(err.to_string().contains("no-escape"));
    }

    #[test]
    fn parses_all_three_kinds_with_comments_and_blank_lines() {
        let text = "# guidelines\n\nno-escape Cell\nconfine Node to Tree  # ownership\nseparate Secret from Log.write\nseparate Secret from store\n";
        let set = PolicySet::parse("rules.cjpolicy", text).unwrap();
        assert_eq!(set.rules.len(), 4);
        assert_eq!(set.rules[0].kind, RuleKind::NoEscape);
        assert_eq!(set.rules[0].class, "Cell");
        assert_eq!(set.rules[1].owner.as_deref(), Some("Tree"));
        assert_eq!(set.rules[1].text, "confine Node to Tree");
        assert_eq!(set.rules[2].sink_class.as_deref(), Some("Log"));
        assert_eq!(set.rules[2].sink_method.as_deref(), Some("write"));
        assert_eq!(set.rules[3].sink_class, None);
        assert_eq!(set.rules[3].sink_method.as_deref(), Some("store"));
        // Spans select exactly the rule text.
        let r1 = set.rules[1].span;
        assert_eq!(
            &text[r1.lo as usize..r1.hi as usize],
            "confine Node to Tree"
        );
    }

    #[test]
    fn fingerprint_ignores_layout_but_not_content() {
        let a = PolicySet::parse("a", "no-escape Cell\n").unwrap();
        let b = PolicySet::parse("b", "  # x\n  no-escape   Cell   # y\n").unwrap();
        let c = PolicySet::parse("c", "no-escape List\n").unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn malformed_rules_are_policy_diagnostics_with_spans() {
        let err = PolicySet::parse("p", "no-escape\nconfine A B\nseparate X into y\n").unwrap_err();
        assert_eq!(err.items.len(), 3);
        for d in err.iter() {
            assert_eq!(d.code, Some(codes::POLICY));
            assert!(!d.span.is_dummy());
        }
        assert!(err.items[0].message.contains("no-escape <Class>"));
        assert!(err.items[1].message.contains("confine <Class> to <Owner>"));
        assert!(err.items[2].message.contains("separate <Source> from"));
    }

    #[test]
    fn shift_spans_rebases_rules() {
        let mut set = PolicySet::parse("p", "no-escape Cell\n").unwrap();
        let before = set.rules[0].span;
        set.shift_spans(1 << 20);
        assert_eq!(set.rules[0].span.lo, before.lo + (1 << 20));
    }
}
