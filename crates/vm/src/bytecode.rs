//! The compact bytecode the VM executes.
//!
//! One [`CompiledProgram`] holds every method's code plus the tables the
//! lowering pass resolved once so execution never does a name lookup:
//! per-class **vtables** (virtual dispatch is an index into
//! `vtables[runtime_class]`), a **subclass matrix** (casts are one boolean
//! read), and per-method **site tables** for the operations that carry
//! structured operands (allocations, calls, casts).
//!
//! The machine is a stack machine over method-local variable slots: every
//! expression's lowering leaves exactly one value on the operand stack.
//! Receivers, call arguments and constructor arguments address variable
//! slots directly (the kernel language guarantees they are variables), so
//! the hot paths — field access, dispatch, allocation — never shuffle the
//! operand stack.
//!
//! `letreg` lowers to explicit [`Instr::RegPush`]/[`Instr::RegPop`]
//! delimiting the extent of a frame-local region slot, and `new cn⟨r…⟩`
//! to [`Instr::NewObj`] whose site says which region slot to allocate in
//! — the paper's dynamic semantics, made explicit in the instruction
//! stream.

use cj_frontend::ast::{BinOp, UnOp};
use cj_frontend::span::Span;
use cj_frontend::types::{MethodId, Prim};
use std::collections::HashMap;
use std::sync::Arc;

/// The runtime representation class of one field or array-element slot.
/// Payload slots are raw 64-bit words; the lowering pass bakes each
/// access's decode/encode into the instruction, so the VM never inspects
/// a stored word to learn its type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTy {
    /// `int` — the word is the `i64` bit pattern.
    Int,
    /// `bool` — 0 or 1.
    Bool,
    /// `float` — `f64::to_bits`.
    Float,
    /// A reference — packed region/offset, or the null sentinel.
    Ref,
}

/// A region operand, resolved at lowering time: either the global heap or
/// a frame-local region slot (a class/method region parameter or a
/// `letreg`-bound region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegRef {
    /// The global heap region.
    Heap,
    /// Frame region slot `.0`.
    Slot(u16),
}

/// A literal in a method's constant pool (also the per-slot default
/// values used to (re)initialize locals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lit {
    /// The unit value.
    Unit,
    /// The null reference.
    Null,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A float.
    Float(f64),
}

/// One bytecode instruction. Operand-stack effects are noted per variant;
/// `u32` operands index the owning method's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push constant-pool entry `.0`.
    Const(u32),
    /// Push variable slot `.0`.
    LoadVar(u16),
    /// Pop into variable slot `.0`.
    StoreVar(u16),
    /// Reset variable slot `.0` to its type default (loop re-entry of an
    /// initializer-less declaration).
    ResetVar(u16),
    /// Discard the top of stack.
    Pop,
    /// Push field `idx` of the object in variable `var`.
    GetField {
        /// Receiver variable slot.
        var: u16,
        /// Constructor-order field index.
        idx: u16,
        /// Field representation.
        ty: SlotTy,
    },
    /// Pop a value into field `idx` of the object in variable `var`.
    SetField {
        /// Receiver variable slot.
        var: u16,
        /// Constructor-order field index.
        idx: u16,
        /// Field representation.
        ty: SlotTy,
    },
    /// Allocate per [`NewSite`] `.0`; push the reference.
    NewObj(u32),
    /// Pop the length, allocate per [`ArraySite`] `.0`; push the
    /// reference.
    NewArr(u32),
    /// Pop an index; push element of the array in variable `var`.
    Index {
        /// Array variable slot.
        var: u16,
        /// Element representation.
        ty: SlotTy,
    },
    /// Pop a value, then an index; store into the array in variable
    /// `var`.
    SetIndex {
        /// Array variable slot.
        var: u16,
        /// Element representation.
        ty: SlotTy,
    },
    /// Push the length of the array in variable `.0`.
    ArrayLen(u16),
    /// Enter a `letreg`: create a region, bind it to region slot `.0`.
    RegPush(u16),
    /// Leave a `letreg`: delete the region in region slot `.0`, freeing
    /// its objects wholesale.
    RegPop(u16),
    /// Call per [`CallSite`] `.0`; push the result.
    Call(u32),
    /// Cast per [`CastSite`] `.0`; push the (unchanged) value.
    Cast(u32),
    /// Unconditional jump to instruction `.0`.
    Jump(u32),
    /// Pop a boolean; jump to `.0` when false.
    JumpIfFalse(u32),
    /// Pop a boolean; jump to `.0` when true.
    JumpIfTrue(u32),
    /// Pop one operand, push the result.
    Unary(UnOp),
    /// Pop two operands (right on top), push the result. `&&`/`||` never
    /// appear here — they lower to jumps.
    Binary(BinOp),
    /// Pop a value, record its rendering in the print log.
    Print,
    /// Pop the return value and leave the current frame.
    Ret,
}

/// Static callee of a [`CallSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallTarget {
    /// A static method, fully resolved to a function index.
    Static(u32),
    /// Virtual dispatch: `vtables[class_of(vars[recv])][vslot]`.
    Virtual {
        /// Vtable slot, assigned at lowering time.
        vslot: u32,
        /// Receiver variable slot.
        recv: u16,
    },
}

/// One call site: target, argument variable slots, and the region
/// instantiation for the callee's abstraction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSite {
    /// Who is called.
    pub target: CallTarget,
    /// Caller variable slots passed positionally to the callee's
    /// parameters.
    pub args: Vec<u16>,
    /// Region arguments, resolved against the caller's frame.
    pub inst: Vec<RegRef>,
    /// Where the callee's *method* region parameters start inside `inst`
    /// (the declared class's region arity) — virtual calls bind the class
    /// prefix from the receiver object instead.
    pub tail_start: u16,
}

/// One `new cn⟨r…⟩(v…)` site.
#[derive(Debug, Clone, PartialEq)]
pub struct NewSite {
    /// Class being constructed.
    pub class: u32,
    /// Region arguments; the object lives in `regions[0]` and records the
    /// full vector (virtual calls read the class-parameter prefix back).
    pub regions: Vec<RegRef>,
    /// Field initializers: caller variable slot and field representation,
    /// in constructor order.
    pub args: Vec<(u16, SlotTy)>,
}

/// One `new p[e]⟨r⟩` site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArraySite {
    /// Element primitive.
    pub elem: Prim,
    /// Region the array lives in.
    pub region: RegRef,
}

/// One `(cn) v` site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CastSite {
    /// Subject variable slot.
    pub var: u16,
    /// Target class.
    pub class: u32,
}

/// One lowered method body plus everything needed to build its frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledMethod {
    /// Display name (`cn.mn` or `mn`), for debugging and bench reports.
    pub name: String,
    /// The instruction stream; ends in [`Instr::Ret`].
    pub code: Vec<Instr>,
    /// Source span per instruction (for structured runtime errors),
    /// parallel to `code`.
    pub spans: Vec<Span>,
    /// Constant pool.
    pub consts: Vec<Lit>,
    /// Default value per variable slot (frame initialization and
    /// [`Instr::ResetVar`]).
    pub defaults: Vec<Lit>,
    /// Parameter variable slots, in declaration order (excluding `this`).
    pub params: Vec<u16>,
    /// Whether slot 0 is a `this` receiver.
    pub has_this: bool,
    /// Of the region slots, how many are the owning class's region
    /// parameters (bound from the receiver at virtual calls).
    pub class_params: u16,
    /// Of the region slots, how many are abstraction parameters (class
    /// prefix + method region parameters, bound at calls).
    pub abs_params: u16,
    /// Total region slots (abstraction parameters, then one per `letreg`
    /// binding).
    pub region_slots: u16,
    /// Allocation sites.
    pub news: Vec<NewSite>,
    /// Array-allocation sites.
    pub arrays: Vec<ArraySite>,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// Cast sites.
    pub casts: Vec<CastSite>,
}

/// A fully lowered program: per-method code plus the dispatch tables
/// resolved at lowering time.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Every method, instance methods first (in
    /// [`RProgram::all_rmethods`](cj_infer::RProgram::all_rmethods)
    /// order), then statics.
    pub methods: Vec<Arc<CompiledMethod>>,
    /// Function index per source method id.
    pub func_of: HashMap<MethodId, u32>,
    /// Per-class virtual dispatch table: `vtables[class][vslot]` is the
    /// function index of the most-derived override.
    pub vtables: Vec<Vec<u32>>,
    /// `subclass[a][b]` ⇔ class `a` is `b` or inherits from it.
    pub subclass: Vec<Vec<bool>>,
    /// The static `main` entry point (function index), if one exists.
    pub main: Option<u32>,
}

impl CompiledProgram {
    /// The compiled method for a source method id.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not part of the program.
    pub fn method(&self, id: MethodId) -> &CompiledMethod {
        &self.methods[self.func_of[&id] as usize]
    }

    /// Total instructions across all methods (a code-size metric for the
    /// bench harness).
    pub fn instruction_count(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}
