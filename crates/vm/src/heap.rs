//! The VM's region heap: one bump arena of 64-bit words per live region.
//!
//! Unlike the interpreter's [`RegionManager`](cj_runtime::RegionManager),
//! which only *counts* bytes while objects live in a global store, this
//! heap holds the actual object payloads inside per-region arenas:
//! allocation bumps the owning region's word vector, and `RegPop` frees
//! every object in the region **wholesale** by dropping the arena — the
//! paper's dynamic semantics of `letreg`, executed for real.
//!
//! Space accounting reproduces the interpreter's documented size model
//! exactly (16-byte header + 8 bytes per field or element,
//! [`object_bytes`]), so [`SpaceStats`] — and with it every Fig 8 space
//! ratio — is identical across the two engines by construction.
//!
//! # Object layout (word offsets from the object's base)
//!
//! | word | object | array |
//! |---|---|---|
//! | 0 | allocation serial | allocation serial |
//! | 1 | meta: class, #regions, #fields | meta: array bit, element tag, length |
//! | 2… | region arguments | elements (raw words) |
//! | 2+#regions… | fields (raw words) | — |

use cj_frontend::types::Prim;
use cj_runtime::region::{RegionError, RegionId, SpaceStats};
use cj_runtime::store::object_bytes;

/// The packed-reference null sentinel in `Ref` payload slots (shared
/// with the register tier in `cj-rvm`, which stores into the same
/// arenas).
pub const NULL_WORD: u64 = u64::MAX;

/// Meta-word bit marking an array.
const ARRAY_BIT: u64 = 1 << 63;

/// A runtime object reference: owning region, base word offset inside the
/// region's arena, and the allocation serial (the interpreter's `ObjId`,
/// so observable output is identical across engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRef {
    /// Owning region.
    pub region: u32,
    /// Base word offset within the region arena.
    pub word: u32,
    /// Allocation serial (0-based, program-wide).
    pub serial: u32,
}

#[derive(Debug, Default)]
struct Arena {
    live: bool,
    /// Stats-model bytes currently accounted to this region.
    bytes: usize,
    words: Vec<u64>,
}

/// Upper bound on recycled arena word buffers kept in the free pool.
/// Region nesting in practice is shallow (one letreg per frame plus the
/// call spine), so a small pool captures nearly all reuse while bounding
/// the memory retained by a one-off burst of deep nesting.
const POOL_LIMIT: usize = 16;

/// The stack-of-arenas allocator. Region 0 is the heap and is never
/// freed.
#[derive(Debug)]
pub struct RegionHeap {
    arenas: Vec<Arena>,
    stack: Vec<u32>,
    live_bytes: usize,
    stats: SpaceStats,
    next_serial: u32,
    /// Word buffers of popped regions, kept (cleared, capacity intact)
    /// for the next `RegPush` — letreg churn in a loop then allocates
    /// into already-warm chunks instead of growing a fresh `Vec` each
    /// iteration.
    pool: Vec<Vec<u64>>,
    chunks_reused: u64,
}

impl RegionHeap {
    /// A fresh heap with only the global heap region.
    pub fn new() -> RegionHeap {
        RegionHeap {
            arenas: vec![Arena {
                live: true,
                bytes: 0,
                words: Vec::new(),
            }],
            stack: vec![0],
            live_bytes: 0,
            stats: SpaceStats::default(),
            next_serial: 0,
            pool: Vec::new(),
            chunks_reused: 0,
        }
    }

    /// Creates a region on top of the stack (`RegPush`).
    pub fn push(&mut self) -> u32 {
        let id = self.arenas.len() as u32;
        let words = match self.pool.pop() {
            Some(w) => {
                self.chunks_reused += 1;
                w
            }
            None => Vec::new(),
        };
        self.arenas.push(Arena {
            live: true,
            bytes: 0,
            words,
        });
        self.stack.push(id);
        self.stats.regions_created += 1;
        id
    }

    /// Deletes the top region (`RegPop`), freeing its arena wholesale.
    ///
    /// # Errors
    ///
    /// The deleted region must be the top of the stack.
    pub fn pop(&mut self, id: u32) -> Result<(), RegionError> {
        if self.stack.last() != Some(&id) {
            return Err(RegionError::NotTopOfStack(RegionId(id)));
        }
        self.stack.pop();
        let arena = &mut self.arenas[id as usize];
        arena.live = false;
        self.live_bytes -= arena.bytes;
        // The wholesale free: every object in the region dies at once.
        // The backing chunk is recycled (cleared) rather than dropped, so
        // the dead arena is observably empty either way.
        let mut words = std::mem::take(&mut arena.words);
        if words.capacity() > 0 && self.pool.len() < POOL_LIMIT {
            words.clear();
            self.pool.push(words);
        }
        Ok(())
    }

    /// How many `RegPush`es were served from the recycled-chunk pool.
    pub fn chunks_reused(&self) -> u64 {
        self.chunks_reused
    }

    /// Recycled chunks currently waiting in the pool.
    pub fn pooled_chunks(&self) -> usize {
        self.pool.len()
    }

    /// Whether `region` is still live.
    pub fn is_live(&self, region: u32) -> bool {
        self.arenas[region as usize].live
    }

    /// Current accounting (the interpreter-identical size model).
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }

    fn account(&mut self, region: u32, bytes: usize) -> Result<(), RegionError> {
        let arena = &mut self.arenas[region as usize];
        if !arena.live {
            return Err(RegionError::DeadRegion(RegionId(region)));
        }
        arena.bytes += bytes;
        self.live_bytes += bytes;
        self.stats.total_allocated += bytes;
        self.stats.objects_allocated += 1;
        if self.live_bytes > self.stats.peak_live {
            self.stats.peak_live = self.live_bytes;
        }
        Ok(())
    }

    /// Allocates an object of `class` with the given recorded region
    /// arguments and already-encoded field words into `regions[0]`.
    ///
    /// # Errors
    ///
    /// Allocation into a deleted region.
    pub fn alloc_object(
        &mut self,
        region: u32,
        class: u32,
        regions: &[u32],
        fields: &[u64],
    ) -> Result<ObjRef, RegionError> {
        self.account(region, object_bytes(fields.len()))?;
        let serial = self.next_serial;
        self.next_serial += 1;
        let arena = &mut self.arenas[region as usize];
        let word = arena.words.len() as u32;
        arena.words.reserve(2 + regions.len() + fields.len());
        arena.words.push(serial as u64);
        arena
            .words
            .push(class as u64 | ((regions.len() as u64) << 32) | ((fields.len() as u64) << 44));
        arena.words.extend(regions.iter().map(|&r| r as u64));
        arena.words.extend_from_slice(fields);
        Ok(ObjRef {
            region,
            word,
            serial,
        })
    }

    /// Allocates a zero-initialized primitive array of length `len`.
    ///
    /// # Errors
    ///
    /// Allocation into a deleted region.
    pub fn alloc_array(
        &mut self,
        region: u32,
        elem: Prim,
        len: usize,
    ) -> Result<ObjRef, RegionError> {
        self.account(region, object_bytes(len))?;
        let serial = self.next_serial;
        self.next_serial += 1;
        let tag = match elem {
            Prim::Int => 0u64,
            Prim::Bool => 1,
            Prim::Float => 2,
        };
        let arena = &mut self.arenas[region as usize];
        let word = arena.words.len() as u32;
        arena.words.reserve(2 + len);
        arena.words.push(serial as u64);
        arena.words.push(ARRAY_BIT | (tag << 32) | len as u64);
        // All-zero words are the typed defaults: 0, false, 0.0.
        arena.words.resize(arena.words.len() + len, 0);
        Ok(ObjRef {
            region,
            word,
            serial,
        })
    }

    #[inline]
    fn meta(&self, r: ObjRef) -> u64 {
        self.arenas[r.region as usize].words[r.word as usize + 1]
    }

    /// The runtime class of the object at `r` (objects only).
    #[inline]
    pub fn class_of(&self, r: ObjRef) -> u32 {
        self.meta(r) as u32
    }

    /// The `i`-th recorded region argument of the object at `r`, or the
    /// heap when the object records fewer.
    #[inline]
    pub fn region_arg(&self, r: ObjRef, i: usize) -> u32 {
        let meta = self.meta(r);
        let nregions = ((meta >> 32) & 0xfff) as usize;
        if i < nregions {
            self.arenas[r.region as usize].words[r.word as usize + 2 + i] as u32
        } else {
            0
        }
    }

    /// Reads field `idx` of the object at `r`.
    #[inline]
    pub fn field(&self, r: ObjRef, idx: usize) -> u64 {
        let nregions = ((self.meta(r) >> 32) & 0xfff) as usize;
        self.arenas[r.region as usize].words[r.word as usize + 2 + nregions + idx]
    }

    /// Writes field `idx` of the object at `r`.
    #[inline]
    pub fn set_field(&mut self, r: ObjRef, idx: usize, word: u64) {
        let nregions = ((self.meta(r) >> 32) & 0xfff) as usize;
        self.arenas[r.region as usize].words[r.word as usize + 2 + nregions + idx] = word;
    }

    /// Length of the array at `r`.
    #[inline]
    pub fn array_len(&self, r: ObjRef) -> usize {
        self.meta(r) as u32 as usize
    }

    /// Reads element `idx` of the array at `r`; `None` out of bounds.
    #[inline]
    pub fn element(&self, r: ObjRef, idx: usize) -> Option<u64> {
        if idx >= self.array_len(r) {
            return None;
        }
        Some(self.arenas[r.region as usize].words[r.word as usize + 2 + idx])
    }

    /// Writes element `idx` of the array at `r`; `false` out of bounds.
    #[inline]
    pub fn set_element(&mut self, r: ObjRef, idx: usize, word: u64) -> bool {
        if idx >= self.array_len(r) {
            return false;
        }
        self.arenas[r.region as usize].words[r.word as usize + 2 + idx] = word;
        true
    }

    /// Reconstructs an [`ObjRef`] from a packed field word. The serial is
    /// read back from the object header; a reference into a deleted
    /// region gets a sentinel serial — its arena (and with it the real
    /// serial) is gone. For *checked* programs such a reference is never
    /// reachable (Theorem 1); on unchecked programs printing or
    /// returning it shows the sentinel where the interpreter's immortal
    /// store would show the original serial (see the engine-divergence
    /// note in [`crate::exec`]).
    #[inline]
    pub fn unpack_ref(&self, word: u64) -> Option<ObjRef> {
        if word == NULL_WORD {
            return None;
        }
        let region = (word >> 32) as u32;
        let at = word as u32;
        let arena = &self.arenas[region as usize];
        let serial = if arena.live {
            arena.words[at as usize] as u32
        } else {
            u32::MAX
        };
        Some(ObjRef {
            region,
            word: at,
            serial,
        })
    }
}

/// Packs a reference for storage in a `Ref` payload slot (the inverse of
/// [`RegionHeap::unpack_ref`]; public for the `cj-rvm` register tier).
#[inline]
pub fn pack_ref(r: ObjRef) -> u64 {
    ((r.region as u64) << 32) | r.word as u64
}

impl Default for RegionHeap {
    fn default() -> Self {
        RegionHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_the_interpreter_size_model() {
        let mut h = RegionHeap::new();
        let r = h.push();
        let obj = h.alloc_object(r, 3, &[r, 0], &[7, NULL_WORD]).unwrap();
        assert_eq!(h.stats().total_allocated, object_bytes(2));
        assert_eq!(h.class_of(obj), 3);
        assert_eq!(h.region_arg(obj, 0), r);
        assert_eq!(h.region_arg(obj, 1), 0);
        assert_eq!(h.region_arg(obj, 9), 0, "missing regions default to heap");
        assert_eq!(h.field(obj, 0), 7);
        h.set_field(obj, 1, 9);
        assert_eq!(h.field(obj, 1), 9);
        h.pop(r).unwrap();
        assert!(!h.is_live(r));
        assert_eq!(h.stats().peak_live, object_bytes(2));
        // Popping frees wholesale: a fresh region reuses no accounting.
        let r2 = h.push();
        assert_eq!(h.pop(r2), Ok(()));
        assert_eq!(h.stats().regions_created, 2);
    }

    #[test]
    fn arrays_round_trip_and_bound_check() {
        let mut h = RegionHeap::new();
        let a = h.alloc_array(0, Prim::Int, 3).unwrap();
        assert_eq!(h.array_len(a), 3);
        assert_eq!(h.element(a, 2), Some(0));
        assert!(h.set_element(a, 2, 42));
        assert_eq!(h.element(a, 2), Some(42));
        assert_eq!(h.element(a, 3), None);
        assert!(!h.set_element(a, 3, 1));
    }

    #[test]
    fn stack_discipline_and_dead_region_errors() {
        let mut h = RegionHeap::new();
        let a = h.push();
        let b = h.push();
        assert_eq!(h.pop(a), Err(RegionError::NotTopOfStack(RegionId(a))));
        h.pop(b).unwrap();
        h.pop(a).unwrap();
        assert_eq!(
            h.alloc_object(a, 0, &[a], &[]),
            Err(RegionError::DeadRegion(RegionId(a)))
        );
    }

    #[test]
    fn popped_chunks_are_recycled_bounded_and_invisible() {
        let mut h = RegionHeap::new();
        // Empty arenas contribute nothing to the pool.
        let r = h.push();
        h.pop(r).unwrap();
        assert_eq!(h.pooled_chunks(), 0);
        // A warm chunk is recycled and the next push reuses it.
        let r = h.push();
        h.alloc_object(r, 1, &[r], &[1, 2, 3]).unwrap();
        h.pop(r).unwrap();
        assert_eq!(h.pooled_chunks(), 1);
        let r2 = h.push();
        assert_eq!(h.chunks_reused(), 1);
        assert_eq!(h.pooled_chunks(), 0);
        // The recycled chunk starts logically empty: first allocation
        // lands at word 0 with fresh accounting, as with a new Vec.
        let obj = h.alloc_object(r2, 2, &[r2], &[9]).unwrap();
        assert_eq!(obj.word, 0);
        assert_eq!(h.field(obj, 0), 9);
        h.pop(r2).unwrap();
        // The pool never grows past its bound.
        let mut held = Vec::new();
        for _ in 0..POOL_LIMIT + 8 {
            let r = h.push();
            h.alloc_object(r, 1, &[r], &[0]).unwrap();
            held.push(r);
        }
        for r in held.into_iter().rev() {
            h.pop(r).unwrap();
        }
        assert!(h.pooled_chunks() <= POOL_LIMIT);
    }

    #[test]
    fn packed_refs_round_trip() {
        let mut h = RegionHeap::new();
        let r = h.push();
        let obj = h.alloc_object(r, 1, &[r], &[]).unwrap();
        let word = pack_ref(obj);
        assert_eq!(h.unpack_ref(word), Some(obj));
        assert_eq!(h.unpack_ref(NULL_WORD), None);
        h.pop(r).unwrap();
        let dangling = h.unpack_ref(word).unwrap();
        assert_eq!(dangling.serial, u32::MAX, "dead region hides the serial");
    }
}
