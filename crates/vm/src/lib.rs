//! # cj-vm — a region-allocating bytecode VM for annotated Core-Java
//!
//! The production-shaped execution path for the paper's target language:
//! a [lowering pass](lower) compiles the region-annotated kernel
//! ([`RProgram`](cj_infer::RProgram)) into a compact
//! [`CompiledProgram`] — per-method stack bytecode, constant pools,
//! vtables resolved at lowering time (virtual dispatch by slot index,
//! never name lookup), and explicit `RegPush`/`RegPop`/allocate-in-region
//! instructions mirroring `letreg` extents — and an [execution
//! engine](exec) runs it over a real [bump-arena region heap](heap):
//! each live region holds its objects' actual payloads (fields as word
//! slots) and frees them **wholesale** at `RegPop`.
//!
//! The VM is observationally identical to the tree-walking interpreter
//! in `cj-runtime` — same return value, same prints, same structured
//! [`RuntimeError`](cj_runtime::RuntimeError)s with the same spans, and
//! bit-equal [`SpaceStats`](cj_runtime::SpaceStats) (the Fig 8 space
//! ratios cross-check against both engines) — while executing an integer
//! factor faster on the Olden workloads. The differential property suite
//! (`tests/differential.rs`) enforces the equivalence on random
//! well-typed recursive programs.
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//! use cj_runtime::{RunConfig, Value};
//!
//! let (p, _) = infer_source(
//!     "class Box { Object item; }
//!      class M {
//!        static int main(int n) {
//!          int i = 0;
//!          while (i < n) { Box b = new Box(null); i = i + 1; }
//!          i
//!        }
//!      }",
//!     InferOptions::default(),
//! ).unwrap();
//! let compiled = cj_vm::lower_program(&p);
//! let vm = cj_vm::run_main(&compiled, &[Value::Int(10)], RunConfig::default()).unwrap();
//! let interp = cj_runtime::run_main(&p, &[Value::Int(10)], RunConfig::default()).unwrap();
//! assert_eq!(vm.value, interp.value);
//! // The per-iteration Box dies with its region in both engines —
//! // identical space accounting, but the VM freed real arena memory.
//! assert_eq!(vm.space, interp.space);
//! ```
#![forbid(unsafe_code)]

pub mod bytecode;
pub mod exec;
pub mod heap;
pub mod lower;

pub use bytecode::{CompiledMethod, CompiledProgram, Instr};
pub use exec::{run_main, run_static};
pub use lower::{lower_program, LowerCache, LowerStats};

#[cfg(test)]
mod tests {
    use super::*;
    use cj_infer::{infer_source, InferOptions, SubtypeMode};
    use cj_runtime::{Outcome, RunConfig, RuntimeError, Value};

    fn compile(src: &str) -> (cj_infer::RProgram, CompiledProgram) {
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        cj_check::check(&p).unwrap_or_else(|e| panic!("checker: {e}"));
        let compiled = lower_program(&p);
        (p, compiled)
    }

    fn run_both(src: &str, args: &[Value]) -> (Outcome, Outcome) {
        let (p, compiled) = compile(src);
        let vm = run_main(&compiled, args, RunConfig::default()).unwrap();
        let interp = cj_runtime::run_main(&p, args, RunConfig::default()).unwrap();
        assert_eq!(vm.value, interp.value, "values diverge");
        assert_eq!(vm.prints, interp.prints, "prints diverge");
        assert_eq!(vm.space, interp.space, "space stats diverge");
        (vm, interp)
    }

    #[test]
    fn arithmetic_and_loops() {
        let (vm, _) = run_both(
            "class M { static int main(int n) {
               int s = 0; int i = 1;
               while (i <= n) { s = s + i; i = i + 1; }
               s
             } }",
            &[Value::Int(100)],
        );
        assert_eq!(vm.value, Value::Int(5050));
    }

    #[test]
    fn objects_fields_dispatch_and_overrides() {
        let (vm, _) = run_both(
            "class A { int m() { 1 } int twice() { this.m() * 2 } }
             class B extends A { int m() { 2 } }
             class C extends B { int extra() { 9 } int m() { 3 } }
             class M {
               static int main() {
                 A a = new A();
                 A b = new B();
                 A c = new C();
                 a.twice() * 100 + b.twice() * 10 + c.twice()
               }
             }",
            &[],
        );
        assert_eq!(vm.value, Value::Int(246));
    }

    #[test]
    fn recursion_regions_and_reuse() {
        let (vm, _) = run_both(
            "class List { int value; List next; }
             class M {
               static List build(int n) {
                 if (n == 0) { (List) null } else { new List(n, build(n - 1)) }
               }
               static int sum(List l) {
                 if (l == null) { 0 } else { l.value + sum(l.next) }
               }
               static int main(int n) { sum(build(n)) }
             }",
            &[Value::Int(10)],
        );
        assert_eq!(vm.value, Value::Int(55));
    }

    #[test]
    fn per_iteration_regions_are_reclaimed_for_real() {
        let (vm, _) = run_both(
            "class Box { Object item; }
             class M {
               static int main(int n) {
                 int i = 0;
                 while (i < n) { Box b = new Box(null); i = i + 1; }
                 i
               }
             }",
            &[Value::Int(1000)],
        );
        assert_eq!(vm.space.regions_created, 1000);
        assert!(vm.space.space_ratio() < 0.01);
    }

    #[test]
    fn arrays_floats_prints_and_logic() {
        let (vm, _) = run_both(
            "class M { static int main(int n) {
               int[] a = new int[n];
               int i = 0;
               while (i < n) { a[i] = i * i; i = i + 1; }
               float f = 2.5;
               print(f * 2.0);
               print(a[n - 1]);
               bool ok = n > 1 && a[0] == 0 || n < 0;
               print(ok);
               a[n - 1] + a.length
             } }",
            &[Value::Int(10)],
        );
        assert_eq!(vm.value, Value::Int(91));
        assert_eq!(vm.prints, vec!["5", "81", "true"]);
    }

    #[test]
    fn runtime_errors_match_interpreter_spans() {
        let cases = [
            (
                "class Cell { int v; }
                 class M { static int main() { Cell c = (Cell) null; c.v } }",
                vec![],
            ),
            (
                "class M { static int main(int n) { 10 / n } }",
                vec![Value::Int(0)],
            ),
            (
                "class M { static int main(int n) { int[] a = new int[2]; a[n] } }",
                vec![Value::Int(5)],
            ),
            (
                "class M { static int main(int n) { int[] a = new int[n]; a.length } }",
                vec![Value::Int(-3)],
            ),
            (
                "class A { int x; } class B extends A { int y; }
                 class M { static int main() { A a = new A(0); B b = (B) a; 1 } }",
                vec![],
            ),
        ];
        for (src, args) in cases {
            let (p, compiled) = compile(src);
            let vm = run_main(&compiled, &args, RunConfig::default()).unwrap_err();
            let interp = cj_runtime::run_main(&p, &args, RunConfig::default()).unwrap_err();
            assert_eq!(vm, interp, "error divergence on {src}");
            assert_eq!(vm.span(), interp.span(), "span divergence on {src}");
        }
    }

    #[test]
    fn step_and_depth_limits_are_structured() {
        let (_, compiled) = compile("class M { static int main() { while (true) { } 0 } }");
        let err = run_main(
            &compiled,
            &[],
            RunConfig {
                step_limit: 1000,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimit));

        let (_, compiled) =
            compile("class M { static int f(int n) { f(n + 1) } static int main() { f(0) } }");
        let err = run_main(
            &compiled,
            &[],
            RunConfig {
                max_depth: 64,
                ..RunConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::DepthLimit));
    }

    #[test]
    fn erase_regions_is_a_noop_on_results() {
        let src = "class Pair { Object a; Object b; }
             class M { static int main(int n) {
               int i = 0;
               while (i < n) { Pair p = new Pair(null, null); i = i + 1; }
               i
             } }";
        let (_, compiled) = compile(src);
        let cfg = RunConfig {
            erase_regions: true,
            ..RunConfig::default()
        };
        let erased = run_main(&compiled, &[Value::Int(5)], cfg).unwrap();
        assert_eq!(erased.value, Value::Int(5));
        assert_eq!(erased.space.regions_created, 0, "letreg erased");
        assert!(
            (erased.space.space_ratio() - 1.0).abs() < 1e-9,
            "everything lives in the heap"
        );
    }

    #[test]
    fn bad_main_args_and_missing_main() {
        let (_, compiled) = compile("class M { static int main(int n) { n } }");
        assert!(matches!(
            run_main(&compiled, &[], RunConfig::default()).unwrap_err(),
            RuntimeError::BadMainArgs
        ));
        let (_, compiled) = compile("class M { static int helper(int n) { n } }");
        assert!(matches!(
            run_main(&compiled, &[], RunConfig::default()).unwrap_err(),
            RuntimeError::NoMain
        ));
    }

    #[test]
    fn lower_cache_reuses_unchanged_methods() {
        let src_a = "class Cell { Object item; Object get() { this.item } }
             class M { static int main() { 1 } }";
        let src_b = "class Cell { Object item; Object get() { this.item } }
             class M { static int main() { 2 } }";
        let (pa, _) = infer_source(src_a, InferOptions::default()).unwrap();
        let (pb, _) = infer_source(src_b, InferOptions::default()).unwrap();
        let mut cache = LowerCache::new();
        let (first, s1) = cache.lower(&pa);
        assert_eq!(s1.methods_reused, 0);
        assert!(s1.methods_lowered >= 2);
        // Identical program: everything is reused.
        let (again, s2) = cache.lower(&pa);
        assert_eq!(s2.methods_lowered, 0);
        assert_eq!(s2.methods_reused, s1.methods_lowered);
        assert!(std::ptr::eq(
            std::sync::Arc::as_ptr(&first.methods[0]),
            std::sync::Arc::as_ptr(&again.methods[0])
        ));
        // One edited body: exactly one method re-lowers.
        let (_, s3) = cache.lower(&pb);
        assert_eq!(s3.methods_lowered, 1, "{s3:?}");
        assert_eq!(s3.methods_reused, s1.methods_lowered - 1);
    }

    #[test]
    fn lowering_is_deterministic_across_modes() {
        let src = "class RList { int value; RList next; }
             class M {
               static int depth(RList p, int d) {
                 if (d == 0) { count(p) } else {
                   RList p2 = new RList(d, p);
                   depth(p2, d - 1)
                 }
               }
               static int count(RList p) {
                 if (p == null) { 0 } else { 1 + count(p.next) }
               }
               static int main(int d) { depth((RList) null, d) }
             }";
        for mode in SubtypeMode::ALL {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            let compiled = lower_program(&p);
            let vm = run_main(&compiled, &[Value::Int(40)], RunConfig::default())
                .unwrap_or_else(|e| panic!("{mode}: {e}"));
            let interp =
                cj_runtime::run_main_big_stack(&p, &[Value::Int(40)], RunConfig::default())
                    .unwrap();
            assert_eq!(vm.value, interp.value, "{mode}");
            assert_eq!(vm.space, interp.space, "{mode}");
        }
    }
}
