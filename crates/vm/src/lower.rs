//! Lowering: region-annotated kernel ([`RProgram`]) → [`CompiledProgram`].
//!
//! Everything name-shaped is resolved here, once: virtual dispatch becomes
//! a vtable-slot index, casts a subclass-matrix read, field access a
//! constructor-order offset with a baked-in representation, and every
//! region mention a frame-local region slot (abstraction parameters first,
//! then one slot per `letreg` binding — shadowing gets fresh slots, so
//! `RegPush`/`RegPop` always address the binding they delimit).
//!
//! # Incremental re-lowering
//!
//! [`LowerCache`] memoizes compiled methods by a structural fingerprint:
//! as long as the program's *shape* (class hierarchy, signatures, region
//! arities — everything that positions vtable slots and function indices)
//! is unchanged, an unchanged method body is reused as-is and only edited
//! methods are re-lowered. This mirrors the per-method reuse of
//! [`cj_infer::InferCache`] one layer down: an incremental revision that
//! re-infers one body also re-lowers exactly one body.

use crate::bytecode::{
    ArraySite, CallSite, CallTarget, CastSite, CompiledMethod, CompiledProgram, Instr, Lit,
    NewSite, RegRef, SlotTy,
};
use cj_frontend::ast::BinOp;
use cj_frontend::kernel::KMethod;
use cj_frontend::span::Span;
use cj_frontend::types::{ClassId, MethodId, NType, Prim, VarId};
use cj_frontend::Symbol;
use cj_infer::rast::{RExpr, RExprKind, RMethod, RProgram};
use cj_regions::var::RegVar;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Work counters of one [`LowerCache::lower`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Methods actually lowered this call.
    pub methods_lowered: usize,
    /// Methods reused from the cache (unchanged fingerprint).
    pub methods_reused: usize,
}

/// A per-method lowering memo; see the module docs.
#[derive(Debug, Default)]
pub struct LowerCache {
    shape: Option<u64>,
    methods: HashMap<MethodId, (u64, Arc<CompiledMethod>)>,
}

impl LowerCache {
    /// An empty cache.
    pub fn new() -> LowerCache {
        LowerCache::default()
    }

    /// Lowers `p`, reusing every cached method whose structural
    /// fingerprint is unchanged since the last call. A shape change
    /// (anything affecting vtable slots, function indices, field layout
    /// or region arities) drops the whole cache first.
    pub fn lower(&mut self, p: &RProgram) -> (CompiledProgram, LowerStats) {
        let mut span = cj_trace::span("pipeline", "lower");
        let shape = shape_fingerprint(p);
        if self.shape != Some(shape) {
            self.methods.clear();
            self.shape = Some(shape);
        }
        let tables = GlobalTables::build(p);
        let mut stats = LowerStats::default();
        let mut methods = Vec::new();
        for (id, rm) in p.all_rmethods() {
            let km = p.kernel.method(id);
            let fp = method_fingerprint(km, rm);
            match self.methods.get(&id) {
                Some((cached, method)) if *cached == fp => {
                    methods.push(Arc::clone(method));
                    stats.methods_reused += 1;
                }
                _ => {
                    let method = Arc::new(lower_method(p, id, km, rm, &tables));
                    self.methods.insert(id, (fp, Arc::clone(&method)));
                    methods.push(method);
                    stats.methods_lowered += 1;
                }
            }
        }
        let program = CompiledProgram {
            methods,
            main: tables.main.and_then(|id| tables.func_of.get(&id).copied()),
            func_of: tables.func_of,
            vtables: tables.vtables,
            subclass: tables.subclass,
        };
        span.add("methods_lowered", stats.methods_lowered as u64);
        span.add("methods_reused", stats.methods_reused as u64);
        (program, stats)
    }
}

/// One-shot lowering without a cache.
pub fn lower_program(p: &RProgram) -> CompiledProgram {
    LowerCache::new().lower(p).0
}

// ---- global tables ---------------------------------------------------------

struct GlobalTables {
    func_of: HashMap<MethodId, u32>,
    /// Per class: method name → vtable slot.
    vslots: Vec<HashMap<Symbol, u32>>,
    vtables: Vec<Vec<u32>>,
    subclass: Vec<Vec<bool>>,
    main: Option<MethodId>,
}

impl GlobalTables {
    fn build(p: &RProgram) -> GlobalTables {
        let table = &p.kernel.table;
        let func_of: HashMap<MethodId, u32> = p
            .all_rmethods()
            .enumerate()
            .map(|(i, (id, _))| (id, i as u32))
            .collect();

        // Vtables: process superclasses before subclasses (sort by depth;
        // ties by id for determinism). A subclass inherits its parent's
        // slot map and table, overrides in place, and appends new names.
        let n = table.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (table.class(ClassId(i as u32)).depth, i));
        let mut vslots: Vec<HashMap<Symbol, u32>> = vec![HashMap::new(); n];
        let mut vtables: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &i in &order {
            let info = table.class(ClassId(i as u32));
            let (mut slots, mut vtable) = match info.superclass {
                Some(parent) => (
                    vslots[parent.index()].clone(),
                    vtables[parent.index()].clone(),
                ),
                None => (HashMap::new(), Vec::new()),
            };
            for (m, sig) in info.own_methods.iter().enumerate() {
                let func = func_of[&MethodId::Instance(info.id, m as u32)];
                match slots.get(&sig.name) {
                    Some(&slot) => vtable[slot as usize] = func,
                    None => {
                        slots.insert(sig.name, vtable.len() as u32);
                        vtable.push(func);
                    }
                }
            }
            vslots[i] = slots;
            vtables[i] = vtable;
        }

        let subclass = (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| table.is_subclass(ClassId(a as u32), ClassId(b as u32)))
                    .collect()
            })
            .collect();
        let main = table
            .lookup_static(Symbol::intern("main"))
            .map(|(i, _)| MethodId::Static(i));
        GlobalTables {
            func_of,
            vslots,
            vtables,
            subclass,
            main,
        }
    }
}

// ---- fingerprints ----------------------------------------------------------

/// Fingerprint of everything that positions global lowering artifacts:
/// the class hierarchy and method/field signatures (vtable slots, function
/// indices, field offsets and representations) plus per-class region
/// arities (call-site tails). When this changes, no per-method code can
/// be reused.
pub fn shape_fingerprint(p: &RProgram) -> u64 {
    let table = &p.kernel.table;
    let mut h = DefaultHasher::new();
    for info in table.classes() {
        info.name.as_str().hash(&mut h);
        info.superclass.hash(&mut h);
        for f in table.all_fields(info.id) {
            f.ty.hash(&mut h);
        }
        0xabu8.hash(&mut h);
        for m in &info.own_methods {
            m.name.as_str().hash(&mut h);
        }
        0xcdu8.hash(&mut h);
    }
    for s in table.statics() {
        s.name.as_str().hash(&mut h);
    }
    for rc in &p.classes {
        rc.params.len().hash(&mut h);
    }
    h.finish()
}

/// Structural fingerprint of one annotated method: everything its
/// lowering consumes — variable types, parameters, region-parameter
/// *positions*, and the full body including spans (error spans are baked
/// into the code).
///
/// Region variables are hashed **α-invariantly**, as the frame slot the
/// lowerer would assign them (abstraction-parameter position, or
/// `letreg`-binding order) — raw region ids drift across incremental
/// revisions even for untouched methods, but the generated bytecode only
/// ever mentions slots, so slot-equal methods compile identically.
pub fn method_fingerprint(km: &KMethod, rm: &RMethod) -> u64 {
    let mut h = DefaultHasher::new();
    km.is_static.hash(&mut h);
    for v in &km.vars {
        v.ty.hash(&mut h);
    }
    km.params.hash(&mut h);
    rm.abs_params.len().hash(&mut h);
    rm.mparams.len().hash(&mut h);
    let mut env = RegCanon {
        slots: rm
            .abs_params
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u16))
            .collect(),
        next: rm.abs_params.len() as u16,
    };
    hash_rexpr(&rm.body, &mut env, &mut h);
    h.finish()
}

/// The fingerprint's mirror of the lowerer's region-slot assignment.
struct RegCanon {
    slots: HashMap<RegVar, u16>,
    next: u16,
}

fn hash_span(s: Span, h: &mut DefaultHasher) {
    s.lo.hash(h);
    s.hi.hash(h);
}

fn hash_reg(r: RegVar, env: &RegCanon, h: &mut DefaultHasher) {
    if r.is_heap() {
        0xffffu16.hash(h);
    } else {
        match env.slots.get(&r) {
            Some(&s) => s.hash(h),
            None => 0xfffeu16.hash(h), // lowers to Heap
        }
    }
}

fn hash_regs(rs: &[RegVar], env: &RegCanon, h: &mut DefaultHasher) {
    for &r in rs {
        hash_reg(r, env, h);
    }
    0xeeu8.hash(h);
}

fn hash_rexpr(e: &RExpr, env: &mut RegCanon, h: &mut DefaultHasher) {
    std::mem::discriminant(&e.kind).hash(h);
    hash_span(e.span, h);
    match &e.kind {
        RExprKind::Unit | RExprKind::Null => {}
        RExprKind::Int(v) => v.hash(h),
        RExprKind::Bool(v) => v.hash(h),
        RExprKind::Float(v) => v.to_bits().hash(h),
        RExprKind::Var(v) => v.hash(h),
        RExprKind::Field(v, fr) => {
            v.hash(h);
            fr.index.hash(h);
        }
        RExprKind::AssignVar(v, rhs) => {
            v.hash(h);
            hash_rexpr(rhs, env, h);
        }
        RExprKind::AssignField(v, fr, rhs) => {
            v.hash(h);
            fr.index.hash(h);
            hash_rexpr(rhs, env, h);
        }
        RExprKind::New {
            class,
            regions,
            args,
        } => {
            class.hash(h);
            hash_regs(regions, env, h);
            args.hash(h);
        }
        RExprKind::NewArray { elem, region, len } => {
            elem.hash(h);
            hash_reg(*region, env, h);
            hash_rexpr(len, env, h);
        }
        RExprKind::Index(v, idx) => {
            v.hash(h);
            hash_rexpr(idx, env, h);
        }
        RExprKind::AssignIndex(v, idx, val) => {
            v.hash(h);
            hash_rexpr(idx, env, h);
            hash_rexpr(val, env, h);
        }
        RExprKind::ArrayLen(v) => v.hash(h),
        RExprKind::CallVirtual {
            recv,
            method,
            inst,
            args,
        } => {
            recv.hash(h);
            method.hash(h);
            hash_regs(inst, env, h);
            args.hash(h);
        }
        RExprKind::CallStatic { method, inst, args } => {
            method.hash(h);
            hash_regs(inst, env, h);
            args.hash(h);
        }
        RExprKind::Seq(a, b) => {
            hash_rexpr(a, env, h);
            hash_rexpr(b, env, h);
        }
        RExprKind::Let { var, init, body } => {
            var.hash(h);
            init.is_some().hash(h);
            if let Some(i) = init {
                hash_rexpr(i, env, h);
            }
            hash_rexpr(body, env, h);
        }
        RExprKind::Letreg(r, inner) => {
            // Mirror the lowerer: the binder takes the next fresh slot,
            // shadowing any outer binding of the same variable.
            let slot = env.next;
            env.next += 1;
            slot.hash(h);
            let shadowed = env.slots.insert(*r, slot);
            hash_rexpr(inner, env, h);
            match shadowed {
                Some(old) => {
                    env.slots.insert(*r, old);
                }
                None => {
                    env.slots.remove(r);
                }
            }
        }
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            hash_rexpr(cond, env, h);
            hash_rexpr(then_e, env, h);
            hash_rexpr(else_e, env, h);
        }
        RExprKind::While { cond, body } => {
            hash_rexpr(cond, env, h);
            hash_rexpr(body, env, h);
        }
        RExprKind::Cast { class, var, .. } => {
            class.hash(h);
            var.hash(h);
        }
        RExprKind::Unary(op, a) => {
            std::mem::discriminant(op).hash(h);
            hash_rexpr(a, env, h);
        }
        RExprKind::Binary(op, a, b) => {
            std::mem::discriminant(op).hash(h);
            hash_rexpr(a, env, h);
            hash_rexpr(b, env, h);
        }
        RExprKind::Print(a) => hash_rexpr(a, env, h),
    }
}

// ---- per-method lowering ---------------------------------------------------

fn slot_ty(ty: NType) -> SlotTy {
    match ty {
        NType::Prim(Prim::Int) => SlotTy::Int,
        NType::Prim(Prim::Bool) => SlotTy::Bool,
        NType::Prim(Prim::Float) => SlotTy::Float,
        NType::Class(_) | NType::Array(_) | NType::Null => SlotTy::Ref,
        NType::Void => unreachable!("void payload slot"),
    }
}

fn lit_default(ty: NType) -> Lit {
    match ty {
        NType::Prim(Prim::Int) => Lit::Int(0),
        NType::Prim(Prim::Bool) => Lit::Bool(false),
        NType::Prim(Prim::Float) => Lit::Float(0.0),
        NType::Void => Lit::Unit,
        _ => Lit::Null,
    }
}

fn lit_eq(a: Lit, b: Lit) -> bool {
    match (a, b) {
        (Lit::Float(x), Lit::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

struct FnLowerer<'a> {
    p: &'a RProgram,
    km: &'a KMethod,
    tables: &'a GlobalTables,
    code: Vec<Instr>,
    spans: Vec<Span>,
    consts: Vec<Lit>,
    news: Vec<NewSite>,
    arrays: Vec<ArraySite>,
    calls: Vec<CallSite>,
    casts: Vec<CastSite>,
    reg_slots: HashMap<RegVar, u16>,
    next_reg_slot: u16,
}

fn lower_method(
    p: &RProgram,
    id: MethodId,
    km: &KMethod,
    rm: &RMethod,
    tables: &GlobalTables,
) -> CompiledMethod {
    let mut lo = FnLowerer {
        p,
        km,
        tables,
        code: Vec::new(),
        spans: Vec::new(),
        consts: Vec::new(),
        news: Vec::new(),
        arrays: Vec::new(),
        calls: Vec::new(),
        casts: Vec::new(),
        reg_slots: rm
            .abs_params
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u16))
            .collect(),
        next_reg_slot: rm.abs_params.len() as u16,
    };
    lo.lower(&rm.body);
    lo.emit(Instr::Ret, rm.body.span);
    CompiledMethod {
        name: p.kernel.method_name(id),
        code: lo.code,
        spans: lo.spans,
        consts: lo.consts,
        defaults: km.vars.iter().map(|v| lit_default(v.ty)).collect(),
        params: km.params.iter().map(|v| v.index() as u16).collect(),
        has_this: !km.is_static,
        class_params: (rm.abs_params.len() - rm.mparams.len()) as u16,
        abs_params: rm.abs_params.len() as u16,
        region_slots: lo.next_reg_slot,
        news: lo.news,
        arrays: lo.arrays,
        calls: lo.calls,
        casts: lo.casts,
    }
}

impl FnLowerer<'_> {
    fn emit(&mut self, i: Instr, span: Span) {
        self.code.push(i);
        self.spans.push(span);
    }

    fn konst(&mut self, lit: Lit) -> u32 {
        match self.consts.iter().position(|&l| lit_eq(l, lit)) {
            Some(i) => i as u32,
            None => {
                self.consts.push(lit);
                (self.consts.len() - 1) as u32
            }
        }
    }

    fn emit_unit(&mut self, span: Span) {
        let u = self.konst(Lit::Unit);
        self.emit(Instr::Const(u), span);
    }

    /// Patches the jump at instruction `at` to target the current end of
    /// the code.
    fn patch_here(&mut self, at: usize) {
        let to = self.code.len() as u32;
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = to,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn reg_ref(&self, r: RegVar) -> RegRef {
        if r.is_heap() {
            return RegRef::Heap;
        }
        match self.reg_slots.get(&r) {
            Some(&s) => RegRef::Slot(s),
            // Unbound region variables resolve to the heap, exactly like
            // the interpreter's environment fallback.
            None => RegRef::Heap,
        }
    }

    fn var_slot(v: VarId) -> u16 {
        v.index() as u16
    }

    /// Field representation of constructor-order field `idx` of the class
    /// statically typing variable `v`.
    fn field_ty(&self, v: VarId, idx: u32) -> SlotTy {
        let class = self
            .km
            .var_ty(v)
            .as_class()
            .expect("field receiver has a class type");
        slot_ty(self.p.kernel.table.all_fields(class)[idx as usize].ty)
    }

    /// Element representation of the array statically typing variable
    /// `v`.
    fn elem_ty(&self, v: VarId) -> SlotTy {
        match self.km.var_ty(v) {
            NType::Array(p) => slot_ty(NType::Prim(p)),
            other => unreachable!("indexing a non-array {other}"),
        }
    }

    /// Lowers one expression; the emitted code leaves exactly one value
    /// on the operand stack.
    fn lower(&mut self, e: &RExpr) {
        match &e.kind {
            RExprKind::Unit => self.emit_unit(e.span),
            RExprKind::Int(v) => {
                let c = self.konst(Lit::Int(*v));
                self.emit(Instr::Const(c), e.span);
            }
            RExprKind::Bool(v) => {
                let c = self.konst(Lit::Bool(*v));
                self.emit(Instr::Const(c), e.span);
            }
            RExprKind::Float(v) => {
                let c = self.konst(Lit::Float(*v));
                self.emit(Instr::Const(c), e.span);
            }
            RExprKind::Null => {
                let c = self.konst(Lit::Null);
                self.emit(Instr::Const(c), e.span);
            }
            RExprKind::Var(v) => self.emit(Instr::LoadVar(Self::var_slot(*v)), e.span),
            RExprKind::Field(v, fr) => {
                let ty = self.field_ty(*v, fr.index);
                self.emit(
                    Instr::GetField {
                        var: Self::var_slot(*v),
                        idx: fr.index as u16,
                        ty,
                    },
                    e.span,
                );
            }
            RExprKind::AssignVar(v, rhs) => {
                self.lower(rhs);
                self.emit(Instr::StoreVar(Self::var_slot(*v)), e.span);
                self.emit_unit(e.span);
            }
            RExprKind::AssignField(v, fr, rhs) => {
                self.lower(rhs);
                let ty = self.field_ty(*v, fr.index);
                self.emit(
                    Instr::SetField {
                        var: Self::var_slot(*v),
                        idx: fr.index as u16,
                        ty,
                    },
                    e.span,
                );
                self.emit_unit(e.span);
            }
            RExprKind::New {
                class,
                regions,
                args,
            } => {
                let fields = self.p.kernel.table.all_fields(*class);
                let site = NewSite {
                    class: class.0,
                    regions: regions.iter().map(|&r| self.reg_ref(r)).collect(),
                    args: args
                        .iter()
                        .zip(&fields)
                        .map(|(&a, f)| (Self::var_slot(a), slot_ty(f.ty)))
                        .collect(),
                };
                self.news.push(site);
                self.emit(Instr::NewObj((self.news.len() - 1) as u32), e.span);
            }
            RExprKind::NewArray { elem, region, len } => {
                self.lower(len);
                self.arrays.push(ArraySite {
                    elem: *elem,
                    region: self.reg_ref(*region),
                });
                self.emit(Instr::NewArr((self.arrays.len() - 1) as u32), e.span);
            }
            RExprKind::Index(v, idx) => {
                self.lower(idx);
                let ty = self.elem_ty(*v);
                self.emit(
                    Instr::Index {
                        var: Self::var_slot(*v),
                        ty,
                    },
                    e.span,
                );
            }
            RExprKind::AssignIndex(v, idx, val) => {
                self.lower(idx);
                self.lower(val);
                let ty = self.elem_ty(*v);
                self.emit(
                    Instr::SetIndex {
                        var: Self::var_slot(*v),
                        ty,
                    },
                    e.span,
                );
                self.emit_unit(e.span);
            }
            RExprKind::ArrayLen(v) => self.emit(Instr::ArrayLen(Self::var_slot(*v)), e.span),
            RExprKind::CallVirtual {
                recv,
                method,
                inst,
                args,
            } => {
                let site = match method {
                    MethodId::Instance(c, i) => {
                        let name = self.p.kernel.table.class(*c).own_methods[*i as usize].name;
                        CallSite {
                            target: CallTarget::Virtual {
                                vslot: self.tables.vslots[c.index()][&name],
                                recv: Self::var_slot(*recv),
                            },
                            args: args.iter().map(|&a| Self::var_slot(a)).collect(),
                            inst: inst.iter().map(|&r| self.reg_ref(r)).collect(),
                            tail_start: self.p.rclass(*c).params.len() as u16,
                        }
                    }
                    MethodId::Static(_) => CallSite {
                        target: CallTarget::Static(self.tables.func_of[method]),
                        args: args.iter().map(|&a| Self::var_slot(a)).collect(),
                        inst: inst.iter().map(|&r| self.reg_ref(r)).collect(),
                        tail_start: 0,
                    },
                };
                self.calls.push(site);
                self.emit(Instr::Call((self.calls.len() - 1) as u32), e.span);
            }
            RExprKind::CallStatic { method, inst, args } => {
                self.calls.push(CallSite {
                    target: CallTarget::Static(self.tables.func_of[method]),
                    args: args.iter().map(|&a| Self::var_slot(a)).collect(),
                    inst: inst.iter().map(|&r| self.reg_ref(r)).collect(),
                    tail_start: 0,
                });
                self.emit(Instr::Call((self.calls.len() - 1) as u32), e.span);
            }
            RExprKind::Seq(a, b) => {
                self.lower(a);
                self.emit(Instr::Pop, a.span);
                self.lower(b);
            }
            RExprKind::Let { var, init, body } => {
                match init {
                    Some(init) => {
                        self.lower(init);
                        self.emit(Instr::StoreVar(Self::var_slot(*var)), e.span);
                    }
                    // Fresh declaration without initializer: reset the
                    // slot (loops re-enter Lets).
                    None => self.emit(Instr::ResetVar(Self::var_slot(*var)), e.span),
                }
                self.lower(body);
            }
            RExprKind::Letreg(r, inner) => {
                let slot = self.next_reg_slot;
                self.next_reg_slot += 1;
                let shadowed = self.reg_slots.insert(*r, slot);
                self.emit(Instr::RegPush(slot), e.span);
                self.lower(inner);
                self.emit(Instr::RegPop(slot), e.span);
                match shadowed {
                    Some(old) => {
                        self.reg_slots.insert(*r, old);
                    }
                    None => {
                        self.reg_slots.remove(r);
                    }
                }
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                self.lower(cond);
                let to_else = self.code.len();
                self.emit(Instr::JumpIfFalse(0), cond.span);
                self.lower(then_e);
                let to_end = self.code.len();
                self.emit(Instr::Jump(0), e.span);
                self.patch_here(to_else);
                self.lower(else_e);
                self.patch_here(to_end);
            }
            RExprKind::While { cond, body } => {
                let top = self.code.len() as u32;
                self.lower(cond);
                let to_end = self.code.len();
                self.emit(Instr::JumpIfFalse(0), cond.span);
                self.lower(body);
                self.emit(Instr::Pop, body.span);
                self.emit(Instr::Jump(top), e.span);
                self.patch_here(to_end);
                self.emit_unit(e.span);
            }
            RExprKind::Cast { class, var, .. } => {
                self.casts.push(CastSite {
                    var: Self::var_slot(*var),
                    class: class.0,
                });
                self.emit(Instr::Cast((self.casts.len() - 1) as u32), e.span);
            }
            RExprKind::Unary(op, a) => {
                self.lower(a);
                self.emit(Instr::Unary(*op), e.span);
            }
            RExprKind::Binary(op, a, b) => match op {
                // Short-circuit logic lowers to jumps, mirroring the
                // interpreter's evaluation order exactly.
                BinOp::And => {
                    self.lower(a);
                    let to_rhs = self.code.len();
                    self.emit(Instr::JumpIfTrue(0), a.span);
                    let f = self.konst(Lit::Bool(false));
                    self.emit(Instr::Const(f), e.span);
                    let to_end = self.code.len();
                    self.emit(Instr::Jump(0), e.span);
                    self.patch_here(to_rhs);
                    self.lower(b);
                    self.patch_here(to_end);
                }
                BinOp::Or => {
                    self.lower(a);
                    let to_rhs = self.code.len();
                    self.emit(Instr::JumpIfFalse(0), a.span);
                    let t = self.konst(Lit::Bool(true));
                    self.emit(Instr::Const(t), e.span);
                    let to_end = self.code.len();
                    self.emit(Instr::Jump(0), e.span);
                    self.patch_here(to_rhs);
                    self.lower(b);
                    self.patch_here(to_end);
                }
                _ => {
                    self.lower(a);
                    self.lower(b);
                    self.emit(Instr::Binary(*op), e.span);
                }
            },
            RExprKind::Print(a) => {
                self.lower(a);
                self.emit(Instr::Print, e.span);
                self.emit_unit(e.span);
            }
        }
    }
}
