//! The execution engine: a frame stack, an operand stack, and the
//! region-arena heap.
//!
//! Observable behaviour — return value, captured prints, [`SpaceStats`],
//! and structured [`RuntimeError`]s with their spans — is identical to
//! the tree-walking interpreter's (`cj_runtime::run_main`); the
//! differential property suite enforces this. `steps` in the returned
//! [`Outcome`] counts *instructions retired*, the VM's native work unit.
//!
//! The deliberate divergences — both reachable only by *unchecked*
//! programs, since the region checker proves such references are never
//! observed (Theorem 1): casting a reference whose region has been
//! deleted reports [`RuntimeError::DanglingAccess`] here (the arena
//! holding the object's class header is gone) where the interpreter's
//! immortal store would still answer, and printing or returning such a
//! reference shows a sentinel serial instead of the original one.

use crate::bytecode::{CallTarget, CompiledMethod, CompiledProgram, Instr, Lit, RegRef, SlotTy};
use crate::heap::{pack_ref, ObjRef, RegionHeap, NULL_WORD};
use cj_frontend::ast::{BinOp, UnOp};
use cj_frontend::span::Span;
use cj_frontend::types::MethodId;
use cj_runtime::store::ObjId;
use cj_runtime::{Outcome, RunConfig, RuntimeError, Value};
use std::fmt;
use std::sync::Arc;

#[cfg(doc)]
use cj_runtime::SpaceStats;

/// A VM-internal value. `Ref` carries the owning region and arena offset
/// (for access) plus the allocation serial (for observable identity).
#[derive(Debug, Clone, Copy)]
enum VmValue {
    Unit,
    Int(i64),
    Bool(bool),
    Float(f64),
    Null,
    Ref(ObjRef),
}

impl VmValue {
    fn as_int(self) -> i64 {
        match self {
            VmValue::Int(v) => v,
            _ => unreachable!("ill-typed int operand"),
        }
    }

    fn as_bool(self) -> bool {
        match self {
            VmValue::Bool(v) => v,
            _ => unreachable!("ill-typed bool operand"),
        }
    }
}

/// Mirrors `cj_runtime::Value`'s rendering exactly (prints must be
/// byte-identical across engines).
impl fmt::Display for VmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmValue::Unit => f.write_str("()"),
            VmValue::Int(v) => write!(f, "{v}"),
            VmValue::Bool(v) => write!(f, "{v}"),
            VmValue::Float(v) => write!(f, "{v}"),
            VmValue::Null => f.write_str("null"),
            VmValue::Ref(r) => write!(f, "obj@{}", r.serial),
        }
    }
}

fn lit_value(l: Lit) -> VmValue {
    match l {
        Lit::Unit => VmValue::Unit,
        Lit::Null => VmValue::Null,
        Lit::Int(v) => VmValue::Int(v),
        Lit::Bool(v) => VmValue::Bool(v),
        Lit::Float(v) => VmValue::Float(v),
    }
}

fn to_value(v: VmValue) -> Value {
    match v {
        VmValue::Unit => Value::Unit,
        VmValue::Int(x) => Value::Int(x),
        VmValue::Bool(x) => Value::Bool(x),
        VmValue::Float(x) => Value::Float(x),
        VmValue::Null => Value::Null,
        VmValue::Ref(r) => Value::Ref(ObjId(r.serial)),
    }
}

fn from_value(v: Value) -> Option<VmValue> {
    match v {
        Value::Unit => Some(VmValue::Unit),
        Value::Int(x) => Some(VmValue::Int(x)),
        Value::Bool(x) => Some(VmValue::Bool(x)),
        Value::Float(x) => Some(VmValue::Float(x)),
        Value::Null => Some(VmValue::Null),
        // Foreign object references cannot enter a fresh heap.
        Value::Ref(_) => None,
    }
}

/// Reference-identity equality, exactly the interpreter's `value_eq`.
fn value_eq(a: VmValue, b: VmValue) -> bool {
    match (a, b) {
        (VmValue::Int(x), VmValue::Int(y)) => x == y,
        (VmValue::Bool(x), VmValue::Bool(y)) => x == y,
        (VmValue::Float(x), VmValue::Float(y)) => x == y,
        (VmValue::Null, VmValue::Null) => true,
        (VmValue::Ref(x), VmValue::Ref(y)) => x.region == y.region && x.word == y.word,
        _ => false,
    }
}

/// Encodes a value into a payload word per the slot representation.
#[inline]
fn encode(ty: SlotTy, v: VmValue) -> u64 {
    match (ty, v) {
        (SlotTy::Int, VmValue::Int(x)) => x as u64,
        (SlotTy::Bool, VmValue::Bool(x)) => x as u64,
        (SlotTy::Float, VmValue::Float(x)) => x.to_bits(),
        (SlotTy::Ref, VmValue::Null) => NULL_WORD,
        (SlotTy::Ref, VmValue::Ref(r)) => pack_ref(r),
        _ => unreachable!("ill-typed payload store"),
    }
}

/// Frame bookkeeping: bases into the shared locals/regs/operand stacks.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: u32,
    pc: u32,
    locals: u32,
    regs: u32,
    stack: u32,
}

struct Vm<'a> {
    p: &'a CompiledProgram,
    heap: RegionHeap,
    stack: Vec<VmValue>,
    locals: Vec<VmValue>,
    /// Region slot values (region ids; 0 = heap) for every frame.
    regs: Vec<u32>,
    frames: Vec<Frame>,
    steps: u64,
    limit: u64,
    max_depth: u32,
    erase: bool,
    prints: Vec<String>,
    inst_buf: Vec<u32>,
    reg_buf: Vec<u32>,
    word_buf: Vec<u64>,
}

/// Runs the program's static `main` on the VM.
///
/// # Errors
///
/// Any [`RuntimeError`]; for checked programs, dangling-access errors
/// cannot occur.
pub fn run_main(
    p: &CompiledProgram,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let func = p.main.ok_or(RuntimeError::NoMain)?;
    run_func(p, func, args, cfg)
}

/// Runs an arbitrary method as the entry point (all abstraction region
/// parameters bound to the heap, like the interpreter's `run_static`).
///
/// # Errors
///
/// See [`run_main`].
///
/// # Panics
///
/// Panics when `id` is not part of the program.
pub fn run_static(
    p: &CompiledProgram,
    id: MethodId,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let func = *p.func_of.get(&id).expect("method exists in the program");
    run_func(p, func, args, cfg)
}

fn run_func(
    p: &CompiledProgram,
    func: u32,
    args: &[Value],
    cfg: RunConfig,
) -> Result<Outcome, RuntimeError> {
    let method = &p.methods[func as usize];
    if method.params.len() != args.len() {
        return Err(RuntimeError::BadMainArgs);
    }
    let mut vm = Vm {
        p,
        heap: RegionHeap::new(),
        stack: Vec::with_capacity(64),
        locals: Vec::with_capacity(256),
        regs: Vec::with_capacity(64),
        frames: Vec::with_capacity(64),
        steps: 0,
        limit: cfg.step_limit,
        max_depth: cfg.max_depth,
        erase: cfg.erase_regions,
        prints: Vec::new(),
        inst_buf: Vec::new(),
        reg_buf: Vec::new(),
        word_buf: Vec::new(),
    };
    vm.locals
        .extend(method.defaults.iter().map(|&d| lit_value(d)));
    for (k, &a) in args.iter().enumerate() {
        let v = from_value(a).ok_or(RuntimeError::BadMainArgs)?;
        vm.locals[method.params[k] as usize] = v;
    }
    // Entry-point region parameters are bound to the heap (slot value 0).
    vm.regs.resize(method.region_slots as usize, 0);
    vm.frames.push(Frame {
        func,
        pc: 0,
        locals: 0,
        regs: 0,
        stack: 0,
    });
    let mut span = cj_trace::span("pipeline", "vm-exec");
    let value = vm.run()?;
    span.add("steps", vm.steps);
    Ok(Outcome {
        value: to_value(value),
        space: vm.heap.stats(),
        steps: vm.steps,
        prints: vm.prints,
    })
}

impl Vm<'_> {
    #[inline]
    fn deref(&self, v: VmValue, span: Span) -> Result<ObjRef, RuntimeError> {
        match v {
            VmValue::Ref(r) => {
                if self.heap.is_live(r.region) {
                    Ok(r)
                } else {
                    Err(RuntimeError::DanglingAccess(span))
                }
            }
            _ => Err(RuntimeError::NullPointer(span)),
        }
    }

    #[inline]
    fn resolve(&self, rbase: usize, r: RegRef) -> u32 {
        match r {
            RegRef::Heap => 0,
            RegRef::Slot(s) => self.regs[rbase + s as usize],
        }
    }

    #[inline]
    fn decode(&self, ty: SlotTy, word: u64) -> VmValue {
        match ty {
            SlotTy::Int => VmValue::Int(word as i64),
            SlotTy::Bool => VmValue::Bool(word != 0),
            SlotTy::Float => VmValue::Float(f64::from_bits(word)),
            SlotTy::Ref => match self.heap.unpack_ref(word) {
                Some(r) => VmValue::Ref(r),
                None => VmValue::Null,
            },
        }
    }

    fn run(&mut self) -> Result<VmValue, RuntimeError> {
        'frames: loop {
            let frame = *self.frames.last().expect("active frame");
            let method: Arc<CompiledMethod> = Arc::clone(&self.p.methods[frame.func as usize]);
            let lbase = frame.locals as usize;
            let rbase = frame.regs as usize;
            let mut pc = frame.pc as usize;
            loop {
                self.steps += 1;
                if self.steps > self.limit {
                    return Err(RuntimeError::StepLimit);
                }
                match method.code[pc] {
                    Instr::Const(i) => self.stack.push(lit_value(method.consts[i as usize])),
                    Instr::LoadVar(v) => self.stack.push(self.locals[lbase + v as usize]),
                    Instr::StoreVar(v) => {
                        let val = self.stack.pop().expect("operand");
                        self.locals[lbase + v as usize] = val;
                    }
                    Instr::ResetVar(v) => {
                        self.locals[lbase + v as usize] = lit_value(method.defaults[v as usize]);
                    }
                    Instr::Pop => {
                        self.stack.pop();
                    }
                    Instr::GetField { var, idx, ty } => {
                        let r = self.deref(self.locals[lbase + var as usize], method.spans[pc])?;
                        let word = self.heap.field(r, idx as usize);
                        self.stack.push(self.decode(ty, word));
                    }
                    Instr::SetField { var, idx, ty } => {
                        let val = self.stack.pop().expect("operand");
                        let r = self.deref(self.locals[lbase + var as usize], method.spans[pc])?;
                        self.heap.set_field(r, idx as usize, encode(ty, val));
                    }
                    Instr::NewObj(s) => {
                        let site = &method.news[s as usize];
                        self.reg_buf.clear();
                        for &r in &site.regions {
                            let id = self.resolve(rbase, r);
                            self.reg_buf.push(id);
                        }
                        self.word_buf.clear();
                        for &(var, ty) in &site.args {
                            self.word_buf
                                .push(encode(ty, self.locals[lbase + var as usize]));
                        }
                        let obj = self.heap.alloc_object(
                            self.reg_buf[0],
                            site.class,
                            &self.reg_buf,
                            &self.word_buf,
                        )?;
                        self.stack.push(VmValue::Ref(obj));
                    }
                    Instr::NewArr(s) => {
                        let site = method.arrays[s as usize];
                        let n = self.stack.pop().expect("operand").as_int();
                        if n < 0 {
                            return Err(RuntimeError::NegativeLength(method.spans[pc]));
                        }
                        let region = self.resolve(rbase, site.region);
                        let obj = self.heap.alloc_array(region, site.elem, n as usize)?;
                        self.stack.push(VmValue::Ref(obj));
                    }
                    Instr::Index { var, ty } => {
                        let i = self.stack.pop().expect("operand").as_int();
                        let r = self.deref(self.locals[lbase + var as usize], method.spans[pc])?;
                        match self.heap.element(r, i as usize) {
                            Some(word) => self.stack.push(self.decode(ty, word)),
                            None => return Err(RuntimeError::IndexOutOfBounds(method.spans[pc])),
                        }
                    }
                    Instr::SetIndex { var, ty } => {
                        let val = self.stack.pop().expect("operand");
                        let i = self.stack.pop().expect("operand").as_int();
                        let r = self.deref(self.locals[lbase + var as usize], method.spans[pc])?;
                        if !self.heap.set_element(r, i as usize, encode(ty, val)) {
                            return Err(RuntimeError::IndexOutOfBounds(method.spans[pc]));
                        }
                    }
                    Instr::ArrayLen(var) => {
                        let r = self.deref(self.locals[lbase + var as usize], method.spans[pc])?;
                        self.stack.push(VmValue::Int(self.heap.array_len(r) as i64));
                    }
                    Instr::RegPush(slot) => {
                        // Region-erasure semantics: the letreg is a no-op
                        // and its region variable denotes the heap.
                        self.regs[rbase + slot as usize] =
                            if self.erase { 0 } else { self.heap.push() };
                    }
                    Instr::RegPop(slot) => {
                        if !self.erase {
                            self.heap.pop(self.regs[rbase + slot as usize])?;
                        }
                    }
                    Instr::Call(s) => {
                        if self.frames.len() as u32 > self.max_depth {
                            return Err(RuntimeError::DepthLimit);
                        }
                        let site = &method.calls[s as usize];
                        self.inst_buf.clear();
                        for &r in &site.inst {
                            let id = self.resolve(rbase, r);
                            self.inst_buf.push(id);
                        }
                        let (func, receiver) = match site.target {
                            CallTarget::Static(f) => (f, None),
                            CallTarget::Virtual { vslot, recv } => {
                                let r = self
                                    .deref(self.locals[lbase + recv as usize], method.spans[pc])?;
                                let class = self.heap.class_of(r);
                                (self.p.vtables[class as usize][vslot as usize], Some(r))
                            }
                        };
                        let callee = &self.p.methods[func as usize];
                        let new_lbase = self.locals.len();
                        self.locals
                            .extend(callee.defaults.iter().map(|&d| lit_value(d)));
                        if let Some(r) = receiver {
                            self.locals[new_lbase] = VmValue::Ref(r);
                        }
                        for (k, &a) in site.args.iter().enumerate() {
                            let v = self.locals[lbase + a as usize];
                            self.locals[new_lbase + callee.params[k] as usize] = v;
                        }
                        let new_rbase = self.regs.len();
                        self.regs
                            .resize(new_rbase + callee.region_slots as usize, 0);
                        match receiver {
                            // Instance target: class region parameters come
                            // from the receiver's recorded regions, method
                            // region parameters positionally from the
                            // declared instantiation tail.
                            Some(r) => {
                                let ncp = callee.class_params as usize;
                                for i in 0..ncp {
                                    self.regs[new_rbase + i] = self.heap.region_arg(r, i);
                                }
                                let tail = (site.tail_start as usize).min(self.inst_buf.len());
                                let nmp = callee.abs_params as usize - ncp;
                                for j in 0..nmp {
                                    self.regs[new_rbase + ncp + j] =
                                        self.inst_buf.get(tail + j).copied().unwrap_or(0);
                                }
                            }
                            None => {
                                for i in 0..callee.abs_params as usize {
                                    self.regs[new_rbase + i] =
                                        self.inst_buf.get(i).copied().unwrap_or(0);
                                }
                            }
                        }
                        self.frames.last_mut().expect("frame").pc = (pc + 1) as u32;
                        self.frames.push(Frame {
                            func,
                            pc: 0,
                            locals: new_lbase as u32,
                            regs: new_rbase as u32,
                            stack: self.stack.len() as u32,
                        });
                        continue 'frames;
                    }
                    Instr::Cast(s) => {
                        let site = method.casts[s as usize];
                        let v = self.locals[lbase + site.var as usize];
                        match v {
                            VmValue::Null => self.stack.push(VmValue::Null),
                            VmValue::Ref(r) => {
                                if !self.heap.is_live(r.region) {
                                    // See the module docs: the arena that
                                    // held the class header is gone.
                                    return Err(RuntimeError::DanglingAccess(method.spans[pc]));
                                }
                                let class = self.heap.class_of(r) as usize;
                                if self.p.subclass[class][site.class as usize] {
                                    self.stack.push(v);
                                } else {
                                    return Err(RuntimeError::CastFailed(method.spans[pc]));
                                }
                            }
                            _ => return Err(RuntimeError::CastFailed(method.spans[pc])),
                        }
                    }
                    Instr::Jump(t) => {
                        pc = t as usize;
                        continue;
                    }
                    Instr::JumpIfFalse(t) => {
                        if !self.stack.pop().expect("operand").as_bool() {
                            pc = t as usize;
                            continue;
                        }
                    }
                    Instr::JumpIfTrue(t) => {
                        if self.stack.pop().expect("operand").as_bool() {
                            pc = t as usize;
                            continue;
                        }
                    }
                    Instr::Unary(op) => {
                        let v = self.stack.pop().expect("operand");
                        self.stack.push(match (op, v) {
                            (UnOp::Neg, VmValue::Int(x)) => VmValue::Int(x.wrapping_neg()),
                            (UnOp::Neg, VmValue::Float(x)) => VmValue::Float(-x),
                            (UnOp::Not, VmValue::Bool(x)) => VmValue::Bool(!x),
                            _ => unreachable!("ill-typed unary"),
                        });
                    }
                    Instr::Binary(op) => {
                        let r = self.stack.pop().expect("operand");
                        let l = self.stack.pop().expect("operand");
                        self.stack.push(binary(op, l, r, method.spans[pc])?);
                    }
                    Instr::Print => {
                        let v = self.stack.pop().expect("operand");
                        self.prints.push(v.to_string());
                    }
                    Instr::Ret => {
                        let value = self.stack.pop().expect("return value");
                        let done = self.frames.pop().expect("frame");
                        self.locals.truncate(done.locals as usize);
                        self.regs.truncate(done.regs as usize);
                        self.stack.truncate(done.stack as usize);
                        if self.frames.is_empty() {
                            return Ok(value);
                        }
                        self.stack.push(value);
                        continue 'frames;
                    }
                }
                pc += 1;
            }
        }
    }
}

fn binary(op: BinOp, l: VmValue, r: VmValue, span: Span) -> Result<VmValue, RuntimeError> {
    use BinOp::*;
    use VmValue::*;
    Ok(match (op, l, r) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(_), Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
        (Div, Int(x), Int(y)) => Int(x.wrapping_div(y)),
        (Rem, Int(_), Int(0)) => return Err(RuntimeError::DivisionByZero(span)),
        (Rem, Int(x), Int(y)) => Int(x.wrapping_rem(y)),
        (Add, Float(x), Float(y)) => Float(x + y),
        (Sub, Float(x), Float(y)) => Float(x - y),
        (Mul, Float(x), Float(y)) => Float(x * y),
        (Div, Float(x), Float(y)) => Float(x / y),
        (Rem, Float(x), Float(y)) => Float(x % y),
        (Lt, Int(x), Int(y)) => Bool(x < y),
        (Le, Int(x), Int(y)) => Bool(x <= y),
        (Gt, Int(x), Int(y)) => Bool(x > y),
        (Ge, Int(x), Int(y)) => Bool(x >= y),
        (Lt, Float(x), Float(y)) => Bool(x < y),
        (Le, Float(x), Float(y)) => Bool(x <= y),
        (Gt, Float(x), Float(y)) => Bool(x > y),
        (Ge, Float(x), Float(y)) => Bool(x >= y),
        (Eq, x, y) => Bool(value_eq(x, y)),
        (Ne, x, y) => Bool(!value_eq(x, y)),
        _ => unreachable!("ill-typed binary"),
    })
}
