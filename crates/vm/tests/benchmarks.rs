//! Engine parity over the full benchmark suite: every Fig 8 (RegJava)
//! and Fig 9 (Olden) program, under every subtyping mode, produces a
//! byte-identical observable outcome — value, prints, and the complete
//! `SpaceStats` — on the VM and the interpreter (test inputs; the
//! `vm_bench` harness re-asserts this at paper scale).

use cj_benchmarks::all_benchmarks;
use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, RunConfig, Value};

#[test]
fn all_benchmarks_are_engine_identical_under_every_mode() {
    for b in all_benchmarks() {
        let args: Vec<Value> = b.test_input.iter().map(|&v| Value::Int(v)).collect();
        for mode in SubtypeMode::ALL {
            let (p, _) = infer_source(b.source, InferOptions::with_mode(mode))
                .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", b.name));
            let compiled = cj_vm::lower_program(&p);
            let vm = cj_vm::run_main(&compiled, &args, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} [{mode}] vm: {e}", b.name));
            let interp = run_main_big_stack(&p, &args, RunConfig::default())
                .unwrap_or_else(|e| panic!("{} [{mode}] interp: {e}", b.name));
            assert_eq!(
                vm.value.to_string(),
                interp.value.to_string(),
                "{} [{mode}]: value diverged",
                b.name
            );
            assert_eq!(vm.prints, interp.prints, "{} [{mode}]: prints", b.name);
            assert_eq!(vm.space, interp.space, "{} [{mode}]: space stats", b.name);
        }
    }
}
