//! Differential execution: the bytecode VM must be observationally
//! identical to the tree-walking interpreter.
//!
//! Random well-typed-by-construction recursive programs (the same shape
//! family as the repo-level Theorem 1 fuzzing) are inferred under every
//! subtyping mode, region-checked, and executed on **both** engines; the
//! returned value, the captured prints, and the full [`SpaceStats`]
//! (total allocated, peak live, regions, objects — hence every space
//! ratio) must be byte-identical. Deterministic fault programs then pin
//! that runtime *errors* — variant and span — also match (the `cj-vm`
//! unit suite covers the remaining fault classes).
//!
//! [`SpaceStats`]: cj_runtime::SpaceStats

use cj_infer::{infer_source, InferOptions, SubtypeMode};
use cj_runtime::{run_main_big_stack, RunConfig, Value};
use proptest::prelude::*;

// ---- generator (mirrors tests/props.rs's program shapes, plus prints) ------

#[derive(Debug, Clone)]
enum Op {
    /// `vX = mk0(3)`.
    Alloc(usize),
    /// `vA = vB`.
    Copy(usize, usize),
    /// `vA.self = vB` (guarded against null).
    Store(usize, usize),
    /// `print(vX.tag)` (guarded against null).
    Print(usize),
    /// Wrap the inner op in `if (flag) { … } else { }`.
    Branch(Box<Op>),
    /// Wrap the inner op in a 3-iteration loop.
    Loop(Box<Op>),
}

fn arb_op(nvars: usize) -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0..nvars).prop_map(Op::Alloc),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Copy(a, b)),
        (0..nvars, 0..nvars).prop_map(|(a, b)| Op::Store(a, b)),
        (0..nvars).prop_map(Op::Print),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|op| Op::Branch(Box::new(op))),
            inner.prop_map(|op| Op::Loop(Box::new(op))),
        ]
    })
}

fn render(nclasses: usize, nvars: usize, ops: &[Op]) -> String {
    let mut s = String::new();
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "class C{c} {{ int tag; C{target} link; C{c} self; }}\n"
        ));
    }
    s.push_str("class Gen {\n");
    for c in 0..nclasses {
        let target = (c + 1) % nclasses;
        s.push_str(&format!(
            "  static C{c} mk{c}(int depth) {{\n\
             \x20   if (depth <= 0) {{ (C{c}) null }}\n\
             \x20   else {{ new C{c}(depth, mk{target}(depth - 1), mk{c}(depth - 2)) }}\n\
             \x20 }}\n"
        ));
    }
    s.push_str("  static int main(bool flag) {\n");
    for v in 0..nvars {
        s.push_str(&format!("    C0 v{v} = mk0(2);\n"));
    }
    let mut loop_id = 0u32;
    for op in ops {
        render_op(op, &mut s, 4, &mut loop_id);
    }
    s.push_str("    int alive = 0;\n");
    for v in 0..nvars {
        s.push_str(&format!(
            "    if (v{v} != null) {{ alive = alive + v{v}.tag; }}\n"
        ));
    }
    s.push_str("    print(alive);\n    alive\n  }\n}\n");
    s
}

fn render_op(op: &Op, s: &mut String, indent: usize, loop_id: &mut u32) {
    let pad = " ".repeat(indent);
    match op {
        Op::Alloc(v) => s.push_str(&format!("{pad}v{v} = mk0(3);\n")),
        Op::Copy(a, b) => s.push_str(&format!("{pad}v{a} = v{b};\n")),
        Op::Store(a, b) => s.push_str(&format!("{pad}if (v{a} != null) {{ v{a}.self = v{b}; }}\n")),
        Op::Print(v) => s.push_str(&format!("{pad}if (v{v} != null) {{ print(v{v}.tag); }}\n")),
        Op::Branch(inner) => {
            s.push_str(&format!("{pad}if (flag) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}}}\n"));
        }
        Op::Loop(inner) => {
            let id = *loop_id;
            *loop_id += 1;
            s.push_str(&format!("{pad}int gl{id} = 0;\n"));
            s.push_str(&format!("{pad}while (gl{id} < 3) {{\n"));
            render_op(inner, s, indent + 2, loop_id);
            s.push_str(&format!("{pad}  gl{id} = gl{id} + 1;\n{pad}}}\n"));
        }
    }
}

fn clamp_op(op: &Op, nvars: usize) -> Op {
    match op {
        Op::Alloc(v) => Op::Alloc(v % nvars),
        Op::Copy(a, b) => Op::Copy(a % nvars, b % nvars),
        Op::Store(a, b) => Op::Store(a % nvars, b % nvars),
        Op::Print(v) => Op::Print(v % nvars),
        Op::Branch(inner) => Op::Branch(Box::new(clamp_op(inner, nvars))),
        Op::Loop(inner) => Op::Loop(Box::new(clamp_op(inner, nvars))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn random_recursive_programs_are_engine_identical(
        nclasses in 1usize..4,
        nvars in 1usize..4,
        ops in proptest::collection::vec(arb_op(3), 0..6),
        flag in any::<bool>(),
    ) {
        let ops: Vec<Op> = ops.iter().map(|op| clamp_op(op, nvars)).collect();
        let src = render(nclasses, nvars, &ops);
        for mode in SubtypeMode::ALL {
            let (p, _) = infer_source(&src, InferOptions::with_mode(mode))
                .unwrap_or_else(|e| panic!("[{mode}] inference failed: {e}\n{src}"));
            cj_check::check(&p).unwrap_or_else(|e| panic!("[{mode}] checker: {e}\n{src}"));
            let compiled = cj_vm::lower_program(&p);
            let args = [Value::Bool(flag)];
            let vm = cj_vm::run_main(&compiled, &args, RunConfig::default())
                .unwrap_or_else(|e| panic!("[{mode}] vm: {e}\n{src}"));
            let interp = run_main_big_stack(&p, &args, RunConfig::default())
                .unwrap_or_else(|e| panic!("[{mode}] interp: {e}\n{src}"));
            prop_assert_eq!(
                vm.value.to_string(),
                interp.value.to_string(),
                "[{}] value diverged\n{}", mode, src
            );
            prop_assert_eq!(&vm.prints, &interp.prints, "[{}] prints diverged\n{}", mode, src);
            prop_assert_eq!(vm.space, interp.space, "[{}] space diverged\n{}", mode, src);
        }
    }
}

/// Runtime faults carry the same variant *and the same source span* on
/// both engines — the structured diagnostics rendered from a `run`
/// failure are identical no matter the engine.
#[test]
fn fault_spans_are_engine_identical() {
    let cases: &[(&str, &[Value])] = &[
        (
            "class Node { int v; Node next; }
             class M {
               static int walk(Node n, int k) {
                 if (k == 0) { n.v } else { walk(n.next, k - 1) }
               }
               static int main(int k) { walk(new Node(7, (Node) null), k) }
             }",
            &[Value::Int(3)], // null deref inside recursion
        ),
        (
            "class M { static int main(int a, int b) { (a + b) / (a - b) } }",
            &[Value::Int(4), Value::Int(4)],
        ),
        (
            "class A { int x; } class B extends A { int y; }
             class M {
               static A pick(bool f) { if (f) { new B(1, 2) } else { new A(3) } }
               static int main(bool f) { B b = (B) pick(f); b.y }
             }",
            &[Value::Bool(false)],
        ),
    ];
    for (src, args) in cases {
        let (p, _) = infer_source(src, InferOptions::default()).unwrap();
        cj_check::check(&p).unwrap();
        let compiled = cj_vm::lower_program(&p);
        let vm = cj_vm::run_main(&compiled, args, RunConfig::default()).unwrap_err();
        let interp = run_main_big_stack(&p, args, RunConfig::default()).unwrap_err();
        assert_eq!(vm, interp, "error variant diverged on:\n{src}");
        assert_eq!(vm.span(), interp.span(), "error span diverged on:\n{src}");
    }
}
