//! A minimal, dependency-free stand-in for the crates.io `criterion`
//! bench harness, so `cargo bench` works in offline environments.
//!
//! It implements the subset of the criterion API the workspace benches
//! use — `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — with a plain warmup-then-measure timing loop
//! and per-benchmark mean/min reporting. Numbers are indicative, not
//! statistically modelled; swap the real criterion back in when network
//! access is available.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut bencher);
        let (mean, min) = bencher.summary();
        println!(
            "{}/{:<32} mean {:>12?}  min {:>12?}  ({} samples)",
            self.name,
            id,
            mean,
            min,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` repeatedly — a couple of warmup laps, then `sample_size`
    /// timed laps — recording one sample per timed lap.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.budget {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        (mean, min)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).bench_function("noop", |b| {
            b.iter(|| 1 + 1);
        });
        group.finish();
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.benchmark_group("demo").finish();
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
