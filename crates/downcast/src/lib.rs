//! # cj-downcast — downcast safety analysis (Sec 5)
//!
//! Downcasts `(cn) v` are region-unsafe in the basic system because regions
//! are lost at upcasts and cannot be recovered. This crate implements the
//! paper's compile-time remedy: a whole-program **backward flow analysis**
//! that computes, for every variable, method result and allocation site,
//! the set of classes its objects may later be downcast to, plus a verdict
//! for allocation sites whose objects can never satisfy any of those casts
//! (so padding need not be instantiated and the cast is *bound to fail*).
//!
//! Region inference (`cj-infer`) consumes these sets to drive its two
//! region-preservation strategies: equating lost regions with the object
//! region (technique 1) or padding declarations with extra regions
//! (technique 2).
//!
//! # Examples
//!
//! ```
//! use cj_frontend::typecheck::check_source;
//! use cj_downcast::analyze;
//!
//! let kp = check_source(
//!     "class A { }
//!      class B extends A { Object x; }
//!      class M { static B f(A a) { (B) a } }",
//! ).unwrap();
//! let analysis = analyze(&kp);
//! assert_eq!(analysis.downcast_count, 1);
//! ```
#![forbid(unsafe_code)]

pub mod flows;

pub use flows::{analyze, DowncastAnalysis, Node, SiteId, SiteInfo};

use cj_frontend::KProgram;

impl DowncastAnalysis {
    /// Structured warnings for allocation sites whose objects can never
    /// satisfy any downcast applied to them (*bound to fail*, Sec 5) —
    /// the analysis' diagnostic surface for drivers and the CLI.
    pub fn diagnostics(&self, kp: &KProgram) -> cj_diag::Diagnostics {
        self.doomed_sites
            .iter()
            .filter_map(|id| self.sites.iter().find(|s| s.id == *id))
            .map(|site| {
                let class = kp.table.name(site.class);
                let method = kp.method_name(site.method);
                cj_diag::Diagnostic::warning(
                    format!(
                        "`new {class}` in `{method}` can never satisfy the downcasts applied to it"
                    ),
                    site.span,
                )
                .with_code(cj_diag::codes::DOWNCAST)
                .with_label(
                    site.span,
                    "every later downcast of this object is bound to fail",
                )
                .with_note("padding is not instantiated for this site (Sec 5)")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cj_frontend::typecheck::check_source;
    use cj_frontend::types::{MethodId, VarId};
    use cj_frontend::KProgram;
    use std::collections::BTreeSet;

    fn kp(src: &str) -> KProgram {
        check_source(src).unwrap()
    }

    /// The Fig 7 program, adapted to Core-Java syntax. Classes A..E with
    /// the paper's hierarchy; `a` is downcast to B, C and (via `c`) D;
    /// the E allocation can satisfy none of them.
    const FIG7: &str = "
        class A { Object f1; }
        class B extends A { Object f2; }
        class C extends A { Object f3; }
        class D extends C { Object f4; }
        class E extends A { Object f5; Object f6; Object f7; }
        class Main {
            static void main(bool c1, bool c2) {
                A a; A a2;
                a2 = new A(null);
                if (c1) {
                    a = new B(null, null);      // lb
                } else {
                    if (c2) {
                        a = new C(null, null);  // lc
                    } else {
                        a = new E(null, null, null, null); // le
                    }
                }
                B b = (B) a;
                C c = (C) a;
                D d = (D) c;
            }
        }";

    fn names(kp: &KProgram, set: &BTreeSet<cj_frontend::ClassId>) -> Vec<&'static str> {
        set.iter().map(|&c| kp.table.name(c).as_str()).collect()
    }

    #[test]
    fn fig7_variable_sets() {
        let kp = kp(FIG7);
        let analysis = analyze(&kp);
        assert_eq!(analysis.downcast_count, 3);
        let main = MethodId::Static(0);
        let m = kp.method(main);
        let var_id = |name: &str| {
            VarId(
                m.vars
                    .iter()
                    .position(|v| v.name.as_str() == name)
                    .unwrap_or_else(|| panic!("var {name}")) as u32,
            )
        };
        // a ↦ {B, C, D}: directly cast to B and C, and D via c ← a.
        let a_set = analysis.var_set(main, var_id("a"));
        assert_eq!(names(&kp, &a_set), vec!["B", "C", "D"]);
        // c ↦ {D}.
        let c_set = analysis.var_set(main, var_id("c"));
        assert_eq!(names(&kp, &c_set), vec!["D"]);
        // a2 is never downcast.
        assert!(analysis.var_set(main, var_id("a2")).is_empty());
    }

    #[test]
    fn fig7_site_sets_and_doomed() {
        let kp = kp(FIG7);
        let analysis = analyze(&kp);
        // Sites: new A (a2), new B (lb), new C (lc), new E (le).
        let by_class: std::collections::HashMap<&str, SiteId> = analysis
            .sites
            .iter()
            .map(|s| (kp.table.name(s.class).as_str(), s.id))
            .collect();
        let lb = by_class["B"];
        let lc = by_class["C"];
        let le = by_class["E"];
        let la2 = by_class["A"];
        for site in [lb, lc, le] {
            let set = analysis.site_sets.get(&site).expect("flows into casts");
            assert_eq!(names(&kp, set), vec!["B", "C", "D"], "site {site:?}");
        }
        assert!(!analysis.site_sets.contains_key(&la2));
        // le can satisfy no cast in {B, C, D}: bound to fail.
        assert_eq!(analysis.doomed_sites, vec![le]);
        // lb satisfies (B) a, lc satisfies (C) a: not doomed.
        assert!(!analysis.doomed_sites.contains(&lb));
        assert!(!analysis.doomed_sites.contains(&lc));
    }

    #[test]
    fn flows_through_static_calls() {
        let kp = kp("
            class A { }
            class B extends A { Object x; }
            class M {
                static A id(A p) { p }
                static B f(A a) { (B) id(a) }
            }");
        let analysis = analyze(&kp);
        let id_m = kp
            .all_methods()
            .find(|(_, m)| m.name.as_str() == "id")
            .unwrap()
            .0;
        let f_m = kp
            .all_methods()
            .find(|(_, m)| m.name.as_str() == "f")
            .unwrap()
            .0;
        // The parameter of `id` (and f's `a`) may be downcast to B.
        let p_set = analysis.var_set(id_m, kp.method(id_m).params[0]);
        assert_eq!(names(&kp, &p_set), vec!["B"]);
        let a_set = analysis.var_set(f_m, kp.method(f_m).params[0]);
        assert_eq!(names(&kp, &a_set), vec!["B"]);
    }

    #[test]
    fn flows_through_fields() {
        let kp = kp("
            class A { }
            class B extends A { Object x; }
            class Box { A item; }
            class M {
                static B f(Box bx, A a) {
                    bx.item = a;
                    (B) bx.item
                }
            }");
        let analysis = analyze(&kp);
        let f_m = kp
            .all_methods()
            .find(|(_, m)| m.name.as_str() == "f")
            .unwrap()
            .0;
        // a flows into Box.item which is downcast.
        let a = kp.method(f_m).params[1];
        assert_eq!(names(&kp, &analysis.var_set(f_m, a)), vec!["B"]);
    }

    #[test]
    fn flows_through_dynamic_dispatch() {
        let kp = kp("
            class A { }
            class B extends A { Object x; }
            class Holder { A get(A p) { p } }
            class Sub extends Holder { A get(A p) { p } }
            class M {
                static B f(Holder h, A a) { (B) h.get(a) }
            }");
        let analysis = analyze(&kp);
        // Both Holder.get and Sub.get may be the callee; both params flow.
        for (id, m) in kp.all_methods() {
            if m.name.as_str() == "get" {
                let p = m.params[0];
                assert_eq!(names(&kp, &analysis.var_set(id, p)), vec!["B"]);
            }
        }
    }

    #[test]
    fn upcast_is_not_a_downcast() {
        let kp = kp("
            class A { }
            class B extends A { }
            class M { static A f(B b) { (A) b } }");
        let analysis = analyze(&kp);
        assert_eq!(analysis.downcast_count, 0);
        assert!(!analysis.any_downcasts());
    }

    #[test]
    fn no_casts_no_sets() {
        let kp = kp("class A { } class M { static A f() { new A() } }");
        let analysis = analyze(&kp);
        assert!(analysis.var_sets.is_empty());
        assert!(analysis.site_sets.is_empty());
        assert_eq!(analysis.sites.len(), 1);
    }

    #[test]
    fn return_flow_reaches_allocation() {
        let kp = kp("
            class A { }
            class B extends A { Object x; }
            class M {
                static A mk() { new B(null) }
                static B f() { (B) mk() }
            }");
        let analysis = analyze(&kp);
        // The B allocation inside mk() must carry the downcast set.
        let site = analysis
            .sites
            .iter()
            .find(|s| kp.table.name(s.class).as_str() == "B")
            .unwrap();
        let set = analysis.site_sets.get(&site.id).expect("set reaches site");
        assert_eq!(names(&kp, set), vec!["B"]);
        assert!(analysis.doomed_sites.is_empty());
    }
}
