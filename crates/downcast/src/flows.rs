//! Backward flow inference (Sec 5).
//!
//! The analysis gathers *capture edges*: `x ← y` means the value held by
//! `y` may be captured by `x` (assignment, parameter passing, returns,
//! field reads/writes). A downcast `(D) v` seeds the target class `D` at
//! `v`; downcast sets then propagate *backwards* along capture edges until
//! they reach the variables and allocation sites whose objects may be
//! subject to the cast — exactly the transitive closure of Fig 7.

use cj_frontend::kernel::{KExpr, KExprKind, KMethod, KProgram};
use cj_frontend::span::Span;
use cj_frontend::types::{ClassId, MethodId, NType, VarId};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A node of the flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// A method-local variable (including `this` and parameters).
    Var(MethodId, VarId),
    /// A field, identified by its declaring class and constructor index.
    Field(ClassId, u32),
    /// The result value of a method.
    Ret(MethodId),
    /// An object allocation site.
    Site(SiteId),
}

/// Identifies one `new cn(...)` expression; numbering is deterministic
/// (methods in program order, sites in pre-order within each body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// Metadata about an allocation site.
#[derive(Debug, Clone)]
pub struct SiteInfo {
    /// The site id.
    pub id: SiteId,
    /// Method containing the allocation.
    pub method: MethodId,
    /// Class being allocated.
    pub class: ClassId,
    /// Source location of the `new`.
    pub span: Span,
}

/// Result of the whole-program backward flow analysis.
#[derive(Debug, Clone, Default)]
pub struct DowncastAnalysis {
    /// Downcast set per variable: classes the variable's value may be
    /// downcast to (directly or after flowing onward).
    pub var_sets: HashMap<(MethodId, VarId), BTreeSet<ClassId>>,
    /// Downcast set per allocation site.
    pub site_sets: HashMap<SiteId, BTreeSet<ClassId>>,
    /// Downcast set of each method's result.
    pub ret_sets: HashMap<MethodId, BTreeSet<ClassId>>,
    /// All allocation sites, indexed by `SiteId`.
    pub sites: Vec<SiteInfo>,
    /// Sites whose allocated class cannot satisfy *any* downcast in its
    /// set: every downcast reaching objects from this site must fail, so
    /// region padding need not be instantiated for it (Sec 5).
    pub doomed_sites: Vec<SiteId>,
    /// Total number of downcast expressions found.
    pub downcast_count: usize,
}

impl DowncastAnalysis {
    /// The downcast set of a variable (empty if none).
    pub fn var_set(&self, m: MethodId, v: VarId) -> BTreeSet<ClassId> {
        self.var_sets.get(&(m, v)).cloned().unwrap_or_default()
    }

    /// Whether any flow in the program reaches a downcast.
    pub fn any_downcasts(&self) -> bool {
        self.downcast_count > 0
    }
}

/// Runs the analysis over a kernel program.
pub fn analyze(kp: &KProgram) -> DowncastAnalysis {
    let mut b = Builder {
        kp,
        edges: HashMap::new(),
        seeds: BTreeMap::new(),
        sites: Vec::new(),
        downcast_count: 0,
    };
    for (id, m) in kp.all_methods() {
        b.method(id, m);
    }
    b.propagate()
}

struct Builder<'a> {
    kp: &'a KProgram,
    /// `edges[x]` = nodes that `x` captures from; sets flow from `x` into
    /// each of them.
    edges: HashMap<Node, Vec<Node>>,
    seeds: BTreeMap<Node, BTreeSet<ClassId>>,
    sites: Vec<SiteInfo>,
    downcast_count: usize,
}

impl<'a> Builder<'a> {
    fn edge(&mut self, receiver: Node, source: Node) {
        self.edges.entry(receiver).or_default().push(source);
    }

    fn method(&mut self, id: MethodId, m: &KMethod) {
        let ret_ref = m.ret.is_reference();
        let recv = if ret_ref { Some(Node::Ret(id)) } else { None };
        self.expr(id, m, &m.body, recv);
    }

    /// Possible dynamic-dispatch targets of a call through `decl` on a
    /// receiver statically typed `recv_class`.
    fn dispatch_targets(&self, recv_class: ClassId, decl: MethodId) -> Vec<MethodId> {
        let MethodId::Instance(_, _) = decl else {
            return vec![decl];
        };
        let name = match decl {
            MethodId::Instance(c, i) => self.kp.table.class(c).own_methods[i as usize].name,
            MethodId::Static(_) => unreachable!(),
        };
        let mut out = Vec::new();
        for info in self.kp.table.classes() {
            if !self.kp.table.is_subclass(info.id, recv_class) {
                continue;
            }
            if let Some((declaring, _)) = self.kp.table.lookup_method(info.id, name) {
                let slot = self
                    .kp
                    .table
                    .class(declaring)
                    .own_methods
                    .iter()
                    .position(|mm| mm.name == name)
                    .expect("method present") as u32;
                let target = MethodId::Instance(declaring, slot);
                if !out.contains(&target) {
                    out.push(target);
                }
            }
        }
        out
    }

    fn expr(&mut self, id: MethodId, m: &KMethod, e: &KExpr, recv: Option<Node>) {
        match &e.kind {
            KExprKind::Unit
            | KExprKind::Int(_)
            | KExprKind::Bool(_)
            | KExprKind::Float(_)
            | KExprKind::Null
            | KExprKind::ArrayLen(_) => {}
            KExprKind::Var(v) => {
                if let Some(r) = recv {
                    if m.var_ty(*v).is_reference() {
                        self.edge(r, Node::Var(id, *v));
                    }
                }
            }
            KExprKind::Field(v, f) => {
                let _ = v;
                if let Some(r) = recv {
                    if e.ty.is_reference() {
                        self.edge(r, Node::Field(f.owner, f.index));
                    }
                }
            }
            KExprKind::AssignVar(v, rhs) => {
                let target = if m.var_ty(*v).is_reference() {
                    Some(Node::Var(id, *v))
                } else {
                    None
                };
                self.expr(id, m, rhs, target);
            }
            KExprKind::AssignField(v, f, rhs) => {
                let _ = v;
                let target = if rhs.ty.is_reference() {
                    Some(Node::Field(f.owner, f.index))
                } else {
                    None
                };
                self.expr(id, m, rhs, target);
            }
            KExprKind::New(class, args) => {
                let site = SiteId(self.sites.len() as u32);
                self.sites.push(SiteInfo {
                    id: site,
                    method: id,
                    class: *class,
                    span: e.span,
                });
                if let Some(r) = recv {
                    self.edge(r, Node::Site(site));
                }
                // Field initializers flow into the fields.
                for (f, &a) in self.kp.table.all_fields(*class).iter().zip(args) {
                    if f.ty.is_reference() {
                        self.edge(Node::Field(f.owner, f.index as u32), Node::Var(id, a));
                    }
                }
            }
            KExprKind::NewArray(_, len) => self.expr(id, m, len, None),
            KExprKind::Index(_, idx) => self.expr(id, m, idx, None),
            KExprKind::AssignIndex(_, idx, val) => {
                self.expr(id, m, idx, None);
                self.expr(id, m, val, None);
            }
            KExprKind::CallVirtual(recv_v, decl, args) => {
                let recv_class = match m.var_ty(*recv_v) {
                    NType::Class(c) => c,
                    _ => return,
                };
                for target in self.dispatch_targets(recv_class, *decl) {
                    let tm = self.kp.method(target);
                    // this-parameter capture.
                    self.edge(Node::Var(target, VarId(0)), Node::Var(id, *recv_v));
                    for (&p, &a) in tm.params.iter().zip(args) {
                        if tm.var_ty(p).is_reference() {
                            self.edge(Node::Var(target, p), Node::Var(id, a));
                        }
                    }
                    if let Some(r) = recv {
                        if tm.ret.is_reference() {
                            self.edge(r, Node::Ret(target));
                        }
                    }
                }
            }
            KExprKind::CallStatic(target, args) => {
                let tm = self.kp.method(*target);
                for (&p, &a) in tm.params.iter().zip(args) {
                    if tm.var_ty(p).is_reference() {
                        self.edge(Node::Var(*target, p), Node::Var(id, a));
                    }
                }
                if let Some(r) = recv {
                    if tm.ret.is_reference() {
                        self.edge(r, Node::Ret(*target));
                    }
                }
            }
            KExprKind::Seq(a, b) => {
                self.expr(id, m, a, None);
                self.expr(id, m, b, recv);
            }
            KExprKind::Let { var, init, body } => {
                if let Some(init) = init {
                    let target = if m.var_ty(*var).is_reference() {
                        Some(Node::Var(id, *var))
                    } else {
                        None
                    };
                    self.expr(id, m, init, target);
                }
                self.expr(id, m, body, recv);
            }
            KExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                self.expr(id, m, cond, None);
                self.expr(id, m, then_e, recv);
                self.expr(id, m, else_e, recv);
            }
            KExprKind::While { cond, body } => {
                self.expr(id, m, cond, None);
                self.expr(id, m, body, None);
            }
            KExprKind::Cast(target, v) => {
                if let NType::Class(src) = m.var_ty(*v) {
                    if *target != src && self.kp.table.is_subclass(*target, src) {
                        // A genuine downcast: seed the operand.
                        self.downcast_count += 1;
                        self.seeds
                            .entry(Node::Var(id, *v))
                            .or_default()
                            .insert(*target);
                    }
                }
                if let Some(r) = recv {
                    self.edge(r, Node::Var(id, *v));
                }
            }
            KExprKind::Unary(_, a) | KExprKind::Print(a) => self.expr(id, m, a, None),
            KExprKind::Binary(_, a, b) => {
                self.expr(id, m, a, None);
                self.expr(id, m, b, None);
            }
        }
    }

    fn propagate(self) -> DowncastAnalysis {
        let Builder {
            kp,
            edges,
            seeds,
            sites,
            downcast_count,
        } = self;
        let mut sets: HashMap<Node, BTreeSet<ClassId>> = HashMap::new();
        let mut work: VecDeque<Node> = VecDeque::new();
        for (n, ds) in seeds {
            sets.entry(n).or_default().extend(ds.iter().copied());
            work.push_back(n);
        }
        while let Some(n) = work.pop_front() {
            let current = sets.get(&n).cloned().unwrap_or_default();
            if let Some(srcs) = edges.get(&n) {
                for &src in srcs {
                    let entry = sets.entry(src).or_default();
                    let before = entry.len();
                    entry.extend(current.iter().copied());
                    if entry.len() != before {
                        work.push_back(src);
                    }
                }
            }
        }

        let mut analysis = DowncastAnalysis {
            sites,
            downcast_count,
            ..DowncastAnalysis::default()
        };
        for (node, set) in sets {
            if set.is_empty() {
                continue;
            }
            match node {
                Node::Var(m, v) => {
                    analysis.var_sets.insert((m, v), set);
                }
                Node::Site(s) => {
                    analysis.site_sets.insert(s, set);
                }
                Node::Ret(m) => {
                    analysis.ret_sets.insert(m, set);
                }
                Node::Field(_, _) => {}
            }
        }
        for site in &analysis.sites {
            if let Some(set) = analysis.site_sets.get(&site.id) {
                let viable = set.iter().any(|&d| kp.table.is_subclass(site.class, d));
                if !viable {
                    analysis.doomed_sites.push(site.id);
                }
            }
        }
        analysis
    }
}
