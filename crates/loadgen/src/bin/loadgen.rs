//! The `loadgen` binary: floods a `cjrcd` with simulated clients and
//! writes the `BENCH_daemon.json` report.
//!
//! With `--addr` it drives an already-running daemon; without it, it
//! spawns an in-process daemon (event front end by default) on an
//! ephemeral port, loads it, and shuts it down afterwards — which is
//! what CI and the committed benchmark use:
//!
//! ```text
//! loadgen --clients 1200 --seed 42 --out BENCH_daemon.json \
//!         --assert-zero-errors --assert-min-peak 1000
//! ```

use cj_driver::{Daemon, DaemonConfig, Frontend};
use cj_loadgen::{run, LoadConfig};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: Option<SocketAddr>,
    frontend: Frontend,
    workers: usize,
    clients: usize,
    rate: f64,
    think_ms: u64,
    seed: u64,
    hold: bool,
    out: Option<String>,
    assert_zero_errors: bool,
    assert_p99_ms: Option<u64>,
    assert_min_peak: Option<u64>,
}

fn usage() -> &'static str {
    "usage: loadgen [--addr host:port] [--frontend event|threads] [--workers N]\n\
    \x20              [--clients N] [--rate CONNS_PER_SEC] [--think-ms N] [--seed N]\n\
    \x20              [--no-hold] [--out FILE]\n\
    \x20              [--assert-zero-errors] [--assert-p99-ms N] [--assert-min-peak N]\n\
    \n\
    Without --addr, an in-process cjrcd (event front end unless --frontend\n\
    says otherwise) is spawned on an ephemeral port and shut down afterwards."
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        frontend: Frontend::Event,
        workers: 2,
        clients: 200,
        rate: 0.0,
        think_ms: 0,
        seed: 42,
        hold: true,
        out: None,
        assert_zero_errors: false,
        assert_p99_ms: None,
        assert_min_peak: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {e}"))?,
                );
            }
            "--frontend" => {
                args.frontend = value("--frontend")?.parse()?;
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?;
            }
            "--think-ms" => {
                args.think_ms = value("--think-ms")?
                    .parse()
                    .map_err(|e| format!("--think-ms: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--no-hold" => args.hold = false,
            "--out" => args.out = Some(value("--out")?),
            "--assert-zero-errors" => args.assert_zero_errors = true,
            "--assert-p99-ms" => {
                args.assert_p99_ms = Some(
                    value("--assert-p99-ms")?
                        .parse()
                        .map_err(|e| format!("--assert-p99-ms: {e}"))?,
                );
            }
            "--assert-min-peak" => {
                args.assert_min_peak = Some(
                    value("--assert-min-peak")?
                        .parse()
                        .map_err(|e| format!("--assert-min-peak: {e}"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    // Spawn an in-process daemon unless one was pointed at.
    let (addr, daemon_thread) = match args.addr {
        Some(addr) => (addr, None),
        None => {
            let config = DaemonConfig {
                frontend: args.frontend,
                workers: args.workers,
                ..DaemonConfig::default()
            };
            let daemon = match Daemon::bind_tcp("127.0.0.1:0", config) {
                Ok(daemon) => daemon,
                Err(e) => {
                    eprintln!("loadgen: cannot spawn daemon: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = daemon.local_addr().expect("tcp daemon has an address");
            eprintln!(
                "loadgen: spawned in-process cjrcd on {addr} ({} front end, {} workers)",
                args.frontend.name(),
                args.workers.max(1)
            );
            (addr, Some(std::thread::spawn(move || daemon.run())))
        }
    };

    let config = LoadConfig {
        clients: args.clients,
        arrival_per_sec: args.rate,
        think: Duration::from_millis(args.think_ms),
        seed: args.seed,
        hold_barrier: args.hold,
        ..LoadConfig::new(addr)
    };
    eprintln!(
        "loadgen: {} clients against {addr} (rate {}/s, think {}ms, seed {}, barrier {})",
        config.clients, config.arrival_per_sec, args.think_ms, config.seed, config.hold_barrier
    );
    let outcome = run(&config);

    // Always try to shut a spawned daemon down, even after a failed run.
    if let Some(handle) = daemon_thread {
        if let Err(e) = cj_loadgen::shutdown_daemon(addr) {
            eprintln!("loadgen: daemon shutdown request failed: {e}");
        }
        match handle.join() {
            Ok(Ok(summary)) => eprintln!(
                "loadgen: daemon served {} client(s), peak {} concurrent",
                summary.clients_served, summary.connections_peak
            ),
            Ok(Err(e)) => eprintln!("loadgen: daemon exited with error: {e}"),
            Err(_) => eprintln!("loadgen: daemon thread panicked"),
        }
    }

    let report = match outcome {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = report.to_json(&config);
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("loadgen: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("loadgen: report written to {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "loadgen: {} requests in {:.2}s ({:.0} req/s), {} protocol error(s), \
         peak {} concurrent connection(s)",
        report.requests,
        report.elapsed.as_secs_f64(),
        report.requests_per_sec,
        report.protocol_errors,
        report.peak_connections_local,
    );
    if let Some(server) = &report.server {
        eprintln!(
            "loadgen: server side: {} request(s), queue wait p50 {}us / p99 {}us \
             over {} job(s)",
            server.requests_total,
            server.queue_wait_p50_us,
            server.queue_wait_p99_us,
            server.queue_wait_count,
        );
    }

    let mut failed = false;
    if args.assert_zero_errors && report.protocol_errors != 0 {
        eprintln!(
            "loadgen: FAIL: {} protocol error(s), expected 0",
            report.protocol_errors
        );
        failed = true;
    }
    if let Some(bound_ms) = args.assert_p99_ms {
        let worst_us = report.worst_p99_us();
        if worst_us > bound_ms * 1000 {
            eprintln!(
                "loadgen: FAIL: worst per-kind p99 is {}us, bound is {}ms",
                worst_us, bound_ms
            );
            failed = true;
        }
    }
    if let Some(min_peak) = args.assert_min_peak {
        let peak = report.peak_connections_local as u64;
        if peak < min_peak {
            eprintln!(
                "loadgen: FAIL: peak concurrency {} below required {}",
                peak, min_peak
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
