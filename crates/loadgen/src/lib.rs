//! # cj-loadgen — the serving-path load harness
//!
//! Replays synthetic `open`/`edit`/`check`/`query`/`policy` traffic
//! against a live `cjrcd` from **one** thread: every simulated client is
//! multiplexed over a single [`cj_net::EventLoop`] in client mode, the
//! mirror image of the daemon's event front end. That is what lets the
//! harness hold thousands of concurrent connections (and measure the
//! daemon doing the same) without a thousand threads of its own.
//!
//! The traffic model is the standard two-level one:
//!
//! - **Open-loop arrivals**: connections are *scheduled* at a fixed rate
//!   ([`LoadConfig::arrival_per_sec`]), independent of how fast the
//!   daemon answers — the load does not politely back off when the
//!   server slows down. Rate `0` connects everyone immediately.
//! - **Closed-loop conversations**: within a connection, each request
//!   waits for its response plus a jittered think time
//!   ([`LoadConfig::think`]) — a client never has two requests in
//!   flight, matching the daemon's one-request-per-connection pacing.
//!
//! Every response is validated against the request kind that produced it
//! (a `check` must come back `well-region-typed`, a `query` must carry
//! an abstraction, …); any mismatch, premature close, or read failure is
//! a **protocol error**, and the harness exists to prove that count is
//! zero at depth. All scheduling decisions derive from
//! [`LoadConfig::seed`], so a run is reproducible end to end.
//!
//! The result is a [`LoadReport`]: latency percentiles per request kind,
//! aggregate request rate, the connection high-water mark seen on both
//! sides, and the shared-memo hit rates scraped from a final `stats`
//! probe — rendered as the JSON committed to `BENCH_daemon.json`.

#![forbid(missing_docs)]

use cj_net::{EventLoop, NetConfig, NetEvent, NetStream, Token};
use std::collections::{BinaryHeap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

// ---- deterministic randomness ---------------------------------------------

/// A tiny splitmix64 generator: one `u64` of state, full 64-bit output,
/// good enough to diversify scripts and think times reproducibly (this
/// is a load harness, not a cryptosystem).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A generator seeded with `seed` (any value, zero included).
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

// ---- the synthetic workload ------------------------------------------------

/// What kind of protocol request a script line is — the unit latency is
/// bucketed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `{"cmd":"open",...}` — introduce a file.
    Open,
    /// `{"cmd":"edit",...}` — replace a file (incremental recompile).
    Edit,
    /// `{"cmd":"check"}` — full region-check of the workspace.
    Check,
    /// `{"cmd":"query",...}` — read a solved abstraction from `Q`.
    Query,
    /// `{"cmd":"policy",...}` — enforce region-effect rules.
    Policy,
    /// `{"cmd":"shutdown"}` — connection-scope goodbye.
    Shutdown,
}

impl Kind {
    /// Every kind, in report order.
    pub const ALL: [Kind; 6] = [
        Kind::Open,
        Kind::Edit,
        Kind::Check,
        Kind::Query,
        Kind::Policy,
        Kind::Shutdown,
    ];

    /// The report/JSON label.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Open => "open",
            Kind::Edit => "edit",
            Kind::Check => "check",
            Kind::Query => "query",
            Kind::Policy => "policy",
            Kind::Shutdown => "shutdown",
        }
    }
}

/// One scripted request: the kind (for bucketing and validation) and the
/// JSON line to send.
#[derive(Debug, Clone)]
pub struct Request {
    /// Which latency bucket and validator applies.
    pub kind: Kind,
    /// The protocol line (no trailing newline).
    pub line: String,
}

/// One shared library class plus consumer variants over it. Clients
/// drawing the same workload solve the same SCCs — that overlap is what
/// exercises the daemon's cross-client memo.
struct Workload {
    class_name: &'static str,
    lib: &'static str,
    consumers: [&'static str; 3],
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        class_name: "Cell",
        lib: "class Cell { Object item; Object get() { this.item } \
              void put(Object o) { this.item = o; } }",
        consumers: [
            "class M { static Object f(Cell c) { c.get() } }",
            "class M { static Object f(Cell c) { c.put(c.get()); c.get() } }",
            "class M { static Object f(Cell c) { Cell d = new Cell(null); \
              d.put(c.get()); d.get() } }",
        ],
    },
    Workload {
        class_name: "Pair",
        lib: "class Pair { Object fst; Object snd; Object first() { this.fst } \
              void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; } }",
        consumers: [
            "class M { static Object f(Pair p) { p.first() } }",
            "class M { static Object f(Pair p) { p.swap(); p.first() } }",
            "class M { static Object f(Pair p) { Pair q = new Pair(null, null); \
              q.swap(); q.first() } }",
        ],
    },
    Workload {
        class_name: "Box",
        lib: "class Box { Object v; Object take() { this.v } \
              void fill(Object o) { this.v = o; } }",
        consumers: [
            "class M { static Object f(Box b) { b.take() } }",
            "class M { static Object f(Box b) { b.fill(b.take()); b.take() } }",
            "class M { static Object f(Box b) { Box c = new Box(null); \
              c.fill(b.take()); c.take() } }",
        ],
    },
];

fn open_line(file: &str, text: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"file\":\"{file}\",\"text\":{}}}",
        cj_diag::json_string(text)
    )
}

fn edit_line(file: &str, text: &str) -> String {
    format!(
        "{{\"cmd\":\"edit\",\"file\":\"{file}\",\"text\":{}}}",
        cj_diag::json_string(text)
    )
}

/// The deterministic conversation of client `id` under `seed`: open a
/// shared library and a consumer, check, query the library's invariant,
/// edit the consumer and re-check (the incremental path), enforce a
/// region-escape policy, sometimes test an entailment, and say goodbye.
pub fn client_script(seed: u64, id: usize) -> Vec<Request> {
    let mut rng = Rng::new(seed ^ (id as u64).wrapping_mul(0xA24B_AED4_963E_E407));
    let workload = &WORKLOADS[rng.below(WORKLOADS.len() as u64) as usize];
    let first = rng.below(3) as usize;
    let second = (first + 1 + rng.below(2) as usize) % 3;
    let mut script = vec![
        Request {
            kind: Kind::Open,
            line: open_line("lib.cj", workload.lib),
        },
        Request {
            kind: Kind::Open,
            line: open_line("main.cj", workload.consumers[first]),
        },
        Request {
            kind: Kind::Check,
            line: "{\"cmd\":\"check\"}".to_string(),
        },
        Request {
            kind: Kind::Query,
            line: format!(
                "{{\"cmd\":\"query\",\"invariant\":\"{}\"}}",
                workload.class_name
            ),
        },
        Request {
            kind: Kind::Edit,
            line: edit_line("main.cj", workload.consumers[second]),
        },
        Request {
            kind: Kind::Check,
            line: "{\"cmd\":\"check\"}".to_string(),
        },
        Request {
            kind: Kind::Policy,
            line: format!(
                "{{\"cmd\":\"policy\",\"rules\":\"no-escape {}\"}}",
                workload.class_name
            ),
        },
    ];
    if rng.below(2) == 0 {
        script.push(Request {
            kind: Kind::Query,
            line: format!(
                "{{\"cmd\":\"query\",\"invariant\":\"{}\",\"entails\":\"r2>=r1\"}}",
                workload.class_name
            ),
        });
    }
    script.push(Request {
        kind: Kind::Shutdown,
        line: "{\"cmd\":\"shutdown\"}".to_string(),
    });
    script
}

/// Whether `response` is a protocol-valid answer to a `kind` request.
/// Semantic outcomes that depend on the program (a policy verdict, an
/// entailment truth value) are accepted either way; malformed or
/// error-shaped responses are not.
pub fn validate(kind: Kind, response: &str) -> bool {
    match kind {
        Kind::Open | Kind::Edit => response.starts_with("{\"ok\":true"),
        Kind::Check => response.contains("\"status\":\"well-region-typed\""),
        Kind::Query => response.contains("\"abs\":") || response.contains("\"entails\":"),
        Kind::Policy => response.contains("\"status\":\"policy-"),
        Kind::Shutdown => response.contains("\"status\":\"bye\""),
    }
}

// ---- configuration ---------------------------------------------------------

/// Tunables of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// The live daemon to drive.
    pub addr: SocketAddr,
    /// How many simulated clients to run.
    pub clients: usize,
    /// Open-loop connection arrivals per second (0 = all at once).
    pub arrival_per_sec: f64,
    /// Mean closed-loop think time between a response and the next
    /// request (jittered ±50% per step; zero = none).
    pub think: Duration,
    /// Seed for every random decision (scripts, jitter).
    pub seed: u64,
    /// Hold every connection open until **all** clients are connected
    /// before the first request is sent — this is what pushes the
    /// daemon's connection high-water mark to `clients`.
    pub hold_barrier: bool,
    /// Abort (as a harness failure, not a daemon bug) if the whole run
    /// exceeds this bound.
    pub deadline: Duration,
}

impl LoadConfig {
    /// A default-shaped config against `addr`.
    pub fn new(addr: SocketAddr) -> LoadConfig {
        LoadConfig {
            addr,
            clients: 200,
            arrival_per_sec: 0.0,
            think: Duration::ZERO,
            seed: 42,
            hold_barrier: true,
            deadline: Duration::from_secs(600),
        }
    }
}

// ---- the report ------------------------------------------------------------

/// Latency summary of one request kind, in microseconds.
#[derive(Debug, Clone)]
pub struct KindStats {
    /// Which request kind.
    pub kind: Kind,
    /// How many requests of this kind completed.
    pub count: usize,
    /// Median latency.
    pub p50_us: u64,
    /// 95th-percentile latency.
    pub p95_us: u64,
    /// 99th-percentile latency.
    pub p99_us: u64,
    /// Worst observed latency.
    pub max_us: u64,
}

/// The daemon's own view, scraped from a final `stats` probe.
#[derive(Debug, Clone, Default)]
pub struct DaemonSnapshot {
    /// Which front end served the run.
    pub frontend: String,
    /// Connections ever accepted.
    pub clients_served: u64,
    /// Connections turned away at the capacity bound.
    pub clients_rejected: u64,
    /// The daemon-side connection high-water mark.
    pub connections_peak: u64,
    /// Solved SCC abstractions resident in the shared memo.
    pub memo_entries: u64,
    /// Memo lookups that hit.
    pub memo_hits: u64,
    /// Memo lookups that missed (work actually done).
    pub memo_misses: u64,
    /// Hits on entries another client solved — the cross-client payoff.
    pub memo_shared_hits: u64,
    /// Hits served from the on-disk cache.
    pub memo_disk_hits: u64,
}

/// Server-side latency of one request kind, scraped from the daemon's
/// `request_us_<kind>` histogram.
#[derive(Debug, Clone)]
pub struct ServerKindStats {
    /// The protocol command (the daemon folds unknown ones into `other`).
    pub kind: String,
    /// Requests of this kind the daemon completed.
    pub count: u64,
    /// 99th-percentile handling latency as the daemon measured it.
    pub p99_us: u64,
}

/// The daemon's own latency view, scraped from a final `metrics` probe —
/// numbers the client-side samples cannot see, like how long requests
/// sat in the worker queue before anyone picked them up.
#[derive(Debug, Clone, Default)]
pub struct ServerMetrics {
    /// Daemon uptime when scraped, milliseconds.
    pub uptime_ms: u64,
    /// Requests the daemon completed, all kinds and connections.
    pub requests_total: u64,
    /// Jobs measured between enqueue and worker pickup.
    pub queue_wait_count: u64,
    /// Median queue wait, microseconds.
    pub queue_wait_p50_us: u64,
    /// 95th-percentile queue wait.
    pub queue_wait_p95_us: u64,
    /// 99th-percentile queue wait.
    pub queue_wait_p99_us: u64,
    /// Per-kind server-side latency, report order.
    pub per_kind: Vec<ServerKindStats>,
}

/// Everything one run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Clients simulated.
    pub clients: usize,
    /// Requests completed (responses received and validated).
    pub requests: usize,
    /// Validation failures, premature closes, I/O errors.
    pub protocol_errors: usize,
    /// First connect to last response.
    pub elapsed: Duration,
    /// Completed requests per second over the request phase.
    pub requests_per_sec: f64,
    /// Harness-side connection high-water mark.
    pub peak_connections_local: usize,
    /// Per-kind latency summaries (kinds with traffic only).
    pub per_kind: Vec<KindStats>,
    /// The daemon's counters, if the `stats` probe succeeded.
    pub daemon: Option<DaemonSnapshot>,
    /// The daemon's own latency view, if the `metrics` probe succeeded.
    pub server: Option<ServerMetrics>,
}

/// Nearest-rank percentile over an already sorted sample, `p` in 0..=100.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

impl LoadReport {
    /// The largest p99 across all request kinds — what a smoke test
    /// bounds.
    pub fn worst_p99_us(&self) -> u64 {
        self.per_kind.iter().map(|k| k.p99_us).max().unwrap_or(0)
    }

    /// Renders the report as the `BENCH_daemon.json` document.
    pub fn to_json(&self, config: &LoadConfig) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"benchmark\": \"cjrcd-loadgen\",\n");
        out.push_str(&format!(
            "  \"config\": {{\"clients\": {}, \"arrival_per_sec\": {}, \
             \"think_ms\": {}, \"seed\": {}, \"hold_barrier\": {}}},\n",
            config.clients,
            config.arrival_per_sec,
            config.think.as_millis(),
            config.seed,
            config.hold_barrier,
        ));
        out.push_str(&format!(
            "  \"requests\": {},\n  \"protocol_errors\": {},\n  \
             \"elapsed_secs\": {:.3},\n  \"requests_per_sec\": {:.1},\n  \
             \"peak_connections_local\": {},\n",
            self.requests,
            self.protocol_errors,
            self.elapsed.as_secs_f64(),
            self.requests_per_sec,
            self.peak_connections_local,
        ));
        out.push_str("  \"latency_us\": {\n");
        for (i, k) in self.per_kind.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"max\": {}}}{}\n",
                k.kind.name(),
                k.count,
                k.p50_us,
                k.p95_us,
                k.p99_us,
                k.max_us,
                if i + 1 < self.per_kind.len() { "," } else { "" },
            ));
        }
        out.push_str("  },\n");
        match &self.server {
            Some(s) => {
                out.push_str(&format!(
                    "  \"server\": {{\"uptime_ms\": {}, \"requests_total\": {}, \
                     \"queue_wait_us\": {{\"count\": {}, \"p50\": {}, \"p95\": {}, \
                     \"p99\": {}}}, \"p99_us_by_kind\": {{",
                    s.uptime_ms,
                    s.requests_total,
                    s.queue_wait_count,
                    s.queue_wait_p50_us,
                    s.queue_wait_p95_us,
                    s.queue_wait_p99_us,
                ));
                for (i, k) in s.per_kind.iter().enumerate() {
                    out.push_str(&format!(
                        "{}\"{}\": {}",
                        if i > 0 { ", " } else { "" },
                        k.kind,
                        k.p99_us,
                    ));
                }
                out.push_str("}},\n");
            }
            None => out.push_str("  \"server\": null,\n"),
        }
        match &self.daemon {
            Some(d) => {
                let lookups = d.memo_hits + d.memo_misses;
                let hit_rate = if lookups == 0 {
                    0.0
                } else {
                    d.memo_hits as f64 / lookups as f64
                };
                out.push_str(&format!(
                    "  \"daemon\": {{\"frontend\": \"{}\", \"clients_served\": {}, \
                     \"clients_rejected\": {}, \"connections_peak\": {}}},\n",
                    d.frontend, d.clients_served, d.clients_rejected, d.connections_peak,
                ));
                out.push_str(&format!(
                    "  \"memo\": {{\"entries\": {}, \"hits\": {}, \"misses\": {}, \
                     \"shared_hits\": {}, \"disk_hits\": {}, \"hit_rate\": {:.3}}}\n",
                    d.memo_entries,
                    d.memo_hits,
                    d.memo_misses,
                    d.memo_shared_hits,
                    d.memo_disk_hits,
                    hit_rate,
                ));
            }
            None => out.push_str("  \"daemon\": null,\n  \"memo\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

// ---- the harness -----------------------------------------------------------

/// A scheduled step: connect a client or send its next request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Connect(usize),
    Send(usize),
}

/// Min-heap entry ordered by due time (sequence breaks ties FIFO).
#[derive(Debug, PartialEq, Eq)]
struct Due {
    when: Instant,
    seq: u64,
    action: Action,
}

impl Ord for Due {
    fn cmp(&self, other: &Due) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}

impl PartialOrd for Due {
    fn partial_cmp(&self, other: &Due) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One simulated client's progress through its script.
struct SimClient {
    token: Option<Token>,
    script: Vec<Request>,
    /// Index of the request in flight (or next to send).
    next: usize,
    /// When the in-flight request was sent, if one is.
    sent_at: Option<Instant>,
    finished: bool,
}

/// The harness state while a run is in flight.
struct Harness<'a> {
    config: &'a LoadConfig,
    el: EventLoop,
    clients: Vec<SimClient>,
    by_token: HashMap<Token, usize>,
    schedule: BinaryHeap<Due>,
    seq: u64,
    rng: Rng,
    connected: usize,
    finished: usize,
    samples: HashMap<Kind, Vec<u64>>,
    protocol_errors: usize,
    first_send: Option<Instant>,
    last_response: Option<Instant>,
}

/// Runs one full load against a live daemon and returns the report.
/// Harness-side failures (cannot connect, deadline exceeded) are `Err`;
/// daemon misbehavior is counted in [`LoadReport::protocol_errors`].
pub fn run(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let el = EventLoop::client(NetConfig {
        max_clients: 0,
        idle_timeout: Duration::ZERO,
        max_line_bytes: 16 << 20,
    })?;
    let start = Instant::now();
    let mut harness = Harness {
        config,
        el,
        clients: (0..config.clients)
            .map(|id| SimClient {
                token: None,
                script: client_script(config.seed, id),
                next: 0,
                sent_at: None,
                finished: false,
            })
            .collect(),
        by_token: HashMap::new(),
        schedule: BinaryHeap::new(),
        seq: 0,
        rng: Rng::new(config.seed ^ 0x7468_696E_6B21_7468),
        connected: 0,
        finished: 0,
        samples: HashMap::new(),
        protocol_errors: 0,
        first_send: None,
        last_response: None,
    };
    harness.schedule_arrivals(start);
    harness.drive(start)?;
    let elapsed = start.elapsed();
    Ok(harness.into_report(config, elapsed))
}

impl Harness<'_> {
    fn push(&mut self, when: Instant, action: Action) {
        self.seq += 1;
        self.schedule.push(Due {
            when,
            seq: self.seq,
            action,
        });
    }

    /// Open-loop arrival schedule: client `i` connects at
    /// `start + i / rate` (or immediately when the rate is 0).
    fn schedule_arrivals(&mut self, start: Instant) {
        for id in 0..self.config.clients {
            let when = if self.config.arrival_per_sec > 0.0 {
                start + Duration::from_secs_f64(id as f64 / self.config.arrival_per_sec)
            } else {
                start
            };
            self.push(when, Action::Connect(id));
        }
    }

    /// Jittered closed-loop think time: uniform in `[t/2, 3t/2)`.
    fn think_time(&mut self) -> Duration {
        let base = self.config.think;
        if base.is_zero() {
            return Duration::ZERO;
        }
        let micros = (base.as_micros() as u64).max(1);
        Duration::from_micros(micros / 2 + self.rng.below(micros))
    }

    fn connect(&mut self, id: usize) -> std::io::Result<()> {
        // Bursts can transiently overflow the listener backlog; retry
        // briefly before declaring the daemon unreachable.
        let mut delay = Duration::from_millis(1);
        let mut stream = None;
        for _ in 0..8 {
            match TcpStream::connect(self.config.addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(100));
                }
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => TcpStream::connect(self.config.addr)?,
        };
        let token = self.el.add_stream(NetStream::Tcp(stream))?;
        self.by_token.insert(token, id);
        self.clients[id].token = Some(token);
        self.connected += 1;
        let now = Instant::now();
        if self.config.hold_barrier {
            if self.connected == self.config.clients {
                // Barrier reached: everyone starts talking. The daemon's
                // connection count is at its high-water mark right now.
                for other in 0..self.config.clients {
                    let think = self.think_time();
                    self.push(now + think, Action::Send(other));
                }
            }
        } else {
            self.push(now, Action::Send(id));
        }
        Ok(())
    }

    fn send(&mut self, id: usize) {
        let client = &mut self.clients[id];
        let (Some(token), Some(request)) = (client.token, client.script.get(client.next)) else {
            return;
        };
        let mut bytes = request.line.clone().into_bytes();
        bytes.push(b'\n');
        let now = Instant::now();
        client.sent_at = Some(now);
        self.first_send.get_or_insert(now);
        // `resume` re-arms line delivery paused by the previous response;
        // it is a no-op before the first one.
        self.el.send(token, &bytes);
        self.el.resume(token);
    }

    fn on_line(&mut self, token: Token, line: Vec<u8>) {
        let Some(&id) = self.by_token.get(&token) else {
            return;
        };
        let now = Instant::now();
        self.last_response = Some(now);
        let client = &mut self.clients[id];
        let Some(sent_at) = client.sent_at.take() else {
            // A response nothing asked for.
            self.protocol_errors += 1;
            return;
        };
        let kind = client.script[client.next].kind;
        let response = String::from_utf8_lossy(&line);
        let valid = validate(kind, response.trim_end());
        client.next += 1;
        if client.next >= client.script.len() {
            // Script complete; the daemon closes after the goodbye. Mark
            // done now so a well-behaved `Closed` is not an error.
            client.finished = true;
            self.finished += 1;
        }
        if valid {
            self.samples
                .entry(kind)
                .or_default()
                .push(now.duration_since(sent_at).as_micros() as u64);
            if !self.clients[id].finished {
                let think = self.think_time();
                self.push(now + think, Action::Send(id));
            }
        } else {
            self.protocol_errors += 1;
            if !self.clients[id].finished {
                let think = self.think_time();
                self.push(now + think, Action::Send(id));
            }
        }
    }

    fn on_closed(&mut self, token: Token) {
        let Some(id) = self.by_token.remove(&token) else {
            return;
        };
        let client = &mut self.clients[id];
        client.token = None;
        if !client.finished {
            // The daemon hung up mid-script.
            self.protocol_errors += 1;
            client.finished = true;
            self.finished += 1;
        }
    }

    fn drive(&mut self, start: Instant) -> std::io::Result<()> {
        let mut events: Vec<NetEvent> = Vec::new();
        while self.finished < self.config.clients {
            if start.elapsed() > self.config.deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "load run exceeded its {:?} deadline ({} of {} clients done)",
                        self.config.deadline, self.finished, self.config.clients
                    ),
                ));
            }
            let now = Instant::now();
            while let Some(due) = self.schedule.peek() {
                if due.when > now {
                    break;
                }
                let action = self.schedule.pop().expect("peeked entry").action;
                match action {
                    Action::Connect(id) => self.connect(id)?,
                    Action::Send(id) => self.send(id),
                }
            }
            let timeout = match self.schedule.peek() {
                Some(due) => due.when.saturating_duration_since(Instant::now()),
                None => Duration::from_millis(50),
            }
            .min(Duration::from_millis(50));
            events.clear();
            self.el.poll(&mut events, timeout)?;
            for event in events.drain(..) {
                match event {
                    NetEvent::Line { token, line } => self.on_line(token, line),
                    NetEvent::Closed { token } => self.on_closed(token),
                    // Client mode: no listener, no idle clock.
                    NetEvent::Accepted { .. } | NetEvent::IdleExpired { .. } => {}
                }
            }
        }
        Ok(())
    }

    fn into_report(self, config: &LoadConfig, elapsed: Duration) -> LoadReport {
        let mut per_kind = Vec::new();
        let mut requests = 0;
        for kind in Kind::ALL {
            let Some(mut samples) = self.samples.get(&kind).cloned() else {
                continue;
            };
            samples.sort_unstable();
            requests += samples.len();
            per_kind.push(KindStats {
                kind,
                count: samples.len(),
                p50_us: percentile(&samples, 50.0),
                p95_us: percentile(&samples, 95.0),
                p99_us: percentile(&samples, 99.0),
                max_us: *samples.last().unwrap_or(&0),
            });
        }
        let phase = match (self.first_send, self.last_response) {
            (Some(a), Some(b)) if b > a => b - a,
            _ => elapsed,
        };
        let requests_per_sec = if phase.as_secs_f64() > 0.0 {
            requests as f64 / phase.as_secs_f64()
        } else {
            0.0
        };
        let daemon = probe_stats(config.addr).ok();
        let server = probe_metrics(config.addr).ok();
        LoadReport {
            clients: config.clients,
            requests,
            protocol_errors: self.protocol_errors,
            elapsed,
            requests_per_sec,
            peak_connections_local: self.el.peak_connections(),
            per_kind,
            daemon,
            server,
        }
    }
}

// ---- the stats probe -------------------------------------------------------

/// Extracts the integer after `"key":` in a flat JSON response.
fn json_u64(response: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    response
        .split(&pattern)
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

/// Extracts the string after `"key":"` in a flat JSON response.
fn json_str(response: &str, key: &str) -> String {
    let pattern = format!("\"{key}\":\"");
    response
        .split(&pattern)
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("")
        .to_string()
}

/// The `{...}` body right after `"name":{` — for scraping one flat
/// histogram out of a response where field names (`count`, `p99_us`)
/// repeat across sibling blocks.
fn json_block<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    let pattern = format!("\"{name}\":{{");
    let start = response.find(&pattern)? + pattern.len();
    let end = response[start..].find('}')?;
    Some(&response[start..start + end])
}

/// One extra blocking connection that asks the daemon for `stats` and
/// scrapes the shared-memo and daemon-counter blocks out of the answer.
pub fn probe_stats(addr: SocketAddr) -> std::io::Result<DaemonSnapshot> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "{{\"cmd\":\"stats\"}}")?;
    writer.flush()?;
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if !response.contains("\"shared_memo\":{") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("stats probe got a response without a memo block: {response}"),
        ));
    }
    let snapshot = DaemonSnapshot {
        frontend: json_str(&response, "frontend"),
        clients_served: json_u64(&response, "clients_served"),
        clients_rejected: json_u64(&response, "clients_rejected"),
        connections_peak: json_u64(&response, "connections_peak"),
        memo_entries: json_u64(&response, "entries"),
        memo_hits: json_u64(&response, "hits"),
        memo_misses: json_u64(&response, "misses"),
        memo_shared_hits: json_u64(&response, "shared_hits"),
        memo_disk_hits: json_u64(&response, "disk_hits"),
    };
    // Leave the daemon as we found it: a connection-scope goodbye.
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}")?;
    writer.flush()?;
    let mut bye = String::new();
    let _ = reader.read_line(&mut bye);
    Ok(snapshot)
}

/// One extra blocking connection that asks the daemon for its `metrics`
/// registry and scrapes the server-side latency view out of the answer:
/// the `queue_wait_us` histogram and every per-kind `request_us_<kind>`
/// p99 — numbers measured where the work happened, to sit beside the
/// harness's client-side samples in the report.
pub fn probe_metrics(addr: SocketAddr) -> std::io::Result<ServerMetrics> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "{{\"cmd\":\"metrics\"}}")?;
    writer.flush()?;
    let mut response = String::new();
    reader.read_line(&mut response)?;
    if !response.contains("\"histograms\":{") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("metrics probe got a response without histograms: {response}"),
        ));
    }
    let metrics = parse_metrics_response(&response);
    // Leave the daemon as we found it: a connection-scope goodbye.
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}")?;
    writer.flush()?;
    let mut bye = String::new();
    let _ = reader.read_line(&mut bye);
    Ok(metrics)
}

/// Scrapes the server-side view out of one `metrics` response line.
fn parse_metrics_response(response: &str) -> ServerMetrics {
    let mut metrics = ServerMetrics {
        uptime_ms: json_u64(response, "uptime_ms"),
        requests_total: json_u64(response, "requests_total"),
        ..ServerMetrics::default()
    };
    if let Some(block) = json_block(response, "queue_wait_us") {
        metrics.queue_wait_count = json_u64(block, "count");
        metrics.queue_wait_p50_us = json_u64(block, "p50_us");
        metrics.queue_wait_p95_us = json_u64(block, "p95_us");
        metrics.queue_wait_p99_us = json_u64(block, "p99_us");
    }
    // Walk every `request_us_<kind>` histogram in report order; the set
    // of kinds is whatever the daemon actually served, not a fixed list.
    let mut rest = response;
    while let Some(at) = rest.find("\"request_us_") {
        rest = &rest[at + "\"request_us_".len()..];
        let Some(name_end) = rest.find('"') else {
            break;
        };
        let kind = rest[..name_end].to_string();
        let after = &rest[name_end..];
        let Some(open) = after.find('{') else { break };
        let Some(close) = after[open..].find('}') else {
            break;
        };
        let block = &after[open + 1..open + close];
        metrics.per_kind.push(ServerKindStats {
            kind,
            count: json_u64(block, "count"),
            p99_us: json_u64(block, "p99_us"),
        });
        rest = &after[open + close..];
    }
    metrics
}

/// Asks the daemon at `addr` to shut itself down (daemon scope).
pub fn shutdown_daemon(addr: SocketAddr) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "{{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}}")?;
    writer.flush()?;
    let mut bye = String::new();
    let _ = reader.read_line(&mut bye);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_and_scripts_are_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for id in 0..32 {
            let x = client_script(42, id);
            let y = client_script(42, id);
            assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(&y) {
                assert_eq!(p.kind, q.kind);
                assert_eq!(p.line, q.line);
            }
            assert_eq!(x.first().map(|r| r.kind), Some(Kind::Open));
            assert_eq!(x.last().map(|r| r.kind), Some(Kind::Shutdown));
        }
        // Different seeds move at least some clients to other workloads.
        let differs = (0..32).any(|id| {
            client_script(1, id)
                .iter()
                .zip(client_script(2, id).iter())
                .any(|(p, q)| p.line != q.line)
        });
        assert!(differs, "seed must influence the scripts");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&sorted, 0.0), 10);
        // Rank 4.5 rounds up: the estimator never understates the tail.
        assert_eq!(percentile(&sorted, 50.0), 60);
        assert_eq!(percentile(&sorted, 95.0), 100);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn metrics_scraping_is_block_scoped() {
        // `count` and `p99_us` repeat across sibling histograms, so the
        // scraper must resolve each within its own block, not take the
        // first match in the whole response.
        let response = concat!(
            "{\"ok\":true,\"uptime_ms\":1234,\"version\":\"0.1.0\",\"metrics\":",
            "{\"counters\":{\"requests_total\":42,\"metrics_scrapes\":1},",
            "\"histograms\":{",
            "\"queue_wait_us\":{\"count\":40,\"sum_us\":100,\"p50_us\":2,\"p95_us\":8,\"p99_us\":16},",
            "\"request_us_check\":{\"count\":10,\"sum_us\":90,\"p50_us\":4,\"p95_us\":16,\"p99_us\":32},",
            "\"request_us_open\":{\"count\":30,\"sum_us\":10,\"p50_us\":1,\"p95_us\":2,\"p99_us\":4}",
            "}}}",
        );
        let m = parse_metrics_response(response);
        assert_eq!(m.uptime_ms, 1234);
        assert_eq!(m.requests_total, 42);
        assert_eq!(m.queue_wait_count, 40);
        assert_eq!(m.queue_wait_p50_us, 2);
        assert_eq!(m.queue_wait_p95_us, 8);
        assert_eq!(m.queue_wait_p99_us, 16);
        let kinds: Vec<(&str, u64, u64)> = m
            .per_kind
            .iter()
            .map(|k| (k.kind.as_str(), k.count, k.p99_us))
            .collect();
        assert_eq!(kinds, vec![("check", 10, 32), ("open", 30, 4)]);
    }

    #[test]
    fn validators_accept_the_real_response_shapes() {
        assert!(validate(Kind::Open, "{\"ok\":true,\"revision\":1}"));
        assert!(!validate(Kind::Open, "{\"ok\":false,\"error\":\"nope\"}"));
        assert!(validate(
            Kind::Check,
            "{\"ok\":true,\"status\":\"well-region-typed\"}"
        ));
        assert!(!validate(Kind::Check, "{\"ok\":true,\"status\":\"error\"}"));
        assert!(validate(
            Kind::Query,
            "{\"ok\":true,\"abs\":\"inv.Cell<r1>\"}"
        ));
        assert!(validate(Kind::Query, "{\"ok\":true,\"entails\":false}"));
        assert!(validate(
            Kind::Policy,
            "{\"ok\":true,\"status\":\"policy-ok\"}"
        ));
        assert!(validate(
            Kind::Policy,
            "{\"ok\":true,\"status\":\"policy-violations\"}"
        ));
        assert!(validate(Kind::Shutdown, "{\"ok\":true,\"status\":\"bye\"}"));
    }

    #[test]
    fn every_workload_program_checks_cleanly() {
        // The scripts assert `well-region-typed`, so every (library,
        // consumer) pair must actually be a valid program — and the
        // query/policy lines must be answerable.
        use cj_driver::{Server, SessionOptions};
        for workload in &WORKLOADS {
            for consumer in &workload.consumers {
                let mut server = Server::new(SessionOptions::default());
                let open = server.handle_line(&open_line("lib.cj", workload.lib));
                assert!(open.contains("\"ok\":true"), "{open}");
                let open = server.handle_line(&open_line("main.cj", consumer));
                assert!(open.contains("\"ok\":true"), "{open}");
                let check = server.handle_line("{\"cmd\":\"check\"}");
                assert!(
                    check.contains("\"status\":\"well-region-typed\""),
                    "workload {} consumer `{consumer}`: {check}",
                    workload.class_name
                );
                let query = server.handle_line(&format!(
                    "{{\"cmd\":\"query\",\"invariant\":\"{}\"}}",
                    workload.class_name
                ));
                assert!(query.contains("\"abs\":"), "{query}");
                let policy = server.handle_line(&format!(
                    "{{\"cmd\":\"policy\",\"rules\":\"no-escape {}\"}}",
                    workload.class_name
                ));
                assert!(policy.contains("\"status\":\"policy-"), "{policy}");
            }
        }
    }
}
