//! # cj-persist — the on-disk compilation cache behind `--cache-dir`
//!
//! The incremental layer memoizes solved constraint-abstraction SCCs in a
//! content-addressed, α-invariant [`SolveMemo`] — summaries with no
//! process-local state (no names, no spans, no region-id bases). This
//! crate persists them, so a restarted `cjrc serve` / `cjrcd` daemon (or
//! a fresh one-shot `cjrc` invocation) starts *warm*: every SCC whose
//! canonical form was ever solved under the same cache directory is
//! served from disk instead of re-iterated, observable as `sccs_disk_hits`
//! in `InferStats` / `PassCounts` / the `stats` response.
//!
//! Two layers:
//!
//! - [`store::RecordStore`] — the container format: a versioned-header
//!   snapshot file plus an append-only journal of checksummed records,
//!   written via temp file + atomic rename, with GC/compaction. Loading
//!   **never fails**: corruption, torn tails, version bumps and foreign
//!   files all degrade to a cold start.
//! - [`scc::SccDiskCache`] — the solved-SCC tier: the entry codec plus
//!   load/flush/compact against a [`SolveMemo`].
//!
//! Reuse is strictly an optimization — a populated cache changes *how
//! much work* a compilation performs, never its output (property-tested
//! against from-scratch solves over random recursive systems).
//!
//! Per-method `BodyResult` entries are **not** persisted yet: unlike SCC
//! summaries they embed kernel spans, so a disk entry is only valid for a
//! byte-identical file layout; persisting them safely needs a span
//! fingerprint in the key (tracked in ROADMAP.md).
//!
//! [`SolveMemo`]: cj_regions::incremental::SolveMemo
#![forbid(unsafe_code)]

pub mod scc;
pub mod store;

pub use scc::{SccDiskCache, SccEntry};
pub use store::{RecordStore, FORMAT_VERSION};
