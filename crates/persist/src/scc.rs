//! The solved-SCC tier of the on-disk cache.
//!
//! One record = one [`SolveMemo`] entry: the α-invariant canonical key
//! plus the canonical closed form of every SCC member, exactly as
//! [`SolveMemo::export`] hands them out. Keys are content-addressed and
//! name-independent, so entries are valid across processes, daemons and
//! machines — loading them into a fresh memo ([`SccDiskCache::load_into`])
//! reproduces the hit a long-lived memo would have had, counted as
//! `disk_hits` / `sccs_disk_hits`.

use crate::store::RecordStore;
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::incremental::SolveMemo;
use cj_regions::var::RegVar;
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Mutex;

/// Record-kind tag of the solved-SCC store.
const SCC_KIND: [u8; 4] = *b"SCC1";

/// File-pair name under the cache directory.
const SCC_STORE: &str = "sccs";

/// Journal size (bytes) above which [`SccDiskCache::flush`] folds the
/// journal into the snapshot.
const COMPACT_JOURNAL_BYTES: u64 = 1 << 20;

/// One decoded entry: canonical key plus per-member closed forms.
pub type SccEntry = (String, Vec<ConstraintSet>);

// ---- entry codec -----------------------------------------------------------

/// Encodes one entry into a record payload.
fn encode_entry(key: &str, closed: &[ConstraintSet]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(key.len() + 16);
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key.as_bytes());
    buf.extend_from_slice(&(closed.len() as u32).to_le_bytes());
    for set in closed {
        buf.extend_from_slice(&(set.len() as u32).to_le_bytes());
        for atom in set.iter() {
            let (tag, a, b) = match atom {
                Atom::Outlives(a, b) => (0u8, a, b),
                Atom::Eq(a, b) => (1u8, a, b),
            };
            buf.push(tag);
            buf.extend_from_slice(&a.0.to_le_bytes());
            buf.extend_from_slice(&b.0.to_le_bytes());
        }
    }
    buf
}

/// Decodes one record payload; `None` on any malformation (the record is
/// then simply not loaded).
fn decode_entry(payload: &[u8]) -> Option<SccEntry> {
    let mut pos = 0usize;
    let key_len = read_u32(payload, &mut pos)? as usize;
    let key_bytes = payload.get(pos..pos.checked_add(key_len)?)?;
    let key = std::str::from_utf8(key_bytes).ok()?.to_string();
    pos += key_len;
    let nsets = read_u32(payload, &mut pos)? as usize;
    // Defensive bound: one closed form per SCC member, and SCCs are small.
    if nsets > 1 << 16 {
        return None;
    }
    let mut closed = Vec::with_capacity(nsets);
    for _ in 0..nsets {
        let natoms = read_u32(payload, &mut pos)? as usize;
        if natoms > 1 << 20 {
            return None;
        }
        let mut set = ConstraintSet::new();
        for _ in 0..natoms {
            let tag = *payload.get(pos)?;
            pos += 1;
            let a = RegVar(read_u32(payload, &mut pos)?);
            let b = RegVar(read_u32(payload, &mut pos)?);
            set.add(match tag {
                0 => Atom::outlives(a, b),
                1 => Atom::eq(a, b),
                _ => return None,
            });
        }
        closed.push(set);
    }
    // Trailing junk means the record is not ours.
    (pos == payload.len()).then_some((key, closed))
}

fn read_u32(payload: &[u8], pos: &mut usize) -> Option<u32> {
    let bytes = payload.get(*pos..*pos + 4)?;
    *pos += 4;
    Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

// ---- the cache -------------------------------------------------------------

/// The on-disk solved-SCC cache behind `--cache-dir`: a [`RecordStore`]
/// of [`SccEntry`] records plus the bookkeeping to flush only entries not
/// yet persisted.
///
/// Thread-safe: `flush`/`compact` may be called from a background thread
/// while clients keep solving into the memo (entries solved during a
/// flush are simply picked up by the next one).
#[derive(Debug)]
pub struct SccDiskCache {
    store: RecordStore,
    /// Writer-serialized flush bookkeeping (see [`FlushState`]).
    state: Mutex<FlushState>,
    /// Entry bound enforced at compaction (oldest-key-order truncation).
    max_entries: usize,
}

/// What the cache remembers between flushes. One cache instance pairs
/// with one memo: the install mark is meaningless across memos.
#[derive(Debug, Default)]
struct FlushState {
    /// FNV hashes of keys already persisted (loaded or flushed), so each
    /// append writes only new entries.
    keys: HashSet<u64>,
    /// The memo's [`SolveMemo::installs`] stamp at the last flush; when
    /// unchanged, the next flush is a no-op without exporting the memo.
    install_mark: Option<u64>,
}

impl SccDiskCache {
    /// Opens (creating if needed) the cache under `dir`, bounded at
    /// [`SolveMemo::MAX_ENTRIES`] entries per compaction.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<SccDiskCache> {
        SccDiskCache::open_bounded(dir, SolveMemo::MAX_ENTRIES)
    }

    /// [`open`](SccDiskCache::open) with an explicit compaction bound.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_entries: usize,
    ) -> std::io::Result<SccDiskCache> {
        Ok(SccDiskCache {
            store: RecordStore::open(dir, SCC_STORE, SCC_KIND)?,
            state: Mutex::new(FlushState::default()),
            max_entries: max_entries.max(1),
        })
    }

    /// Decodes every intact on-disk entry (deduplicated by key, last
    /// write wins). Never fails; corruption loads fewer entries.
    pub fn load(&self) -> Vec<SccEntry> {
        let mut seen = HashSet::new();
        let mut entries: Vec<SccEntry> = Vec::new();
        // Journal entries are newer than snapshot ones; walk records in
        // reverse so the newest copy of a key wins the dedup.
        for payload in self.store.load().iter().rev() {
            if let Some((key, closed)) = decode_entry(payload) {
                if seen.insert(crate::store::fnv1a(key.as_bytes())) {
                    entries.push((key, closed));
                }
            }
        }
        entries.reverse();
        entries
    }

    /// Loads the on-disk entries into `memo` ([`SolveMemo::preload`]) and
    /// records their keys as persisted. Returns how many entries were
    /// installed. Never fails.
    pub fn load_into(&self, memo: &SolveMemo) -> usize {
        let mut installed = 0;
        let mut state = self.state.lock().expect("cache state poisoned");
        for (key, closed) in self.load() {
            state.keys.insert(crate::store::fnv1a(key.as_bytes()));
            if memo.preload(key, closed) {
                installed += 1;
            }
        }
        installed
    }

    /// Appends every memo entry not yet on disk to the journal, folding
    /// the journal into the snapshot once it outgrows its byte budget.
    /// Returns how many entries were written. When nothing was installed
    /// into the memo since the last flush (its [`SolveMemo::installs`]
    /// stamp is unchanged), this returns immediately without exporting
    /// the memo at all — the steady-state background flush costs a
    /// counter read, not an O(memo) scan.
    ///
    /// # Errors
    ///
    /// Journal/snapshot write failures (the cache stays consistent; the
    /// same entries are retried by the next flush).
    pub fn flush(&self, memo: &SolveMemo) -> std::io::Result<usize> {
        let mut span = cj_trace::span("daemon", "persist-flush");
        if self.store.is_read_only() {
            // Writer lease held by another live process: persist nothing
            // and record nothing as persisted.
            return Ok(0);
        }
        // Read the stamp *before* exporting: entries installed while we
        // work are re-examined (and deduped) by the next flush.
        let stamp = memo.installs();
        // Held across the file writes: concurrent flushers (the daemon's
        // background thread vs its shutdown path) serialize here, so the
        // journal never sees interleaved batches.
        let mut state = self.state.lock().expect("cache state poisoned");
        if state.install_mark == Some(stamp) {
            return Ok(0);
        }
        let exported = memo.export();
        let mut records = Vec::new();
        let mut hashes = Vec::new();
        for (key, closed) in &exported {
            let h = crate::store::fnv1a(key.as_bytes());
            if !state.keys.contains(&h) {
                records.push(encode_entry(key, closed));
                hashes.push(h);
            }
        }
        if records.is_empty() {
            state.install_mark = Some(stamp);
            return Ok(0);
        }
        self.store.append(&records)?;
        state.keys.extend(hashes);
        state.install_mark = Some(stamp);
        let written = records.len();
        span.add("entries", written as u64);
        if self.store.journal_bytes() > COMPACT_JOURNAL_BYTES {
            // Reuse the export in hand instead of scanning the memo again.
            self.compact_locked(&mut state, exported, stamp)?;
        }
        Ok(written)
    }

    /// Rewrites the snapshot as (on-disk ∪ memo) entries — capped at the
    /// cache's entry bound — and resets the journal: the shutdown-time
    /// GC/compaction pass. Returns the number of entries retained.
    ///
    /// # Errors
    ///
    /// Snapshot write failures.
    pub fn compact(&self, memo: &SolveMemo) -> std::io::Result<usize> {
        if self.store.is_read_only() {
            return Ok(0); // see `flush`
        }
        let stamp = memo.installs();
        // Held across the rewrite (see `flush`): one writer at a time.
        let mut state = self.state.lock().expect("cache state poisoned");
        self.compact_locked(&mut state, memo.export(), stamp)
    }

    /// [`compact`](SccDiskCache::compact) over an already-made export,
    /// under the caller-held flush state.
    fn compact_locked(
        &self,
        state: &mut FlushState,
        exported: Vec<SccEntry>,
        stamp: u64,
    ) -> std::io::Result<usize> {
        // Keys already on disk but flushed out of the bounded memo are
        // still worth keeping: merge both views, memo (newest) first.
        let exported_len = exported.len();
        let mut seen = HashSet::new();
        let mut entries = Vec::new();
        for (key, closed) in exported.into_iter().chain(self.load()) {
            if seen.insert(crate::store::fnv1a(key.as_bytes())) {
                entries.push((key, closed));
            }
        }
        entries.truncate(self.max_entries);
        let records: Vec<Vec<u8>> = entries
            .iter()
            .map(|(key, closed)| encode_entry(key, closed))
            .collect();
        self.store.compact(&records)?;
        state.keys.clear();
        state.keys.extend(
            entries
                .iter()
                .map(|(key, _)| crate::store::fnv1a(key.as_bytes())),
        );
        // The stamp only certifies "everything in the memo is on disk":
        // when the GC bound truncated memo entries away, the next flush
        // must scan again and re-append them.
        state.install_mark = (exported_len <= self.max_entries).then_some(stamp);
        Ok(entries.len())
    }

    /// Whether another live process holds the cache directory's writer
    /// lease: loading still works, but flush/compact are no-ops (see the
    /// [`store`](crate::store) single-writer model). Callers should warn
    /// the operator — solved SCCs will not be persisted by this process.
    pub fn is_read_only(&self) -> bool {
        self.store.is_read_only()
    }

    /// The snapshot file path (for tests and diagnostics).
    pub fn snapshot_path(&self) -> PathBuf {
        self.store.snapshot_path()
    }

    /// The journal file path (for tests and diagnostics).
    pub fn journal_path(&self) -> PathBuf {
        self.store.journal_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegVar {
        RegVar(i)
    }

    fn sample_entry(tag: u32) -> SccEntry {
        let set: ConstraintSet = [Atom::outlives(r(tag), r(2)), Atom::eq(r(3), r(4))]
            .into_iter()
            .collect();
        (format!("p2|{tag}>2;\n"), vec![set, ConstraintSet::new()])
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cj-persist-scc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_codec_roundtrips() {
        let (key, closed) = sample_entry(7);
        let payload = encode_entry(&key, &closed);
        let (k, c) = decode_entry(&payload).expect("decodes");
        assert_eq!(k, key);
        assert_eq!(c, closed);
        // Every truncation is rejected, not mis-decoded.
        for cut in 1..payload.len() {
            assert_eq!(decode_entry(&payload[..cut]), None, "cut {cut}");
        }
        // Trailing junk is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert_eq!(decode_entry(&long), None);
        // A bad atom tag is rejected.
        let mut bad = payload;
        let tag_at = 4 + key.len() + 4 + 4;
        bad[tag_at] = 9;
        assert_eq!(decode_entry(&bad), None);
    }

    #[test]
    fn flush_load_roundtrips_and_appends_only_new_entries() {
        let dir = tempdir("flush");
        let cache = SccDiskCache::open(&dir).unwrap();
        let memo = SolveMemo::new();
        let (k1, c1) = sample_entry(10);
        memo.preload(k1.clone(), c1.clone());
        // preloaded entries export like any other
        assert_eq!(cache.flush(&memo).unwrap(), 1);
        assert_eq!(cache.flush(&memo).unwrap(), 0, "already persisted");
        let (k2, c2) = sample_entry(20);
        memo.preload(k2.clone(), c2.clone());
        assert_eq!(cache.flush(&memo).unwrap(), 1, "only the new entry");

        let reopened = SccDiskCache::open(&dir).unwrap();
        let mut loaded = reopened.load();
        loaded.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(loaded, vec![(k1, c1), (k2, c2)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_dedups_and_respects_the_entry_bound() {
        let dir = tempdir("compact");
        let cache = SccDiskCache::open_bounded(&dir, 3).unwrap();
        let memo = SolveMemo::new();
        for tag in 0..5 {
            let (k, c) = sample_entry(tag);
            memo.preload(k, c);
        }
        cache.flush(&memo).unwrap();
        cache.flush(&memo).unwrap();
        let kept = cache.compact(&memo).unwrap();
        assert_eq!(kept, 3, "bound applied");
        assert_eq!(cache.load().len(), 3);
        // Entries surviving compaction still count as on-disk.
        assert_eq!(cache.flush(&memo).unwrap(), 2, "only the evicted two");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_into_counts_and_corruption_cold_starts() {
        let dir = tempdir("load-into");
        let cache = SccDiskCache::open(&dir).unwrap();
        let memo = SolveMemo::new();
        let (k, c) = sample_entry(1);
        memo.preload(k.clone(), c.clone());
        cache.flush(&memo).unwrap();

        let warm = SolveMemo::new();
        assert_eq!(SccDiskCache::open(&dir).unwrap().load_into(&warm), 1);
        assert_eq!(warm.len(), 1);

        // Truncate the journal into the header: cold start, no error.
        let bytes = std::fs::read(cache.journal_path()).unwrap();
        std::fs::write(cache.journal_path(), &bytes[..10]).unwrap();
        let cold = SolveMemo::new();
        assert_eq!(SccDiskCache::open(&dir).unwrap().load_into(&cold), 0);
        assert!(cold.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
