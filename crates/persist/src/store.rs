//! The crash-safe record store: one *snapshot* file plus one append-only
//! *journal*, both holding checksummed, length-prefixed records behind a
//! versioned header.
//!
//! # Durability model
//!
//! - The **snapshot** (`<name>.snapshot`) is only ever replaced wholesale:
//!   [`RecordStore::compact`] writes a temp file in the same directory,
//!   syncs it, and atomically renames it over the old snapshot. Readers
//!   see either the old or the new file, never a torn one.
//! - The **journal** (`<name>.journal`) is append-only; each
//!   [`RecordStore::append`] writes its whole batch with one `write_all`.
//!   A crash mid-append leaves a torn tail record, which the reader
//!   detects (checksum/length mismatch) and skips — everything before it
//!   still loads. Compaction folds the journal into the snapshot and
//!   resets it.
//!
//! # Degradation model
//!
//! Loading **never fails**: an unreadable file, a foreign or
//! version-bumped header, a torn tail, or plain garbage all degrade to
//! loading fewer (possibly zero) records — a cold start, not an error.
//! Records carry a sync marker, so a reader that hits a corrupt record
//! rescans for the next marker instead of abandoning the rest of the
//! file. Correctness must therefore never depend on a record being
//! present; the caches built on this store only ever *reuse* work.
//!
//! # Single-writer lease
//!
//! Opening a store takes a best-effort **writer lease**: a `<name>.lock`
//! file holding the owner's pid, created atomically. When another live
//! process already holds it, the store degrades to **read-only** —
//! loading still works (warm starts are never refused), but
//! [`append`](RecordStore::append) and [`compact`](RecordStore::compact)
//! become no-ops, so two daemons pointed at one cache directory can
//! never interleave journal batches. A lock left behind by a dead
//! process (crash, `kill -9`) is detected by pid liveness and reclaimed.
//! The lease is released on drop.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Shared 8-byte file magic (followed by the format version and the
/// caller's record-kind tag).
const MAGIC: [u8; 8] = *b"CJPERSI\0";

/// Bumped on any incompatible change to the container format; readers
/// ignore files with a different version (cold start).
pub const FORMAT_VERSION: u32 = 1;

/// Per-record sync marker: lets a reader resynchronize after a corrupt
/// record instead of discarding the rest of the file.
const RECORD_MARK: [u8; 4] = *b"\xc5rec";

/// Upper bound on a single record payload (defensive: a corrupt length
/// field must not trigger a huge allocation).
const MAX_RECORD_BYTES: usize = 64 << 20;

/// 64-bit FNV-1a — the store's payload checksum. Not cryptographic;
/// guards against torn writes and bit rot, not adversaries.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The held half of the single-writer lease: removes the lock file when
/// dropped.
#[derive(Debug)]
struct LockLease {
    path: PathBuf,
}

impl Drop for LockLease {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Whether the process that wrote a lock file is still alive. On Linux
/// this probes `/proc`; elsewhere a foreign pid is conservatively assumed
/// alive (the lease stays best-effort).
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new(&format!("/proc/{pid}")).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        true
    }
}

/// A snapshot + journal pair of record files under one directory. See the
/// module docs for the durability, degradation and single-writer models.
#[derive(Debug)]
pub struct RecordStore {
    dir: PathBuf,
    name: String,
    kind: [u8; 4],
    /// `Some` when this store holds the writer lease; `None` degrades
    /// every write to a no-op (read-only).
    lease: Option<LockLease>,
}

impl RecordStore {
    /// Opens (creating the directory if needed) the store `<name>` under
    /// `dir`, whose records are tagged with the 4-byte `kind`. Files with
    /// a different kind or format version are ignored on load.
    ///
    /// Takes the single-writer lease when free (or stale — held by a
    /// dead process); otherwise the store opens **read-only**
    /// ([`is_read_only`](RecordStore::is_read_only)).
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(
        dir: impl Into<PathBuf>,
        name: &str,
        kind: [u8; 4],
    ) -> std::io::Result<RecordStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let lease = acquire_lease(&dir, name);
        Ok(RecordStore {
            dir,
            name: name.to_string(),
            kind,
            lease,
        })
    }

    /// Whether another live process holds the writer lease, making every
    /// write on this store a no-op.
    pub fn is_read_only(&self) -> bool {
        self.lease.is_none()
    }

    /// The lock-file path carrying the writer lease.
    pub fn lock_path(&self) -> PathBuf {
        self.dir.join(format!("{}.lock", self.name))
    }

    /// The snapshot file path.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(format!("{}.snapshot", self.name))
    }

    /// The journal file path.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(format!("{}.journal", self.name))
    }

    /// Bytes currently in the journal (0 when absent/unreadable) — the
    /// signal callers use to decide when to [`compact`](RecordStore::compact).
    pub fn journal_bytes(&self) -> u64 {
        fs::metadata(self.journal_path())
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Loads every intact record: snapshot first, then journal. Never
    /// fails — corruption, version mismatches and missing files just
    /// yield fewer records.
    pub fn load(&self) -> Vec<Vec<u8>> {
        let mut records = self.load_file(&self.snapshot_path());
        records.extend(self.load_file(&self.journal_path()));
        records
    }

    fn load_file(&self, path: &Path) -> Vec<Vec<u8>> {
        let Ok(mut file) = File::open(path) else {
            return Vec::new();
        };
        let mut bytes = Vec::new();
        if file.read_to_end(&mut bytes).is_err() {
            return Vec::new();
        }
        decode_records(&bytes, self.kind)
    }

    /// Appends a batch of records to the journal (creating it, with a
    /// header, if absent), as one contiguous write. A journal whose
    /// header is unreadable, foreign or version-bumped is *replaced*
    /// (temp file + rename) instead of appended to — records written
    /// after a dead header would be invisible to every future load, so
    /// the cache would silently stop persisting anything.
    ///
    /// # Errors
    ///
    /// Journal open/write failures.
    pub fn append(&self, records: &[Vec<u8>]) -> std::io::Result<()> {
        if records.is_empty() || self.lease.is_none() {
            // Read-only (lease held elsewhere): dropping the write keeps
            // the two writers from interleaving; the cache above only
            // ever reuses work, so a skipped persist costs a re-solve.
            return Ok(());
        }
        let path = self.journal_path();
        let existing = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if existing > 0 && !self.header_valid(&path) {
            // Self-heal: rebuild the journal with a fresh header.
            let mut buf = Vec::new();
            encode_header(&mut buf, self.kind);
            for record in records {
                encode_record(&mut buf, record);
            }
            return self.replace_file(&path, "journal", &buf);
        }
        let mut buf = Vec::new();
        if existing == 0 {
            encode_header(&mut buf, self.kind);
        }
        for record in records {
            encode_record(&mut buf, record);
        }
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        file.write_all(&buf)?;
        file.sync_data()
    }

    /// Whether the file at `path` starts with this store's current
    /// header.
    fn header_valid(&self, path: &Path) -> bool {
        let header_len = MAGIC.len() + 8;
        let Ok(mut file) = File::open(path) else {
            return false;
        };
        let mut header = vec![0u8; header_len];
        if std::io::Read::read_exact(&mut file, &mut header).is_err() {
            return false;
        }
        header[..MAGIC.len()] == MAGIC
            && header[MAGIC.len()..MAGIC.len() + 4] == FORMAT_VERSION.to_le_bytes()
            && header[MAGIC.len() + 4..] == self.kind
    }

    /// Writes `bytes` to a sibling `<name>.<what>.tmp` and atomically
    /// renames it over `path`.
    fn replace_file(&self, path: &Path, what: &str, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = self.dir.join(format!("{}.{what}.tmp", self.name));
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, path)
    }

    /// Replaces the snapshot with exactly `records` (temp file + fsync +
    /// atomic rename) and resets the journal. A crash between the two
    /// steps leaves journal records that duplicate snapshot ones — the
    /// caches above dedup by key, so that is only a few wasted bytes.
    ///
    /// # Errors
    ///
    /// Temp-file write, sync or rename failures.
    pub fn compact(&self, records: &[Vec<u8>]) -> std::io::Result<()> {
        if self.lease.is_none() {
            return Ok(()); // read-only: see `append`
        }
        let mut buf = Vec::new();
        encode_header(&mut buf, self.kind);
        for record in records {
            encode_record(&mut buf, record);
        }
        self.replace_file(&self.snapshot_path(), "snapshot", &buf)?;
        // Reset the journal the same way (never truncate in place: a
        // reader racing the truncation must still see a valid file).
        let mut jbuf = Vec::new();
        encode_header(&mut jbuf, self.kind);
        self.replace_file(&self.journal_path(), "journal", &jbuf)
    }
}

/// Tries to take the `<name>.lock` writer lease under `dir`: atomic
/// create-new with our pid inside. A lock held by a dead process is
/// reclaimed (one retry); a live holder — or any unexpected filesystem
/// error — yields `None` (read-only). Best-effort by design: the
/// checksummed record format remains the correctness backstop.
fn acquire_lease(dir: &Path, name: &str) -> Option<LockLease> {
    let path = dir.join(format!("{name}.lock"));
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                let _ = file.write_all(std::process::id().to_string().as_bytes());
                return Some(LockLease { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && attempt == 0 => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid_alive(pid) => return None,
                    // Stale (dead holder) or garbage: reclaim and retry.
                    _ => {
                        let _ = fs::remove_file(&path);
                    }
                }
            }
            Err(_) => return None,
        }
    }
    None
}

fn encode_header(buf: &mut Vec<u8>, kind: [u8; 4]) {
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&kind);
}

fn encode_record(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&RECORD_MARK);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv1a(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Decodes every intact record of one file image; resynchronizes on the
/// record mark after corruption. Returns nothing when the header is
/// missing, foreign, or from another format version.
fn decode_records(bytes: &[u8], kind: [u8; 4]) -> Vec<Vec<u8>> {
    let header_len = MAGIC.len() + 4 + 4;
    if bytes.len() < header_len
        || bytes[..MAGIC.len()] != MAGIC
        || bytes[MAGIC.len()..MAGIC.len() + 4] != FORMAT_VERSION.to_le_bytes()
        || bytes[MAGIC.len() + 4..header_len] != kind
    {
        return Vec::new();
    }
    let mut records = Vec::new();
    let mut pos = header_len;
    while pos < bytes.len() {
        // Hunt for the next record mark (tolerates junk between records).
        let Some(at) = find_mark(bytes, pos) else {
            break;
        };
        pos = at + RECORD_MARK.len();
        let Some(rest) = bytes.get(pos..pos + 12) else {
            break; // torn length/checksum prefix
        };
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            continue; // corrupt length: rescan from after this mark
        }
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len) else {
            continue; // torn payload: rescan (there is nothing after it)
        };
        if fnv1a(payload) != sum {
            continue; // corrupt payload: rescan for the next mark
        }
        records.push(payload.to_vec());
        pos += 12 + len;
    }
    records
}

fn find_mark(bytes: &[u8], from: usize) -> Option<usize> {
    bytes[from..]
        .windows(RECORD_MARK.len())
        .position(|w| w == RECORD_MARK)
        .map(|i| from + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cj-persist-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn store(dir: &Path) -> RecordStore {
        RecordStore::open(dir, "scc", *b"SCC1").expect("open store")
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = tempdir("empty");
        assert!(store(&dir).load().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_then_load_roundtrips() {
        let dir = tempdir("roundtrip");
        let s = store(&dir);
        let records: Vec<Vec<u8>> = vec![b"one".to_vec(), vec![0u8; 300], Vec::new()];
        s.append(&records[..2]).unwrap();
        s.append(&records[2..]).unwrap();
        assert_eq!(s.load(), records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_folds_and_resets_the_journal() {
        let dir = tempdir("compact");
        let s = store(&dir);
        s.append(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        let journal_before = s.journal_bytes();
        s.compact(&[b"a".to_vec(), b"b".to_vec(), b"c".to_vec()])
            .unwrap();
        assert!(s.journal_bytes() < journal_before);
        assert_eq!(s.load(), vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
        s.append(&[b"d".to_vec()]).unwrap();
        assert_eq!(s.load().len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_journal_tail_keeps_earlier_records() {
        let dir = tempdir("torn");
        let s = store(&dir);
        s.append(&[
            b"intact-1".to_vec(),
            b"intact-2".to_vec(),
            b"victim".to_vec(),
        ])
        .unwrap();
        // Chop bytes off the tail: the last record becomes unreadable at
        // some point, the first two must survive every cut.
        let full = fs::read(s.journal_path()).unwrap();
        for cut in 1..=(b"victim".len() + 15) {
            fs::write(s.journal_path(), &full[..full.len() - cut]).unwrap();
            let loaded = s.load();
            assert!(loaded.len() >= 2, "cut {cut} lost intact records");
            assert_eq!(&loaded[..2], &[b"intact-1".to_vec(), b"intact-2".to_vec()]);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_record_resyncs_to_later_ones() {
        let dir = tempdir("resync");
        let s = store(&dir);
        s.append(&[b"first".to_vec(), b"second".to_vec(), b"third".to_vec()])
            .unwrap();
        let mut bytes = fs::read(s.journal_path()).unwrap();
        // Flip a byte inside the second record's payload.
        let needle = b"second";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        bytes[at] ^= 0xff;
        fs::write(s.journal_path(), &bytes).unwrap();
        assert_eq!(s.load(), vec![b"first".to_vec(), b"third".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_version_kind_or_garbage_degrades_to_empty() {
        let dir = tempdir("foreign");
        let s = store(&dir);
        s.append(&[b"data".to_vec()]).unwrap();
        // Version bump.
        let mut bytes = fs::read(s.journal_path()).unwrap();
        bytes[MAGIC.len()] ^= 1;
        fs::write(s.journal_path(), &bytes).unwrap();
        assert!(s.load().is_empty(), "bumped version must cold-start");
        // Wrong kind tag.
        let mut bytes = fs::read(s.journal_path()).unwrap();
        bytes[MAGIC.len()] ^= 1; // restore version
        bytes[MAGIC.len() + 4] ^= 1; // break kind
        fs::write(s.journal_path(), &bytes).unwrap();
        assert!(s.load().is_empty(), "foreign kind must cold-start");
        // Plain garbage.
        fs::write(s.journal_path(), b"not a cache file at all").unwrap();
        assert!(s.load().is_empty());
        // And a directory in the file's place is just "unreadable".
        fs::remove_file(s.journal_path()).unwrap();
        fs::create_dir(s.journal_path()).unwrap();
        assert!(s.load().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_self_heals_a_dead_journal_header() {
        let dir = tempdir("self-heal");
        let s = store(&dir);
        // A journal whose header is garbage would make every future
        // append invisible; appending must rebuild it instead.
        fs::write(s.journal_path(), b"junk that is no header").unwrap();
        s.append(&[b"revived".to_vec()]).unwrap();
        assert_eq!(s.load(), vec![b"revived".to_vec()]);
        // Same for a version-bumped header.
        let mut bytes = fs::read(s.journal_path()).unwrap();
        bytes[MAGIC.len()] ^= 1;
        fs::write(s.journal_path(), &bytes).unwrap();
        s.append(&[b"again".to_vec()]).unwrap();
        assert_eq!(s.load(), vec![b"again".to_vec()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_opener_degrades_to_read_only() {
        let dir = tempdir("lease");
        let first = store(&dir);
        assert!(!first.is_read_only(), "first opener holds the lease");
        first.append(&[b"one".to_vec()]).unwrap();

        // Same directory, lease held by this (live) process: read-only.
        let second = store(&dir);
        assert!(second.is_read_only());
        second.append(&[b"dropped".to_vec()]).unwrap();
        second.compact(&[b"dropped".to_vec()]).unwrap();
        assert_eq!(second.load(), vec![b"one".to_vec()], "writes are no-ops");

        // Releasing the lease hands the next opener the pen back.
        drop(first);
        drop(second);
        let third = store(&dir);
        assert!(!third.is_read_only());
        third.append(&[b"two".to_vec()]).unwrap();
        assert_eq!(third.load().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_and_garbage_locks_are_reclaimed() {
        let dir = tempdir("stale-lock");
        fs::create_dir_all(&dir).unwrap();
        // A pid that cannot be alive (beyond any kernel pid_max).
        fs::write(dir.join("scc.lock"), u32::MAX.to_string()).unwrap();
        let s = store(&dir);
        assert!(!s.is_read_only(), "dead holder must be reclaimed");
        drop(s);
        fs::write(dir.join("scc.lock"), "not a pid at all").unwrap();
        let s = store(&dir);
        assert!(!s.is_read_only(), "garbage lock must be reclaimed");
        drop(s);
        assert!(!dir.join("scc.lock").exists(), "lease released on drop");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_is_stable() {
        // FNV-1a reference values: the on-disk format depends on them.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
