//! The cj-persist acceptance properties, mirroring the PR 3 parallel-solve
//! equivalence suite: over random recursive abstraction systems, a fresh
//! process ("process 2") whose memo is warm-loaded from a cache directory
//! that "process 1" populated must produce a closed environment
//! **bit-identical** to a from-scratch solve — while reporting disk hits
//! and running zero fixpoint iterations. And a cache mutilated in any way
//! (truncated, bit-flipped, version-bumped, replaced with garbage) must
//! degrade to a cold start that *still* produces the identical result.

use cj_infer::options::InferStats;
use cj_infer::pipeline::{solve_all, solve_all_memo};
use cj_persist::SccDiskCache;
use cj_regions::abstraction::{AbsBody, AbsCall, AbsEnv, ConstraintAbs};
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::incremental::SolveMemo;
use cj_regions::var::RegVar;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One abstraction spec: parameter count, atom seeds, call seeds (the
/// same encoding as `crates/core/tests/parallel_solve.rs`).
type AbsSpec = (u8, Vec<(u8, u8, bool)>, Vec<(u8, u8)>);

fn arb_system() -> impl Strategy<Value = Vec<AbsSpec>> {
    proptest::collection::vec(
        (
            1u8..5,
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        ),
        1..9,
    )
}

/// Decodes a spec into a well-formed abstraction environment `q0..qN`
/// with arbitrary (mutual) recursion.
fn build_env(spec: &[AbsSpec]) -> AbsEnv {
    let pcounts: Vec<usize> = spec.iter().map(|(p, _, _)| *p as usize).collect();
    let mut env = AbsEnv::new();
    for (i, (p, atoms, calls)) in spec.iter().enumerate() {
        let base = (i as u32) * 10 + 1;
        let params: Vec<RegVar> = (0..*p as u32).map(|k| RegVar(base + k)).collect();
        let vars: Vec<RegVar> = params.iter().copied().chain([RegVar::HEAP]).collect();
        let atom_set: ConstraintSet = atoms
            .iter()
            .map(|&(a, b, eq)| {
                let x = vars[a as usize % vars.len()];
                let y = vars[b as usize % vars.len()];
                if eq {
                    Atom::eq(x, y)
                } else {
                    Atom::outlives(x, y)
                }
            })
            .collect();
        let abs_calls = calls
            .iter()
            .map(|&(c, s)| {
                let callee = c as usize % spec.len();
                let args: Vec<RegVar> = (0..pcounts[callee])
                    .map(|k| vars[(s as usize + k) % vars.len()])
                    .collect();
                AbsCall {
                    name: format!("q{callee}"),
                    args,
                }
            })
            .collect();
        env.insert(ConstraintAbs {
            name: format!("q{i}"),
            params,
            body: AbsBody {
                atoms: atom_set,
                calls: abs_calls,
            },
        });
    }
    env
}

fn env_string(env: &AbsEnv) -> String {
    env.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// A fresh cache directory per call (tests may run concurrently).
fn tempdir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cj-persist-warm-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #[test]
    fn warm_start_from_disk_is_bit_identical_and_reports_disk_hits(
        spec in arb_system()
    ) {
        let env = build_env(&spec);
        let (want, _) = solve_all(&env);

        // "Process 1": cold solve, persist, drop everything in memory.
        let dir = tempdir();
        {
            let memo = SolveMemo::new();
            let mut stats = InferStats::default();
            let (got, _) = solve_all_memo(&env, &memo, &mut stats);
            prop_assert_eq!(env_string(&got), env_string(&want));
            prop_assert_eq!(stats.sccs_disk_hits, 0, "nothing on disk yet");
            let cache = SccDiskCache::open(&dir).unwrap();
            cache.flush(&memo).unwrap();
            cache.compact(&memo).unwrap();
        }

        // "Process 2": a fresh memo warm-loaded from the same directory.
        let cache = SccDiskCache::open(&dir).unwrap();
        let memo = SolveMemo::new();
        let loaded = cache.load_into(&memo);
        prop_assert!(loaded > 0, "process 1 persisted at least one SCC");
        let mut stats = InferStats::default();
        let (warm, iters) = solve_all_memo(&env, &memo, &mut stats);
        prop_assert_eq!(
            env_string(&warm),
            env_string(&want),
            "warm start must be bit-identical to from-scratch"
        );
        prop_assert_eq!(iters, 0, "every fixpoint served from disk");
        prop_assert_eq!(stats.sccs_solved, 0);
        prop_assert!(stats.sccs_disk_hits >= 1);
        prop_assert_eq!(stats.sccs_disk_hits, stats.sccs_reused);
        prop_assert_eq!(stats.sccs_disk_hits as u64, memo.disk_hits());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutilated_caches_cold_start_with_identical_results(
        spec in arb_system(),
        cut in 1u8..40,
        flip in any::<u16>(),
    ) {
        let env = build_env(&spec);
        let (want, _) = solve_all(&env);
        let dir = tempdir();
        {
            let memo = SolveMemo::new();
            let mut stats = InferStats::default();
            solve_all_memo(&env, &memo, &mut stats);
            let cache = SccDiskCache::open(&dir).unwrap();
            cache.flush(&memo).unwrap();
        }

        // Mutilate the journal: truncate by `cut` bytes and flip one byte.
        let cache = SccDiskCache::open(&dir).unwrap();
        let mut bytes = std::fs::read(cache.journal_path()).unwrap();
        let keep = bytes.len().saturating_sub(cut as usize);
        bytes.truncate(keep);
        if !bytes.is_empty() {
            let at = flip as usize % bytes.len();
            bytes[at] ^= 0x5a;
        }
        std::fs::write(cache.journal_path(), &bytes).unwrap();

        // Loading must not fail, and whatever survives must still solve
        // to the identical environment (a surviving record is a genuine
        // entry; a lost one is just a re-solve).
        let memo = SolveMemo::new();
        SccDiskCache::open(&dir).unwrap().load_into(&memo);
        let mut stats = InferStats::default();
        let (got, _) = solve_all_memo(&env, &memo, &mut stats);
        prop_assert_eq!(env_string(&got), env_string(&want));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A version-bumped cache file is ignored wholesale — cold start, not an
/// error, and re-flushing replaces it with a loadable current-version one.
#[test]
fn version_bump_cold_starts_then_recovers() {
    let env = build_env(&[(3, vec![(0, 1, false), (1, 2, true)], vec![(0, 1)])]);
    let (want, _) = solve_all(&env);
    let dir = tempdir();
    let memo = SolveMemo::new();
    let mut stats = InferStats::default();
    solve_all_memo(&env, &memo, &mut stats);
    let cache = SccDiskCache::open(&dir).unwrap();
    cache.flush(&memo).unwrap();
    cache.compact(&memo).unwrap();

    // Bump the version field (byte 8..12 after the magic) of both files.
    for path in [cache.snapshot_path(), cache.journal_path()] {
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
    }
    // Release the writer lease so the "cold process" below can rebuild.
    drop(cache);
    let cold = SolveMemo::new();
    assert_eq!(SccDiskCache::open(&dir).unwrap().load_into(&cold), 0);
    let mut stats = InferStats::default();
    let (got, _) = solve_all_memo(&env, &cold, &mut stats);
    assert_eq!(env_string(&got), env_string(&want));
    assert_eq!(stats.sccs_disk_hits, 0);
    assert!(stats.sccs_solved > 0, "genuinely cold");

    // The cold process can rebuild the cache in the current format.
    let rebuilt = SccDiskCache::open(&dir).unwrap();
    rebuilt.flush(&cold).unwrap();
    rebuilt.compact(&cold).unwrap();
    let warm = SolveMemo::new();
    assert!(SccDiskCache::open(&dir).unwrap().load_into(&warm) > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent flushers over one cache (the daemon's background thread vs
/// its shutdown path) must never corrupt it: afterwards the cache loads
/// and a warm solve is still bit-identical.
#[test]
fn concurrent_flush_and_compact_keep_the_cache_loadable() {
    let dir = tempdir();
    let specs: Vec<Vec<AbsSpec>> = (0..6u8)
        .map(|i| {
            vec![(
                1 + i % 4,
                vec![(i, i.wrapping_add(1), i % 2 == 0)],
                vec![(0, i)],
            )]
        })
        .collect();
    let memo = std::sync::Arc::new(SolveMemo::new());
    let cache = std::sync::Arc::new(SccDiskCache::open(&dir).unwrap());
    std::thread::scope(|scope| {
        for chunk in specs.chunks(2) {
            let memo = std::sync::Arc::clone(&memo);
            let cache = std::sync::Arc::clone(&cache);
            scope.spawn(move || {
                for spec in chunk {
                    let mut stats = InferStats::default();
                    solve_all_memo(&build_env(spec), &memo, &mut stats);
                    cache.flush(&memo).unwrap();
                }
                cache.compact(&memo).unwrap();
            });
        }
    });
    let warm = SolveMemo::new();
    assert!(SccDiskCache::open(&dir).unwrap().load_into(&warm) > 0);
    for spec in &specs {
        let env = build_env(spec);
        let (want, _) = solve_all(&env);
        let mut stats = InferStats::default();
        let (got, _) = solve_all_memo(&env, &warm, &mut stats);
        assert_eq!(env_string(&got), env_string(&want));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
