//! # cj-trace — structured tracing spans and a metrics registry
//!
//! A dependency-free observability layer in the spirit of rustc's
//! `-Z self-profile` (measureme): the whole pipeline — parse, typecheck,
//! per-SCC solve, extent rewriting, lowering, register lowering
//! (`rvm-lower`), policy check, VM execution (`vm-exec`/`rvm-exec`) —
//! and the daemon's internals (reactor dispatch, queue wait, worker
//! handling, persist flush) open [`span`]s that are recorded into
//! per-thread buffers with monotonic timestamps and attached counters.
//!
//! **Cost model.** Recording is off until [`install`] flips one global
//! `AtomicBool`. With no sink installed a [`span`] call is exactly one
//! relaxed atomic load and returns an inert guard whose drop is a no-op —
//! cheap enough to leave in release hot paths (the VM opens one span per
//! *program*, never per instruction). With a sink installed, a finished
//! span is one `Vec` push into a thread-local buffer; buffers flush into
//! the global sink in batches and on thread exit.
//!
//! Two exporters consume the drained [`Event`]s:
//!
//! - [`chrome_trace_json`] emits Chrome trace-event JSON (complete `"X"`
//!   events) loadable in Perfetto / `chrome://tracing`;
//! - [`summarize`] + [`render_summary`] fold the events into a
//!   self-time/total-time table per phase (`cjrc trace-summary`).
//!
//! Independently of spans, [`MetricsRegistry`] holds named monotone
//! counters and fixed-log-bucket latency [`Histogram`]s (p50/p95/p99)
//! keyed by request kind — the daemon's scrapeable surface behind the
//! `metrics` request and the `--metrics-addr` HTTP endpoint.

#![forbid(unsafe_code)]
#![forbid(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global recording state
// ---------------------------------------------------------------------------

/// The one-word gate every [`span`] call loads. Nothing else is touched
/// while recording is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide monotonic epoch all event timestamps are relative to.
/// Established once, at the first [`install`]; Chrome trace timestamps
/// only need a consistent base, not an absolute one.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Next per-thread id. `ThreadId::as_u64` is unstable, and Chrome traces
/// render nicer with small dense tids anyway.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The global sink thread buffers flush into.
static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Thread buffers flush into [`SINK`] once they hold this many events.
const FLUSH_AT: usize = 512;

/// One finished span (or recorded interval), ready for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Category (taxonomy group), e.g. `"pipeline"` or `"daemon"`.
    pub cat: &'static str,
    /// Phase name, e.g. `"solve-scc"` or `"queue-wait"`.
    pub name: &'static str,
    /// Dense per-thread id (1-based, assigned in thread-creation order).
    pub tid: u64,
    /// Microseconds since the recording epoch.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on its thread when the span opened (0 = top level).
    pub depth: u16,
    /// Counters attached with [`Span::add`], exported as trace args.
    pub counters: Vec<(&'static str, u64)>,
}

struct ThreadBuf {
    tid: u64,
    depth: u16,
    events: Vec<Event>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        sink.append(&mut self.events);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // A thread that exits while recording is on must not lose its
        // tail: flush whatever is still buffered.
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: 0,
        events: Vec::new(),
    });
}

/// Turns span recording on (idempotent). Events recorded before the
/// matching [`drain`] accumulate in per-thread buffers and the global
/// sink; any events left over from an earlier recording are discarded.
pub fn install() {
    let _ = EPOCH.set(Instant::now());
    SINK.lock().unwrap_or_else(|e| e.into_inner()).clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Whether a sink is installed. This is the exact load a [`span`] call
/// performs; exposed so instrumentation can skip counter preparation
/// that only matters when recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flushes the calling thread's buffer and returns everything recorded
/// so far, leaving recording on. Buffers of *other still-running*
/// threads are not visible until those threads flush (every `FLUSH_AT`
/// events) or exit — drain after joining the threads you care about.
pub fn drain() -> Vec<Event> {
    TLS.with(|tls| tls.borrow_mut().flush());
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

/// Turns recording off and returns every buffered event ([`drain`]).
pub fn uninstall() -> Vec<Event> {
    ENABLED.store(false, Ordering::SeqCst);
    drain()
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An open span: records one [`Event`] covering its own lifetime when
/// dropped. Inert (and free) when no sink is installed.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    cat: &'static str,
    name: &'static str,
    start: Instant,
    counters: Vec<(&'static str, u64)>,
}

/// Opens a span. One relaxed atomic load when recording is off. The
/// span's depth is the count of same-thread spans still open above it,
/// re-read when it closes (drop order keeps the two in agreement).
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    TLS.with(|tls| {
        let mut buf = tls.borrow_mut();
        buf.depth = buf.depth.saturating_add(1);
    });
    Span(Some(ActiveSpan {
        cat,
        name,
        start: Instant::now(),
        counters: Vec::new(),
    }))
}

impl Span {
    /// Attaches a counter (exported as a trace-event arg). Accumulates
    /// on repeated keys.
    pub fn add(&mut self, key: &'static str, value: u64) {
        if let Some(active) = &mut self.0 {
            match active.counters.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => *v = v.saturating_add(value),
                None => active.counters.push((key, value)),
            }
        }
    }

    /// Whether this span will record an event (a sink was installed when
    /// it opened).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let end = Instant::now();
        record_event(
            active.cat,
            active.name,
            active.start,
            end,
            active.counters,
            true,
        );
    }
}

/// Records a completed interval that started at `started` and ends now —
/// for durations whose start lives on another thread (e.g. the time a
/// job spent queued between the reactor and a worker). No-op when
/// recording is off.
pub fn record_interval(cat: &'static str, name: &'static str, started: Instant) {
    if !enabled() {
        return;
    }
    record_event(cat, name, started, Instant::now(), Vec::new(), false);
}

fn record_event(
    cat: &'static str,
    name: &'static str,
    start: Instant,
    end: Instant,
    counters: Vec<(&'static str, u64)>,
    close_depth: bool,
) {
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ts_us = start.saturating_duration_since(epoch).as_micros() as u64;
    let dur_us = end.saturating_duration_since(start).as_micros() as u64;
    TLS.with(|tls| {
        let mut buf = tls.borrow_mut();
        let depth = if close_depth {
            buf.depth = buf.depth.saturating_sub(1);
            buf.depth
        } else {
            buf.depth
        };
        let tid = buf.tid;
        buf.events.push(Event {
            cat,
            name,
            tid,
            ts_us,
            dur_us,
            depth,
            counters,
        });
        if buf.events.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

// ---------------------------------------------------------------------------
// Chrome trace-event exporter
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders events as Chrome trace-event JSON (the `traceEvents` array
/// format with complete `"ph":"X"` events), loadable in Perfetto and
/// `chrome://tracing`. Counters become the event's `args`.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(ev.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape_json(ev.cat, &mut out);
        out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&ev.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&ev.ts_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&ev.dur_us.to_string());
        out.push_str(",\"args\":{\"depth\":");
        out.push_str(&ev.depth.to_string());
        for (key, value) in &ev.counters {
            out.push_str(",\"");
            escape_json(key, &mut out);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

// ---------------------------------------------------------------------------
// Self-time summary
// ---------------------------------------------------------------------------

/// Aggregated wall time of one phase across all its spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// The span name the row aggregates.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total (inclusive) duration in microseconds.
    pub total_us: u64,
    /// Self time: total minus time spent in child spans on the same
    /// thread, in microseconds.
    pub self_us: u64,
}

/// Folds events into one row per span name, computing self time by
/// interval containment per thread (a span is a child of the innermost
/// same-thread span whose interval contains it). Rows are sorted by
/// descending self time.
pub fn summarize(events: &[Event]) -> Vec<PhaseSummary> {
    // Per-thread containment pass: sort by start (outer spans first on
    // ties), keep a stack of open intervals, charge each span's duration
    // to its innermost enclosing parent.
    let mut by_tid: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        by_tid.entry(ev.tid).or_default().push(i);
    }
    let mut child_us = vec![0u64; events.len()];
    for indices in by_tid.values_mut() {
        indices.sort_by_key(|&i| (events[i].ts_us, u64::MAX - events[i].dur_us));
        let mut stack: Vec<usize> = Vec::new();
        for &i in indices.iter() {
            let ev = &events[i];
            while let Some(&top) = stack.last() {
                let end = events[top].ts_us + events[top].dur_us;
                if end <= ev.ts_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_us[parent] = child_us[parent].saturating_add(ev.dur_us);
            }
            stack.push(i);
        }
    }
    let mut rows: BTreeMap<&str, PhaseSummary> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let row = rows.entry(ev.name).or_insert_with(|| PhaseSummary {
            name: ev.name.to_string(),
            count: 0,
            total_us: 0,
            self_us: 0,
        });
        row.count += 1;
        row.total_us += ev.dur_us;
        row.self_us += ev.dur_us.saturating_sub(child_us[i]);
    }
    let mut rows: Vec<PhaseSummary> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
    rows
}

/// Renders a [`summarize`] table: one aligned row per phase with span
/// count, self time, and total time.
pub fn render_summary(rows: &[PhaseSummary]) -> String {
    let name_width = rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("phase".len()))
        .max()
        .unwrap_or(5);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<name_width$}  {:>8}  {:>12}  {:>12}\n",
        "phase", "count", "self(us)", "total(us)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<name_width$}  {:>8}  {:>12}  {:>12}\n",
            row.name, row.count, row.self_us, row.total_us
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Number of fixed log buckets in a [`Histogram`]. Bucket 0 holds the
/// value 0; bucket `i >= 1` holds `[2^(i-1), 2^i)`; the last bucket is
/// open-ended. 40 buckets cover half a trillion microseconds — about
/// six days — before saturating.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-log-bucket latency histogram: lock-free to record, with
/// quantile estimates read from bucket upper bounds. Values are
/// conventionally microseconds but the histogram is unit-agnostic.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A point-in-time read of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// 50th-percentile estimate (bucket upper bound).
    pub p50: u64,
    /// 95th-percentile estimate (bucket upper bound).
    pub p95: u64,
    /// 99th-percentile estimate (bucket upper bound).
    pub p99: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// The half-open `[lo, hi)` range of a bucket; `hi` is `None` for
    /// the open-ended last bucket.
    pub fn bucket_range(index: usize) -> (u64, Option<u64>) {
        match index {
            0 => (0, Some(1)),
            i if i < HISTOGRAM_BUCKETS - 1 => (1 << (i - 1), Some(1 << i)),
            i => (1 << (i - 1), None),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in microseconds.
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_micros() as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Quantile estimate: the inclusive upper bound of the first bucket
    /// at which the cumulative count reaches `ceil(q * count)`. Returns
    /// 0 on an empty histogram; the open-ended last bucket reports
    /// `u64::MAX`. Because cumulative counts are monotone in the bucket
    /// index, `quantile(a) <= quantile(b)` whenever `a <= b`.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return match Histogram::bucket_range(i) {
                    (_, Some(hi)) => hi - 1,
                    (_, None) => u64::MAX,
                };
            }
        }
        u64::MAX
    }

    /// Reads count, sum and the p50/p95/p99 estimates at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Named monotone counters plus named latency [`Histogram`]s — the one
/// place the daemon's scattered per-subsystem atomics meet so a single
/// scrape sees them all. Histograms are created on first use and handed
/// out as `Arc`s, so recording never holds the registry lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A point-in-time read of a whole [`MetricsRegistry`], ordered by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name/value pairs.
    pub counters: Vec<(String, u64)>,
    /// Histogram name/snapshot pairs.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a named counter (created at 0 on first use).
    pub fn add(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut counters = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        match counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets a named counter to an absolute value (for mirroring an
    /// external monotone atomic into the registry at scrape time).
    pub fn set(&self, name: &str, value: u64) {
        self.counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), value);
    }

    /// The named histogram, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Reads every counter and histogram at once.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

impl MetricsSnapshot {
    /// JSON object form: `{"counters":{...},"histograms":{name:{count,
    /// sum_us,p50_us,p95_us,p99_us},...}}` — the payload of the daemon's
    /// `metrics` request.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
                h.count, h.sum, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("}}");
        out
    }

    /// Plain-text exposition (one `name value` line per sample, with
    /// `{quantile="..."}` labels on histogram quantiles) — the body the
    /// `--metrics-addr` HTTP endpoint serves.
    pub fn render_text(&self) -> String {
        let mut out = String::from("# cjrc metrics, text exposition\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}{{quantile=\"0.5\"}} {}\n", h.p50));
            out.push_str(&format!("{name}{{quantile=\"0.95\"}} {}\n", h.p95));
            out.push_str(&format!("{name}{{quantile=\"0.99\"}} {}\n", h.p99));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Tests that install/drain global recording state must not overlap.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = uninstall();
        {
            let mut s = span("test", "noop");
            assert!(!s.is_recording());
            s.add("counter", 1);
        }
        record_interval("test", "noop-interval", Instant::now());
        install();
        let events = uninstall();
        assert!(
            events.iter().all(|e| e.cat != "test"),
            "disabled spans must leave no events"
        );
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install();
        {
            let mut outer = span("t", "outer");
            outer.add("k", 2);
            outer.add("k", 3);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("t", "inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let events = uninstall();
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner = events.iter().find(|e| e.name == "inner").expect("inner");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert_eq!(outer.counters, vec![("k", 5)]);
        // The child interval is contained in the parent's.
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    }

    #[test]
    fn cross_thread_spans_nest_independently() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install();
        let _main_outer = span("t", "main-outer");
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let _a = span("t", "worker-outer");
                    let _b = span("t", "worker-inner");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(_main_outer);
        let events = uninstall();
        let outers: Vec<_> = events.iter().filter(|e| e.name == "worker-outer").collect();
        let inners: Vec<_> = events.iter().filter(|e| e.name == "worker-inner").collect();
        assert_eq!(outers.len(), 2);
        assert_eq!(inners.len(), 2);
        // Each worker starts at depth 0 regardless of the main thread's
        // open span: nesting state is per-thread.
        assert!(outers.iter().all(|e| e.depth == 0));
        assert!(inners.iter().all(|e| e.depth == 1));
        // The two workers got distinct tids, both distinct from main's.
        let main_tid = events.iter().find(|e| e.name == "main-outer").unwrap().tid;
        assert_ne!(outers[0].tid, outers[1].tid);
        assert!(outers.iter().all(|e| e.tid != main_tid));
    }

    #[test]
    fn summary_computes_self_time_by_containment() {
        let events = vec![
            Event {
                cat: "t",
                name: "parent",
                tid: 1,
                ts_us: 0,
                dur_us: 100,
                depth: 0,
                counters: vec![],
            },
            Event {
                cat: "t",
                name: "child",
                tid: 1,
                ts_us: 10,
                dur_us: 30,
                depth: 1,
                counters: vec![],
            },
            Event {
                cat: "t",
                name: "child",
                tid: 1,
                ts_us: 50,
                dur_us: 20,
                depth: 1,
                counters: vec![],
            },
            // Same name on another thread: not a child of tid 1's parent.
            Event {
                cat: "t",
                name: "child",
                tid: 2,
                ts_us: 20,
                dur_us: 40,
                depth: 0,
                counters: vec![],
            },
        ];
        let rows = summarize(&events);
        let parent = rows.iter().find(|r| r.name == "parent").unwrap();
        assert_eq!(parent.total_us, 100);
        assert_eq!(parent.self_us, 50); // 100 - 30 - 20
        let child = rows.iter().find(|r| r.name == "child").unwrap();
        assert_eq!(child.count, 3);
        assert_eq!(child.total_us, 90);
        assert_eq!(child.self_us, 90);
        let table = render_summary(&rows);
        assert!(table.contains("phase"));
        assert!(table.contains("parent"));
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![Event {
            cat: "pipeline",
            name: "solve-scc",
            tid: 3,
            ts_us: 12,
            dur_us: 34,
            depth: 1,
            counters: vec![("iterations", 7)],
        }];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"solve-scc\""));
        assert!(json.contains("\"ts\":12"));
        assert!(json.contains("\"dur\":34"));
        assert!(json.contains("\"iterations\":7"));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn histogram_bucket_ranges_partition_the_domain() {
        // Consecutive buckets tile [0, inf): each hi equals the next lo.
        let mut expected_lo = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_range(i);
            assert_eq!(lo, expected_lo, "bucket {i} lower bound");
            match hi {
                Some(hi) => {
                    assert!(hi > lo);
                    expected_lo = hi;
                }
                None => assert_eq!(i, HISTOGRAM_BUCKETS - 1),
            }
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    proptest! {
        #[test]
        fn recorded_value_falls_in_its_reported_bucket(value in any::<u64>()) {
            let index = Histogram::bucket_index(value);
            let (lo, hi) = Histogram::bucket_range(index);
            prop_assert!(value >= lo);
            if let Some(hi) = hi {
                prop_assert!(value < hi);
            }
        }

        #[test]
        fn single_value_quantile_bounds_the_value(value in 0u64..1_000_000_000) {
            // Any quantile of a one-value histogram reports that value's
            // bucket upper bound: the value never exceeds the estimate,
            // and the estimate stays within one bucket (2x) of the value.
            let h = Histogram::new();
            h.record(value);
            let p99 = h.quantile(0.99);
            prop_assert!(value <= p99);
            let (lo, _) = Histogram::bucket_range(Histogram::bucket_index(value));
            prop_assert!(p99 >= lo);
        }

        #[test]
        fn quantiles_are_monotone(values in proptest::collection::vec(0u64..10_000_000, 1..64)) {
            let h = Histogram::new();
            for v in &values {
                h.record(*v);
            }
            let s = h.snapshot();
            prop_assert!(s.p50 <= s.p95);
            prop_assert!(s.p95 <= s.p99);
            prop_assert!(s.count == values.len() as u64);
            // The max recorded value never exceeds p100.
            let p100 = h.quantile(1.0);
            let max = *values.iter().max().unwrap();
            prop_assert!(max <= p100);
        }
    }

    #[test]
    fn registry_counters_and_histograms_round_trip() {
        let registry = MetricsRegistry::new();
        registry.add("requests_total", 2);
        registry.add("requests_total", 3);
        registry.set("uptime_ms", 1234);
        registry.histogram("request_us_check").record(100);
        registry.histogram("request_us_check").record(200);
        let snapshot = registry.snapshot();
        let counters: BTreeMap<_, _> = snapshot.counters.iter().cloned().collect();
        assert_eq!(counters["requests_total"], 5);
        assert_eq!(counters["uptime_ms"], 1234);
        let (name, h) = &snapshot.histograms[0];
        assert_eq!(name, "request_us_check");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 300);
        let json = snapshot.to_json();
        assert!(json.contains("\"requests_total\":5"));
        assert!(json.contains("\"request_us_check\":{\"count\":2,\"sum_us\":300"));
        let text = snapshot.render_text();
        assert!(text.contains("requests_total 5\n"));
        assert!(text.contains("request_us_check_count 2\n"));
        assert!(text.contains("request_us_check{quantile=\"0.99\"}"));
    }
}
