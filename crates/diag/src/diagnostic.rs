//! Structured compiler diagnostics.
//!
//! A [`Diagnostic`] is a machine-readable message: severity, stable error
//! [`code`](Diagnostic::code), primary [`Span`], secondary labelled spans,
//! and free-form notes. [`Diagnostics`] is the batch form used as the error
//! type of whole passes. Rendering (caret snippets, JSON) lives in
//! [`emit`](crate::emit).

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error; compilation cannot proceed.
    Error,
    /// A non-fatal warning.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// A secondary span attached to a [`Diagnostic`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// The labelled location.
    pub span: Span,
    /// What this location contributes to the error.
    pub message: String,
}

/// A compiler message attached to a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `"E0201"`); `None` until the
    /// emitting pass stamps one (see [`Diagnostics::set_default_code`]).
    pub code: Option<&'static str>,
    /// Human-readable message, lowercase, no trailing period.
    pub message: String,
    /// Primary location.
    pub span: Span,
    /// Secondary locations with their own messages.
    pub labels: Vec<Label>,
    /// Free-form explanatory notes.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic with the given severity at `span`.
    pub fn new(severity: Severity, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity,
            code: None,
            message: message.into(),
            span,
            labels: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// An error diagnostic at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Severity::Error, message, span)
    }

    /// A warning diagnostic at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(Severity::Warning, message, span)
    }

    /// Sets the stable error code.
    pub fn with_code(mut self, code: &'static str) -> Diagnostic {
        self.code = Some(code);
        self
    }

    /// Attaches a secondary labelled span.
    pub fn with_label(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.labels.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Attaches an explanatory note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Renders `self` as `severity at line:col: message` using `map`.
    ///
    /// This is the terse one-line form; see
    /// [`Emitter`](crate::emit::Emitter) for caret snippets and JSON.
    pub fn render(&self, map: &SourceMap) -> String {
        let (line, col) = map.line_col(self.span.lo);
        format!("{} at {}:{}: {}", self.severity, line, col, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// A batch of diagnostics, used as the error type of compiler passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// The collected messages, in emission order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// A collection holding the single diagnostic `d`.
    pub fn from_one(d: Diagnostic) -> Diagnostics {
        Diagnostics { items: vec![d] }
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Adds an error with the given message and span.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of collected diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Iterates over the collected diagnostics.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.items.iter()
    }

    /// Appends every diagnostic of `other`.
    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// Stamps `code` on every diagnostic that does not carry one yet.
    ///
    /// Passes call this at their boundary so each stage owns a code range
    /// without threading codes through every emission site.
    pub fn set_default_code(mut self, code: &'static str) -> Diagnostics {
        for d in &mut self.items {
            if d.code.is_none() {
                d.code = Some(code);
            }
        }
        self
    }

    /// Renders every diagnostic on its own terse line.
    pub fn render(&self, map: &SourceMap) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(map));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{}", d)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

impl From<Diagnostic> for Diagnostics {
    fn from(d: Diagnostic) -> Diagnostics {
        Diagnostics::from_one(d)
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Diagnostics {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_render() {
        let map = SourceMap::new("class A {}\nclass A {}");
        let mut ds = Diagnostics::new();
        ds.error("duplicate class `A`", Span::new(11, 21));
        assert!(ds.has_errors());
        assert_eq!(ds.render(&map).trim(), "error at 2:1: duplicate class `A`");
    }

    #[test]
    fn warnings_are_not_errors() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("unused", Span::DUMMY));
        assert!(!ds.has_errors());
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn default_code_fills_only_gaps() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error("a", Span::DUMMY).with_code("E0001"));
        ds.push(Diagnostic::error("b", Span::DUMMY));
        let ds = ds.set_default_code("E0999");
        assert_eq!(ds.items[0].code, Some("E0001"));
        assert_eq!(ds.items[1].code, Some("E0999"));
    }

    #[test]
    fn builder_attaches_structure() {
        let d = Diagnostic::error("bad", Span::new(1, 2))
            .with_code("E0100")
            .with_label(Span::new(5, 8), "declared here")
            .with_note("try removing it");
        assert_eq!(d.code, Some("E0100"));
        assert_eq!(d.labels.len(), 1);
        assert_eq!(d.notes, vec!["try removing it".to_string()]);
    }
}
