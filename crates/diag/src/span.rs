//! Source positions.
//!
//! Every AST node carries a [`Span`] (byte range into the source text). A
//! [`SourceMap`] converts byte offsets back to line/column pairs when
//! rendering diagnostics.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// A span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Span {
        debug_assert!(lo <= hi, "span bounds out of order");
        Span { lo, hi }
    }

    /// The zero span, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether this is the dummy (synthesized) span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Maps byte offsets to 1-based line/column pairs.
///
/// # Examples
///
/// ```
/// use cj_diag::SourceMap;
///
/// let map = SourceMap::new("ab\ncd");
/// assert_eq!(map.line_col(3), (2, 1)); // 'c'
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets at which each line starts.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Builds the line index for `src`.
    pub fn new(src: &str) -> SourceMap {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// 1-based `(line, column)` of the byte `offset`.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// Number of lines in the source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// Byte range `[start, end)` of the 1-based `line`, excluding the
    /// trailing newline.
    pub fn line_span(&self, line: u32) -> (u32, u32) {
        let idx = (line.max(1) as usize - 1).min(self.line_starts.len() - 1);
        let start = self.line_starts[idx];
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(self.len);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_basics() {
        let map = SourceMap::new("abc\ndef\n\nx");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(2), (1, 3));
        assert_eq!(map.line_col(4), (2, 1));
        assert_eq!(map.line_col(8), (3, 1));
        assert_eq!(map.line_col(9), (4, 1));
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_col_clamps_past_end() {
        let map = SourceMap::new("ab");
        assert_eq!(map.line_col(100), (1, 3));
    }

    #[test]
    fn line_spans() {
        let map = SourceMap::new("abc\ndef\n\nx");
        assert_eq!(map.line_span(1), (0, 3));
        assert_eq!(map.line_span(2), (4, 7));
        assert_eq!(map.line_span(3), (8, 8));
        assert_eq!(map.line_span(4), (9, 10));
    }
}
