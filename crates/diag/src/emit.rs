//! Rendering diagnostics: rustc-style caret snippets and a JSON form.
//!
//! The [`Emitter`] borrows the source text once and renders any number of
//! diagnostics against it:
//!
//! ```text
//! error[E0201]: unknown class `Pear`
//!   --> demo.cj:3:11
//!    |
//!  3 |     Pear p = new Pear(null);
//!    |     ^^^^
//!    = note: classes must be declared at the top level
//! ```

use crate::diagnostic::{Diagnostic, Diagnostics, Severity};
use crate::span::{SourceMap, Span};
use std::fmt::Write as _;

/// Renders diagnostics against one source file.
#[derive(Debug)]
pub struct Emitter<'a> {
    name: &'a str,
    src: &'a str,
    map: SourceMap,
}

impl<'a> Emitter<'a> {
    /// An emitter for the source text `src`, displayed as file `name`.
    pub fn new(name: &'a str, src: &'a str) -> Emitter<'a> {
        Emitter {
            name,
            src,
            map: SourceMap::new(src),
        }
    }

    /// The line index built for the source.
    pub fn source_map(&self) -> &SourceMap {
        &self.map
    }

    /// Renders one diagnostic as a caret-style snippet.
    pub fn render(&self, d: &Diagnostic) -> String {
        let mut out = String::new();
        match d.code {
            Some(code) => {
                let _ = writeln!(out, "{}[{}]: {}", d.severity, code, d.message);
            }
            None => {
                let _ = writeln!(out, "{}: {}", d.severity, d.message);
            }
        }
        let gutter = self.gutter_width(d);
        self.render_span(&mut out, d.span, None, caret_char(d.severity), gutter);
        for label in &d.labels {
            self.render_span(&mut out, label.span, Some(&label.message), '-', gutter);
        }
        for note in &d.notes {
            let _ = writeln!(out, "{:gutter$} = note: {}", "", note);
        }
        out
    }

    /// Renders every diagnostic in `ds`, blank-line separated.
    pub fn render_all(&self, ds: &Diagnostics) -> String {
        let mut out = String::new();
        for (i, d) in ds.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&self.render(d));
        }
        out
    }

    /// Renders one diagnostic as a JSON object (single line): the shared
    /// serializer with this emitter's single file as the top-level `file`
    /// and file-relative span locations.
    pub fn render_json(&self, d: &Diagnostic) -> String {
        render_json_diagnostic(d, Some(self.name), &|span| self.json_span(span))
    }

    /// Renders a whole batch as a JSON array (one object per line).
    pub fn render_json_all(&self, ds: &Diagnostics) -> String {
        let mut out = String::from("[");
        for (i, d) in ds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            out.push_str(&self.render_json(d));
        }
        out.push_str("\n]");
        out
    }

    fn json_span(&self, span: Span) -> String {
        let (line, col) = self.map.line_col(span.lo);
        format!(
            "{{\"lo\":{},\"hi\":{},\"line\":{},\"col\":{}}}",
            span.lo, span.hi, line, col
        )
    }

    fn gutter_width(&self, d: &Diagnostic) -> usize {
        let max_line = std::iter::once(d.span)
            .chain(d.labels.iter().map(|l| l.span))
            .map(|s| self.map.line_col(s.lo).0)
            .max()
            .unwrap_or(1);
        max_line.to_string().len() + 1
    }

    fn render_span(
        &self,
        out: &mut String,
        span: Span,
        label: Option<&str>,
        underline: char,
        gutter: usize,
    ) {
        // A dummy span means "no location" (IO/CLI errors, program-scoped
        // checker violations, non-convergence): the file line alone, with
        // no snippet — a caret at 1:1 would point at unrelated source.
        if span.is_dummy() {
            let _ = writeln!(out, "{:gutter$}--> {}", "", self.name);
            if let Some(msg) = label {
                let _ = writeln!(out, "{:gutter$}  {}", "", msg);
            }
            return;
        }
        let (line, col) = self.map.line_col(span.lo);
        let _ = writeln!(out, "{:gutter$}--> {}:{}:{}", "", self.name, line, col);
        let (start, end) = self.map.line_span(line);
        let text = &self.src[start as usize..end as usize];
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{:>gutter$} | {}", line, text.trim_end());
        // Underline the intersection of the span with its first line.
        let under_start = (col as usize).saturating_sub(1);
        let under_len = ((span.hi.min(end).max(span.lo) - span.lo) as usize).max(1);
        let mut marks = String::new();
        let _ = write!(
            marks,
            "{:gutter$} | {:under_start$}{}",
            "",
            "",
            underline.to_string().repeat(under_len)
        );
        if let Some(msg) = label {
            let _ = write!(marks, " {}", msg);
        }
        let _ = writeln!(out, "{}", marks);
    }
}

fn caret_char(severity: Severity) -> char {
    match severity {
        Severity::Error => '^',
        Severity::Warning => '~',
    }
}

/// The one JSON serializer for diagnostics, parameterized by a span →
/// location rendering so every driver agrees on the object shape:
///
/// ```text
/// {"severity":..,"code":..,"message":..[,"file":..],"span":..,
///  "labels":[{"span":..,"message":..},…],"notes":[..]}
/// ```
///
/// `span_json` renders one span as a JSON value — a single-file emitter
/// emits `{"lo":..,"hi":..,"line":..,"col":..}` plus a top-level `file`
/// (pass `Some(name)`); a multi-file workspace passes `None` and tags each
/// span with its owning file instead (`null` for unlocated spans).
pub fn render_json_diagnostic(
    d: &Diagnostic,
    file: Option<&str>,
    span_json: &dyn Fn(Span) -> String,
) -> String {
    let mut out = String::from("{");
    let _ = write!(out, "\"severity\":\"{}\"", d.severity);
    match d.code {
        Some(code) => {
            let _ = write!(out, ",\"code\":{}", json_string(code));
        }
        None => out.push_str(",\"code\":null"),
    }
    let _ = write!(out, ",\"message\":{}", json_string(&d.message));
    if let Some(name) = file {
        let _ = write!(out, ",\"file\":{}", json_string(name));
    }
    let _ = write!(out, ",\"span\":{}", span_json(d.span));
    out.push_str(",\"labels\":[");
    for (i, label) in d.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"span\":{},\"message\":{}}}",
            span_json(label.span),
            json_string(&label.message)
        );
    }
    out.push_str("],\"notes\":[");
    for (i, note) in d.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(note));
    }
    out.push_str("]}");
    out
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Diagnostic;

    #[test]
    fn caret_snippet_shape() {
        let src = "class A {}\nclass A {}";
        let e = Emitter::new("demo.cj", src);
        let d = Diagnostic::error("duplicate class `A`", Span::new(11, 18))
            .with_code("E0200")
            .with_label(Span::new(0, 7), "first declared here")
            .with_note("classes may be declared once");
        let text = e.render(&d);
        assert!(text.starts_with("error[E0200]: duplicate class `A`\n"));
        assert!(text.contains("--> demo.cj:2:1"), "{text}");
        assert!(text.contains("2 | class A {}"), "{text}");
        assert!(text.contains("^^^^^^^"), "{text}");
        assert!(text.contains("------- first declared here"), "{text}");
        assert!(
            text.contains("= note: classes may be declared once"),
            "{text}"
        );
    }

    #[test]
    fn json_roundtrippable_shape() {
        let src = "class A {}";
        let e = Emitter::new("demo.cj", src);
        let d = Diagnostic::error("boom \"quoted\"", Span::new(6, 7)).with_code("E0100");
        let json = e.render_json(&d);
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"code\":\"E0100\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"span\":{\"lo\":6,\"hi\":7,\"line\":1,\"col\":7}"));
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("t\tq\"\\"), "\"t\\tq\\\"\\\\\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn multiline_span_underlines_first_line_only() {
        let src = "abc\ndef";
        let e = Emitter::new("x.cj", src);
        let d = Diagnostic::error("spans lines", Span::new(1, 6));
        let text = e.render(&d);
        assert!(text.contains("1 | abc"), "{text}");
        assert!(text.contains("^^"), "{text}");
    }
}
