//! # cj-diag — shared structured diagnostics
//!
//! The diagnostics substrate every other crate in the workspace builds on:
//!
//! - [`span`]: byte [`Span`]s and the line-indexing [`SourceMap`];
//! - [`diagnostic`]: the structured [`Diagnostic`] (severity, stable error
//!   code, message, primary span, secondary labels, notes) and the batch
//!   [`Diagnostics`] collection used as pass error types;
//! - [`emit`]: the [`Emitter`] that renders caret-style source snippets and
//!   a line-oriented JSON form;
//! - [`IntoDiagnostic`]: the trait each crate's concrete error type
//!   implements so the driver can funnel every failure — lexing through
//!   runtime — into one machine-readable stream.
//!
//! # Examples
//!
//! ```
//! use cj_diag::{Diagnostic, Emitter, Span};
//!
//! let src = "class A {}\nclass A {}";
//! let d = Diagnostic::error("duplicate class `A`", Span::new(11, 18))
//!     .with_code("E0200")
//!     .with_label(Span::new(0, 7), "first declared here");
//! let rendered = Emitter::new("demo.cj", src).render(&d);
//! assert!(rendered.contains("error[E0200]"));
//! assert!(rendered.contains("^^^^^^^"));
//! ```
#![forbid(unsafe_code)]

pub mod diagnostic;
pub mod emit;
pub mod span;

pub use diagnostic::{Diagnostic, Diagnostics, Label, Severity};
pub use emit::{json_string, render_json_diagnostic, Emitter};
pub use span::{SourceMap, Span};

/// Stable error-code ranges, one block per pipeline stage.
///
/// Individual diagnostics may carry finer-grained codes; these are the
/// stage defaults stamped at pass boundaries via
/// [`Diagnostics::set_default_code`].
pub mod codes {
    /// Lexical errors.
    pub const LEX: &str = "E0100";
    /// Parse errors.
    pub const PARSE: &str = "E0101";
    /// Normal (region-free) type errors.
    pub const TYPECHECK: &str = "E0200";
    /// Region-inference policy failures.
    pub const INFER: &str = "E0300";
    /// Region-checker violations (Theorem 1 oracle).
    pub const REGION_CHECK: &str = "E0400";
    /// Downcast-safety analysis findings.
    pub const DOWNCAST: &str = "E0500";
    /// Runtime faults.
    pub const RUNTIME: &str = "E0600";
    /// Command-line usage errors.
    pub const CLI: &str = "E0700";
    /// I/O failures (unreadable input file, …).
    pub const IO: &str = "E0701";
    /// Policy rule-file errors (malformed or unresolvable rules).
    pub const POLICY: &str = "E0710";
    /// Policy violation: a `no-escape` rule (value escapes its creation
    /// region).
    pub const POLICY_NO_ESCAPE: &str = "E0711";
    /// Policy violation: a `confine` rule (allocation outside the owner's
    /// regions).
    pub const POLICY_CONFINE: &str = "E0712";
    /// Policy violation: a `separate` rule (source-tainted region reaches a
    /// sink parameter).
    pub const POLICY_SEPARATE: &str = "E0713";
}

/// Conversion of a concrete error type into a structured [`Diagnostic`].
///
/// Implemented by every error type in the workspace (`Diagnostics` itself,
/// `InferError`, `CheckError`, `RuntimeError`, CLI errors, …) so public
/// APIs never need `Box<dyn Error>` or `String` to cross crate boundaries.
pub trait IntoDiagnostic {
    /// Converts `self` into a structured diagnostic.
    fn into_diagnostic(self) -> Diagnostic;
}

impl IntoDiagnostic for Diagnostic {
    fn into_diagnostic(self) -> Diagnostic {
        self
    }
}

/// Batch counterpart of [`IntoDiagnostic`]; blanket-implemented for any
/// single-diagnostic error, and directly for collection error types.
pub trait IntoDiagnostics {
    /// Converts `self` into a batch of structured diagnostics.
    fn into_diagnostics(self) -> Diagnostics;
}

impl<T: IntoDiagnostic> IntoDiagnostics for T {
    fn into_diagnostics(self) -> Diagnostics {
        Diagnostics::from_one(self.into_diagnostic())
    }
}

impl IntoDiagnostics for Diagnostics {
    fn into_diagnostics(self) -> Diagnostics {
        self
    }
}
