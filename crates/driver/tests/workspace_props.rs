//! Property test for invalidation correctness: for random edit sequences,
//! an incrementally recompiled `Workspace` must produce exactly the same
//! result — same annotated `RProgram` pretty-printout, same closed
//! environment `Q` — as a from-scratch `Session` compile of the
//! concatenated sources. This pins the central contract of the incremental
//! pipeline: caches change how much work is *replayed*, never what is
//! computed.

use cj_driver::{Session, SessionOptions, Workspace};
use proptest::prelude::*;

/// Body variants per file. Within a file, variants 0..3 share the same
/// class shape (signature-preserving body edits → per-method reuse), while
/// variant 3 changes the method set (shape change → full invalidation).
const A_VARIANTS: &[&str] = &[
    "class Box { Object item;
       Object get() { this.item }
       void put(Object o) { this.item = o; }
     }",
    "class Box { Object item;
       Object get() { this.item }
       void put(Object o) { this.put2(o); }
       void put2(Object o) { this.item = o; }
     }",
    "class Box { Object item;
       Object get() { this.get() }
       void put(Object o) { this.item = o; }
     }",
    "class Box { Object item;
       Object get() { this.item }
       void put(Object o) { this.item = o; this.item = this.get(); }
     }",
];

const B_VARIANTS: &[&str] = &[
    "class Chain { Object value; Chain rest;
       static Chain grow(Chain c, Object o) { new Chain(o, c) }
       Object head() { this.value }
     }",
    "class Chain { Object value; Chain rest;
       static Chain grow(Chain c, Object o) { grow(c, o) }
       Object head() { this.value }
     }",
    "class Chain { Object value; Chain rest;
       static Chain grow(Chain c, Object o) { new Chain(o, new Chain(o, c)) }
       Object head() { this.value }
     }",
    "class Chain { Object value; Chain rest;
       static Chain grow(Chain c, Object o) { new Chain(o, c) }
       Object head() { this.rest.head() }
     }",
];

const C_VARIANTS: &[&str] = &[
    "class Ops {
       static Object roundtrip(Box b, Object o) { b.put(o); b.get() }
     }",
    "class Ops {
       static Object roundtrip(Box b, Object o) { b.put(o); b.put(b.get()); b.get() }
     }",
    "class Ops {
       static Object roundtrip(Box b, Object o) { Chain c = grow((Chain) null, o); c.head() }
     }",
    "class Ops {
       static Object roundtrip(Box b, Object o) { b.get() }
       static Object second(Box b) { b.get() }
     }",
];

const FILES: [&str; 3] = ["a.cj", "b.cj", "c.cj"];
const VARIANTS: [&[&str]; 3] = [A_VARIANTS, B_VARIANTS, C_VARIANTS];

fn scratch_result(texts: &[&str; 3]) -> (String, Vec<String>) {
    // Workspace merge order is file-name order: a.cj, b.cj, c.cj.
    let mut session = Session::new(texts.concat(), SessionOptions::default());
    let compilation = session.check().expect("variants are well-formed");
    let pretty = cj_infer::pretty::program_to_string(&compilation.program);
    let q = compilation
        .program
        .q
        .iter()
        .map(|a| a.to_string())
        .collect();
    (pretty, q)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_edit_sequences_match_from_scratch_compiles(
        edits in proptest::collection::vec((0usize..3, 0usize..4), 1..7)
    ) {
        let mut ws = Workspace::new(SessionOptions::default());
        let mut current = [A_VARIANTS[0], B_VARIANTS[0], C_VARIANTS[0]];
        for (i, name) in FILES.iter().enumerate() {
            ws.set_source(*name, current[i]).unwrap();
        }
        for &(file, variant) in &edits {
            current[file] = VARIANTS[file][variant];
            ws.set_source(FILES[file], current[file]).unwrap();

            let compilation = ws.check().expect("incremental compile succeeds");
            let ws_pretty = cj_infer::pretty::program_to_string(&compilation.program);
            let ws_q: Vec<String> =
                compilation.program.q.iter().map(|a| a.to_string()).collect();
            let (scratch_pretty, scratch_q) = scratch_result(&current);
            prop_assert_eq!(
                &ws_pretty, &scratch_pretty,
                "annotated program diverged after edits {:?}", edits
            );
            prop_assert_eq!(
                &ws_q, &scratch_q,
                "closed environment diverged after edits {:?}", edits
            );
        }
    }
}

#[test]
fn every_variant_combination_is_well_formed() {
    // The property above assumes all single-file variants compile; verify
    // the corners so a broken pool fails loudly here, not probabilistically.
    for (i, variants) in VARIANTS.iter().enumerate() {
        for v in *variants {
            let mut texts = [A_VARIANTS[0], B_VARIANTS[0], C_VARIANTS[0]];
            texts[i] = v;
            let mut s = Session::new(texts.concat(), SessionOptions::default());
            s.check()
                .unwrap_or_else(|e| panic!("file {i} variant failed: {e}"));
        }
    }
}
