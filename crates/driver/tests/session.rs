//! Integration tests for the staged `Session` driver: artifact caching,
//! kernel sharing across subtype modes, batch compilation, and error
//! behaviour.

use cj_driver::{compile_many, Session, SessionOptions, SourceInput};
use cj_infer::{DowncastPolicy, InferOptions, SubtypeMode};
use cj_runtime::Value;

const PAIR: &str = "
    class Pair { Object fst; Object snd;
      Object getFst() { this.fst }
      void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
    }
    class M { static int main(int n) { n * 2 } }";

#[test]
fn stages_cache_their_artifacts() {
    let mut s = Session::new(PAIR, SessionOptions::default());
    let a1 = s.parse().unwrap();
    let a2 = s.parse().unwrap();
    assert!(std::sync::Arc::ptr_eq(&a1, &a2), "parse must be cached");
    let k1 = s.typecheck().unwrap();
    let k2 = s.typecheck().unwrap();
    assert!(std::sync::Arc::ptr_eq(&k1, &k2), "typecheck must be cached");
    let c1 = s.infer().unwrap();
    let c2 = s.infer().unwrap();
    assert!(std::sync::Arc::ptr_eq(&c1, &c2), "infer must be cached");
    assert_eq!(s.pass_counts().parse, 1);
    assert_eq!(s.pass_counts().typecheck, 1);
    assert_eq!(s.pass_counts().infer, 1);
}

#[test]
fn later_stages_reuse_earlier_artifacts() {
    let mut s = Session::new(PAIR, SessionOptions::default());
    // Entering at the end of the pipeline runs every stage exactly once.
    let out = s.run(&[21]).unwrap();
    assert_eq!(out.value, Value::Int(42));
    let counts = s.pass_counts();
    assert_eq!(
        (counts.parse, counts.typecheck, counts.infer, counts.check),
        (1, 1, 1, 1)
    );
    // A second run re-executes only the interpreter.
    let out = s.run(&[10]).unwrap();
    assert_eq!(out.value, Value::Int(20));
    assert_eq!(s.pass_counts().infer, 1);
    assert_eq!(s.pass_counts().run, 2);
}

#[test]
fn one_kernel_serves_all_three_subtype_modes() {
    let mut s = Session::new(PAIR, SessionOptions::default());
    for mode in SubtypeMode::ALL {
        s.check_with(InferOptions::with_mode(mode)).unwrap();
    }
    let counts = s.pass_counts();
    assert_eq!(counts.parse, 1, "one parse for all modes");
    assert_eq!(counts.typecheck, 1, "one kernel for all modes");
    assert_eq!(counts.infer, 3, "one inference per mode");
    assert_eq!(counts.check, 3, "one check per mode");
    // Asking for a mode again hits the cache.
    s.check_with(InferOptions::with_mode(SubtypeMode::Field))
        .unwrap();
    assert_eq!(s.pass_counts().infer, 3);
}

#[test]
fn infer_artifacts_are_keyed_by_full_options() {
    let src = "
        class A { Object x; }
        class B extends A { Object y; }
        class M { static B f(A a) { (B) a } }";
    let mut s = Session::new(src, SessionOptions::default());
    let equate = s
        .infer_with(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::EquateFirst,
            ..Default::default()
        })
        .unwrap();
    let padding = s
        .infer_with(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Padding,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(s.pass_counts().infer, 2, "policies are distinct artifacts");
    // Only the padding policy runs the Sec 5 flow analysis.
    assert_eq!(equate.stats.downcast_sites, 0);
    assert_eq!(padding.stats.downcast_sites, 1);
    // Reject fails — and the failure does not poison the cached artifacts.
    let err = s
        .infer_with(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Reject,
            ..Default::default()
        })
        .unwrap_err();
    assert!(err.has_errors());
    assert_eq!(s.pass_counts().typecheck, 1);
    s.infer_with(InferOptions {
        mode: SubtypeMode::Object,
        downcast: DowncastPolicy::EquateFirst,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(s.pass_counts().infer, 3, "reject attempt ran inference");
}

#[test]
fn compile_many_preserves_order_and_isolates_failures() {
    let inputs = vec![
        SourceInput::new("ok-1", PAIR),
        SourceInput::new("broken-parse", "class {"),
        SourceInput::new(
            "ok-2",
            "class Cell { Object item; Object get() { this.item } }",
        ),
        SourceInput::new("broken-types", "class A { Unknown u; }"),
    ];
    let results = compile_many(&inputs, &SessionOptions::default());
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
    assert!(results[3].is_err());
    let pair = results[0].as_ref().unwrap();
    assert!(pair.stats.regions_created > 0);
    let parse_err = results[1].as_ref().unwrap_err();
    assert!(parse_err.has_errors());
}

#[test]
fn compile_many_handles_large_batches() {
    // More sources than cores: the shared queue must drain completely.
    let inputs: Vec<SourceInput> = (0..64)
        .map(|i| {
            SourceInput::new(
                format!("gen-{i}"),
                format!("class G{i} {{ int v; int get() {{ this.v + {i} }} }}"),
            )
        })
        .collect();
    let results = compile_many(&inputs, &SessionOptions::default());
    assert_eq!(results.len(), 64);
    assert!(results.iter().all(|r| r.is_ok()));
}

#[test]
fn from_file_reports_io_diagnostics() {
    let err = Session::from_file(
        "/nonexistent/definitely-missing.cj",
        SessionOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err.len(), 1);
    assert_eq!(err.items[0].code, Some(cj_diag::codes::IO));
    assert!(err.items[0].message.contains("definitely-missing.cj"));
}

#[test]
fn run_faults_are_structured_runtime_diagnostics() {
    let mut s = Session::new(
        "class M { static int main(int n) { 10 / n } }",
        SessionOptions::default(),
    );
    let err = s.run(&[0]).unwrap_err();
    assert_eq!(err.items[0].code, Some(cj_diag::codes::RUNTIME));
    assert!(err.items[0].message.contains("division by zero"));
    assert!(!err.items[0].span.is_dummy(), "fault carries its span");
}
