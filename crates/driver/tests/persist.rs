//! End-to-end tests for `--cache-dir`-style persistence at the driver
//! layer, plus the daemon's production-hardening bounds (backpressure,
//! idle eviction): a *fresh process* (modelled as a fresh `Workspace` /
//! `Daemon` over a fresh memo) pointed at a populated cache directory
//! must produce byte-identical output to a from-scratch build while
//! reporting `sccs_disk_hits`, and a mutilated cache must cold-start
//! rather than fail.

use cj_driver::{Daemon, DaemonConfig, Frontend, SessionOptions, Workspace};
use cj_persist::SccDiskCache;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CELL: &str = "class Cell { Object item; Object get() { this.item } \
                    void put(Object o) { this.item = o; } }";
const USER: &str = "class M { static Object f(Cell c) { c.put(c.get()); c.get() } }";

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cj-driver-persist-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workspace_with(dir: &PathBuf) -> (Workspace, usize) {
    let mut ws = Workspace::new(SessionOptions::default());
    let loaded = ws.attach_disk_cache(Arc::new(SccDiskCache::open(dir).expect("open cache")));
    (ws, loaded)
}

#[test]
fn workspace_warm_restart_is_bit_identical_and_reports_disk_hits() {
    let dir = tempdir("workspace");

    // The ground truth: an isolated, cache-less compile.
    let mut isolated = Workspace::new(SessionOptions::default());
    isolated.set_source("cell.cj", CELL).unwrap();
    isolated.set_source("use.cj", USER).unwrap();
    let want = isolated.annotate().unwrap();

    // "Process 1": cold compile against an empty cache, then persist.
    let (mut first, loaded) = workspace_with(&dir);
    assert_eq!(loaded, 0, "nothing cached yet");
    first.set_source("cell.cj", CELL).unwrap();
    first.set_source("use.cj", USER).unwrap();
    first.check().unwrap();
    assert_eq!(first.annotate().unwrap(), want);
    let counts = first.pass_counts();
    assert!(counts.sccs_solved > 0);
    assert_eq!(counts.sccs_disk_hits, 0);
    let persisted = first.compact_disk_cache().unwrap();
    assert!(persisted > 0, "solved SCCs must reach disk");
    drop(first);

    // "Process 2": a fresh workspace + fresh memo, warm from the dir.
    let (mut second, loaded) = workspace_with(&dir);
    assert!(loaded > 0, "restart must warm-load the persisted SCCs");
    second.set_source("cell.cj", CELL).unwrap();
    second.set_source("use.cj", USER).unwrap();
    second.check().unwrap();
    assert_eq!(
        second.annotate().unwrap(),
        want,
        "warm restart must be bit-identical to from-scratch"
    );
    let counts = second.pass_counts();
    assert!(
        counts.sccs_disk_hits >= 1,
        "disk reuse must be observable: {counts:?}"
    );
    assert_eq!(counts.sccs_solved, 0, "every SCC came from disk");
    assert_eq!(
        counts.sccs_shared_hits, 0,
        "disk hits are not cross-client hits"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_missing_cache_files_cold_start_without_errors() {
    let dir = tempdir("corrupt");
    let (mut first, _) = workspace_with(&dir);
    first.set_source("cell.cj", CELL).unwrap();
    first.check().unwrap();
    first.compact_disk_cache().unwrap();
    let snapshot = first.disk_cache().unwrap().snapshot_path();
    drop(first);

    // Overwrite the snapshot with garbage: attach loads 0, compiles fine.
    std::fs::write(&snapshot, b"\x00\xffgarbage, definitely not a cache").unwrap();
    let (mut cold, loaded) = workspace_with(&dir);
    assert_eq!(loaded, 0, "garbage must cold-start");
    cold.set_source("cell.cj", CELL).unwrap();
    cold.check().unwrap();
    assert_eq!(cold.pass_counts().sccs_disk_hits, 0);
    // And the cold process repopulates the cache for the next one.
    cold.compact_disk_cache().unwrap();
    let (_, reloaded) = workspace_with(&dir);
    assert!(reloaded > 0, "cache must be rebuilt after corruption");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Two live processes (modelled as two open caches) pointed at one cache
/// directory: the second opener degrades to read-only — it still
/// warm-loads and reports disk hits, but persists nothing, so the two
/// writers can never interleave journal batches (the ROADMAP
/// "single-writer lease" item).
#[test]
fn second_cache_opener_is_read_only_but_still_warm() {
    let dir = tempdir("lock");
    let (mut first, _) = workspace_with(&dir);
    first.set_source("cell.cj", CELL).unwrap();
    first.check().unwrap();
    assert!(first.compact_disk_cache().unwrap() > 0);
    assert!(!first.disk_cache().unwrap().is_read_only());

    // `first` stays alive: its store holds the writer lease.
    let cache2 = Arc::new(SccDiskCache::open(&dir).expect("open degrades, not fails"));
    assert!(cache2.is_read_only());
    let mut second = Workspace::new(SessionOptions::default());
    let loaded = second.attach_disk_cache(Arc::clone(&cache2));
    assert!(loaded > 0, "read-only caches still warm-load");
    second.set_source("cell.cj", CELL).unwrap();
    second.check().unwrap();
    assert!(second.pass_counts().sccs_disk_hits >= 1);
    assert_eq!(
        second.flush_disk_cache().unwrap(),
        0,
        "read-only flush persists nothing"
    );
    assert_eq!(second.compact_disk_cache().unwrap(), 0);

    // Lease released: the next opener writes again.
    drop(first);
    let cache3 = SccDiskCache::open(&dir).unwrap();
    assert!(!cache3.is_read_only());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- daemon ----------------------------------------------------------------

fn drive_tcp(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").expect("send request");
            writer.flush().expect("flush");
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            assert!(!response.is_empty(), "daemon closed early on `{line}`");
            response.trim_end().to_string()
        })
        .collect()
}

fn compile_script() -> Vec<String> {
    vec![
        format!(
            "{{\"cmd\":\"open\",\"file\":\"cell.cj\",\"text\":{}}}",
            cj_diag::json_string(CELL)
        ),
        format!(
            "{{\"cmd\":\"open\",\"file\":\"use.cj\",\"text\":{}}}",
            cj_diag::json_string(USER)
        ),
        "{\"cmd\":\"check\"}".to_string(),
        "{\"cmd\":\"annotate\"}".to_string(),
        "{\"cmd\":\"stats\"}".to_string(),
        "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
    ]
}

fn field(response: &str, name: &str) -> u64 {
    response
        .split(&format!("\"{name}\":"))
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no numeric `{name}` in {response}"))
}

#[test]
fn daemon_restart_with_cache_dir_serves_disk_hits_bit_identically() {
    let dir = tempdir("daemon");
    let config = || DaemonConfig {
        cache_dir: Some(dir.clone()),
        workers: 2,
        ..DaemonConfig::default()
    };

    // Daemon incarnation 1: cold compile; shutdown persists the memo.
    let daemon = Daemon::bind_tcp("127.0.0.1:0", config()).expect("bind 1");
    assert_eq!(daemon.cache_entries_loaded(), 0);
    let addr = daemon.local_addr().unwrap();
    let handle = std::thread::spawn(move || daemon.run().expect("run 1"));
    let first = drive_tcp(addr, &compile_script());
    let summary = handle.join().unwrap();
    assert!(summary.cache_entries_persisted > 0, "{summary:?}");
    assert!(first[2].contains("\"status\":\"well-region-typed\""));
    assert_eq!(field(&first[2], "sccs_disk_hits"), 0);

    // Incarnation 2: same cache dir, fresh process state.
    let daemon = Daemon::bind_tcp("127.0.0.1:0", config()).expect("bind 2");
    assert!(
        daemon.cache_entries_loaded() > 0,
        "bind must warm-load the cache"
    );
    let addr = daemon.local_addr().unwrap();
    let handle = std::thread::spawn(move || daemon.run().expect("run 2"));
    let second = drive_tcp(addr, &compile_script());
    handle.join().unwrap();

    // Byte-identical semantic answers (check status, annotation)…
    assert_eq!(first[3], second[3], "annotate must be byte-identical");
    assert!(second[2].contains("\"status\":\"well-region-typed\""));
    // …with the reuse visible in the compile's pass counters and the
    // memo-wide stats block.
    assert!(
        field(&second[2], "sccs_disk_hits") >= 1,
        "warm daemon must report disk hits: {}",
        second[2]
    );
    assert_eq!(field(&second[2], "sccs_solved"), 0);
    assert!(field(&second[4], "disk_hits") >= 1, "{}", second[4]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_limit_connections_get_a_structured_reject() {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            max_clients: 1,
            workers: 2,
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().unwrap();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));

    // Client 1 occupies the single slot (and proves it is being served).
    let held = TcpStream::connect(addr).expect("client 1");
    let mut reader = BufReader::new(held.try_clone().unwrap());
    let mut writer = held;
    writeln!(writer, "{{\"cmd\":\"stats\"}}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"ok\":true"), "{line}");

    // Client 2 must be rejected immediately — a structured JSON error,
    // not a hang in the accept queue.
    let rejected = TcpStream::connect(addr).expect("client 2");
    let mut reader = BufReader::new(rejected);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reject");
    assert!(line.contains("\"ok\":false"), "{line}");
    assert!(line.contains("\"code\":\"capacity\""), "{line}");
    assert!(
        line.contains("daemon at capacity (1 active client)"),
        "{line}"
    );
    let mut eof = String::new();
    assert_eq!(
        reader.read_line(&mut eof).unwrap(),
        0,
        "rejected connection must be closed"
    );

    // Client 1 ends; the slot frees up and a new client is served again.
    writeln!(writer, "{{\"cmd\":\"shutdown\"}}").unwrap();
    writer.flush().unwrap();
    line.clear();
    let mut reader = BufReader::new(writer.try_clone().unwrap());
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\":\"bye\""), "{line}");
    drop((reader, writer));
    // The slot is released by the worker *after* the connection ends;
    // poll briefly instead of racing it.
    let mut served = None;
    for _ in 0..100 {
        let probe = TcpStream::connect(addr).expect("client 3");
        let mut reader = BufReader::new(probe.try_clone().unwrap());
        let mut writer = probe;
        writeln!(writer, "{{\"cmd\":\"stats\"}}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.contains("\"ok\":true") {
            served = Some((reader, writer));
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let (mut reader, mut writer) = served.expect("slot must free after client 1 left");
    writeln!(writer, "{{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}}").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let summary = handle.join().unwrap();
    assert!(summary.clients_rejected >= 1, "{summary:?}");
}

/// A client that drips bytes without ever completing a line must hit the
/// idle bound exactly like a silent one — the idle clock is checked on
/// every received chunk, not only on a fully quiet socket — so it cannot
/// pin the pool worker indefinitely.
#[test]
fn byte_dripping_clients_hit_the_idle_bound_too() {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            frontend: Frontend::Threads,
            workers: 1,
            idle_timeout: Duration::from_millis(300),
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().unwrap();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));

    // The dripper: one byte every 40ms, never a newline.
    let dripper = TcpStream::connect(addr).expect("dripper");
    let mut drip_half = dripper.try_clone().unwrap();
    let dripping = std::thread::spawn(move || {
        for _ in 0..50 {
            if drip_half.write_all(b"x").is_err() {
                break;
            }
            let _ = drip_half.flush();
            std::thread::sleep(Duration::from_millis(40));
        }
    });

    // With one worker, this only answers once the dripper is evicted.
    let got = drive_tcp(
        addr,
        &[
            "{\"cmd\":\"stats\"}".to_string(),
            "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
        ],
    );
    assert!(got[0].contains("\"ok\":true"), "{}", got[0]);

    let mut reader = BufReader::new(dripper);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"code\":\"idle\""), "{line}");
    dripping.join().unwrap();
    handle.join().unwrap();
}

#[test]
fn idle_clients_are_evicted_and_release_their_worker() {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            frontend: Frontend::Threads,
            workers: 1,
            idle_timeout: Duration::from_millis(300),
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().unwrap();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));

    // The stalled client: connects, sends half a line, then nothing. It
    // pins the only worker until the idle eviction fires.
    let stalled = TcpStream::connect(addr).expect("stalled client");
    let mut half = stalled.try_clone().unwrap();
    write!(half, "{{\"cmd\":\"st").unwrap();
    half.flush().unwrap();

    // A well-behaved client connects behind it; with one worker it is
    // only served once the stalled client is evicted.
    let got = drive_tcp(
        addr,
        &[
            "{\"cmd\":\"stats\"}".to_string(),
            "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
        ],
    );
    assert!(got[0].contains("\"ok\":true"), "{}", got[0]);

    // The stalled client was told why it was dropped, then disconnected.
    let mut reader = BufReader::new(stalled);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"code\":\"idle\""), "{line}");
    assert!(line.contains("idle timeout"), "{line}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "then EOF");
    handle.join().unwrap();
}
