//! Property test for policy-verdict stability: over random programs and
//! random edit sequences, the policy verdicts of an incrementally edited
//! `Workspace` must be bit-identical to a from-scratch workspace over the
//! same sources — and invariant across `--extents paper|liveness` and
//! both execution engines. The per-method verdict memo and the per-revision
//! outcome cache change how much checking is *replayed*, never what the
//! rules conclude.

use cj_driver::{PolicyOutcome, SessionOptions, Workspace};
use cj_infer::{ExtentMode, InferOptions};
use cj_runtime::Engine;
use proptest::prelude::*;

/// Rules exercising all three kinds, checked against every variant mix.
const RULES: &str = "no-escape Cell\nconfine Cell to Box\nseparate Secret from log\n";

/// `a.cj`: the confined class and its owner. Variants keep the shape but
/// change how `Box` populates its field.
const A_VARIANTS: &[&str] = &[
    "class Cell { Object v; }
     class Box { Cell c;
       void fill() { this.c = new Cell(null); }
     }",
    "class Cell { Object v; }
     class Box { Cell c;
       void fill() { this.c = new Cell(null); this.c.v = null; }
     }",
    "class Cell { Object v; }
     class Box { Cell c;
       void fill() { }
     }",
];

/// `b.cj`: the source class and the sink method.
const B_VARIANTS: &[&str] = &[
    "class Secret { Object v; }
     class Log { static void log(Object o) { } }",
    "class Secret { Object v; }
     class Log { static void log(Object o) { Object t = o; t = null; } }",
];

/// `c.cj`: drivers mixing clean and violating behaviour — a `Cell`
/// allocated outside `Box` (confine), an escaping `leak` (no-escape), and
/// a `Secret` fed to `log` (separate) versus an untainted `audit` helper.
const C_VARIANTS: &[&str] = &[
    "class M {
       static void main() { Box b = new Box(null); b.fill(); }
     }",
    "class M {
       static void main() { Cell x = new Cell(null); x.v = null; }
     }",
    "class M {
       static Cell leak() { new Cell(null) }
       static void main() { Box b = new Box(null); b.fill(); }
     }",
    "class M {
       static void main() {
         Secret s = new Secret(null);
         log(s);
       }
     }",
    "class M {
       static void audit() { Object o = new Object(); log(o); }
       static void main() { Secret s = new Secret(null); s.v = null; audit(); }
     }",
];

const FILES: [&str; 3] = ["a.cj", "b.cj", "c.cj"];
const VARIANTS: [&[&str]; 3] = [A_VARIANTS, B_VARIANTS, C_VARIANTS];

/// The observable policy verdict, stripped of pass counters: one line per
/// diagnostic, rendered with spans, plus the outcome tallies.
fn verdict(ws: &Workspace, outcome: &PolicyOutcome) -> (String, u32, u32) {
    (
        ws.render(&outcome.diagnostics),
        outcome.violations,
        outcome.rule_errors,
    )
}

/// From-scratch workspace over `texts` under `opts`, policy checked once.
fn scratch_verdict(texts: &[&str; 3], opts: SessionOptions) -> (String, u32, u32) {
    let infer = opts.infer;
    let mut ws = Workspace::new(opts);
    for (name, text) in FILES.iter().zip(texts) {
        ws.set_source(*name, *text).unwrap();
    }
    ws.set_policy("rules.cjpolicy", RULES).unwrap();
    ws.check_with(infer).expect("variants are well-formed");
    let outcome = ws.check_policy_with(infer).expect("policy check runs");
    verdict(&ws, &outcome)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn policy_verdicts_match_from_scratch_and_are_mode_invariant(
        edits in proptest::collection::vec((0usize..3, 0usize..5), 1..6)
    ) {
        let mut ws = Workspace::new(SessionOptions::default());
        let mut current = [A_VARIANTS[0], B_VARIANTS[0], C_VARIANTS[0]];
        for (i, name) in FILES.iter().enumerate() {
            ws.set_source(*name, current[i]).unwrap();
        }
        ws.set_policy("rules.cjpolicy", RULES).unwrap();
        for &(file, variant) in &edits {
            current[file] = VARIANTS[file][variant % VARIANTS[file].len()];
            ws.set_source(FILES[file], current[file]).unwrap();

            ws.check().expect("incremental compile succeeds");
            let outcome = ws.check_policy().expect("policy check runs");
            let incremental = verdict(&ws, &outcome);
            let scratch = scratch_verdict(&current, SessionOptions::default());
            prop_assert_eq!(
                &incremental, &scratch,
                "verdicts diverged from scratch after edits {:?}", edits
            );

            // Letreg extent placement must not move policy verdicts: the
            // rules read allocation sites and the closed environment `Q`,
            // both of which `--extents liveness` leaves untouched.
            let liveness = scratch_verdict(
                &current,
                SessionOptions::with_infer(InferOptions {
                    extent: ExtentMode::Liveness,
                    ..InferOptions::default()
                }),
            );
            prop_assert_eq!(
                &incremental, &liveness,
                "verdicts diverged across extent modes after edits {:?}", edits
            );

            // Nor may the execution engine: policy is a static analysis.
            for engine in [Engine::Vm, Engine::Interp] {
                let mut opts = SessionOptions::default();
                opts.run.engine = engine;
                let by_engine = scratch_verdict(&current, opts);
                prop_assert_eq!(
                    &incremental, &by_engine,
                    "verdicts diverged under engine {:?} after edits {:?}", engine, edits
                );
            }
        }
    }
}

#[test]
fn every_variant_combination_is_well_formed() {
    // The property above assumes all single-file variants compile; verify
    // the corners so a broken pool fails loudly here, not probabilistically.
    for (i, variants) in VARIANTS.iter().enumerate() {
        for v in *variants {
            let mut texts = [A_VARIANTS[0], B_VARIANTS[0], C_VARIANTS[0]];
            texts[i] = v;
            let _ = scratch_verdict(&texts, SessionOptions::default());
        }
    }
}
