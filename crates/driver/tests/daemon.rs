//! End-to-end tests for the `cjrcd` compile daemon: N concurrent socket
//! clients compiling overlapping programs must receive byte-identical
//! `check`/`annotate`/`query` answers to isolated sequential `Server`
//! sessions (the shared memo changes how much work runs, never what is
//! computed), cross-client SCC reuse must actually happen and be
//! observable, and a daemon-scope shutdown must drain cleanly.

use cj_driver::{Daemon, DaemonConfig, Frontend, Server, SessionOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

const CELL: &str = "class Cell { Object item; Object get() { this.item } \
                    void put(Object o) { this.item = o; } }";

/// The request script of client `i`: the shared `cell.cj` plus a
/// client-specific consumer, then semantic queries.
fn script(i: usize) -> Vec<String> {
    let user = match i % 3 {
        0 => "class M { static Object f(Cell c) { c.get() } }",
        1 => "class M { static Object f(Cell c) { c.put(c.get()); c.get() } }",
        _ => {
            "class M { static Object f(Cell c) { Cell d = new Cell(null); \
              d.put(c.get()); d.get() } }"
        }
    };
    vec![
        format!(
            "{{\"cmd\":\"open\",\"file\":\"cell.cj\",\"text\":{}}}",
            cj_diag::json_string(CELL)
        ),
        format!(
            "{{\"cmd\":\"open\",\"file\":\"use.cj\",\"text\":{}}}",
            cj_diag::json_string(user)
        ),
        "{\"cmd\":\"check\"}".to_string(),
        "{\"cmd\":\"annotate\"}".to_string(),
        "{\"cmd\":\"query\",\"invariant\":\"Cell\"}".to_string(),
        "{\"cmd\":\"query\",\"invariant\":\"Cell\",\"entails\":\"r2>=r1\"}".to_string(),
        "{\"cmd\":\"query\",\"precondition\":\"f\"}".to_string(),
        "{\"cmd\":\"shutdown\"}".to_string(),
    ]
}

/// Drops the `passes_executed` suffix: with a shared memo the *work
/// counters* legitimately differ from an isolated session (that is the
/// point); everything semantic must match byte for byte.
fn strip_passes(response: &str) -> String {
    match response.find(",\"passes_executed\"") {
        Some(i) => format!("{}}}", &response[..i]),
        None => response.to_string(),
    }
}

/// Runs a script against a live daemon over TCP, one response per line.
fn drive_tcp(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").expect("send request");
            writer.flush().expect("flush");
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            assert!(!response.is_empty(), "daemon closed early on `{line}`");
            response.trim_end().to_string()
        })
        .collect()
}

/// Runs the same script through an isolated in-process `Server`.
fn drive_isolated(lines: &[String]) -> Vec<String> {
    let mut server = Server::new(SessionOptions::default());
    lines.iter().map(|l| server.handle_line(l)).collect()
}

/// The full concurrent-clients e2e, parameterized over the front end:
/// both must produce byte-identical protocol output.
fn concurrent_clients_e2e(frontend: Frontend) {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            frontend,
            workers: 4,
            solve_threads: 2,
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let memo = daemon.shared_memo();
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // Phase 1: three clients connected and compiling at the same time.
    let mut clients = Vec::new();
    for i in 0..3 {
        clients.push(std::thread::spawn(move || (i, drive_tcp(addr, &script(i)))));
    }
    for handle in clients {
        let (i, got) = handle.join().expect("client thread");
        let want = drive_isolated(&script(i));
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(
                strip_passes(g),
                strip_passes(w),
                "client {i}: daemon answer diverged from isolated session"
            );
        }
        // Sanity: the interesting answers actually appeared.
        assert!(got[2].contains("\"status\":\"well-region-typed\""));
        assert!(got[4].contains("\"abs\":\"inv.Cell<"));
        assert!(got[5].contains("\"entails\":true"));
    }

    // Phase 2: a fourth client arriving after the others must hit SCCs
    // they solved — cross-client reuse through the shared memo.
    let shared_before = memo.shared_hits();
    let script4 = {
        let mut s = script(0);
        s.insert(s.len() - 1, "{\"cmd\":\"stats\"}".to_string());
        s
    };
    let got = drive_tcp(addr, &script4);
    assert!(
        memo.shared_hits() > shared_before,
        "fourth client must reuse SCCs other clients solved"
    );
    // Its own compile reported the shared hits...
    let check = &got[2];
    let shared_field = check
        .split("\"sccs_shared_hits\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|n| n.parse::<u64>().ok())
        .expect("check response carries sccs_shared_hits");
    assert!(shared_field > 0, "expected cross-client hits in {check}");
    // ...and `stats` exposes the memo-wide shared view plus the daemon
    // counters (which front end, how many clients, connection peak).
    let stats = &got[7];
    assert!(stats.contains("\"shared_memo\":{"), "{stats}");
    assert!(!stats.contains("\"shared_hits\":0"), "{stats}");
    assert!(stats.contains("\"daemon\":{"), "{stats}");
    assert!(
        stats.contains(&format!("\"frontend\":\"{}\"", frontend.name())),
        "{stats}"
    );
    assert!(stats.contains("\"clients_served\":"), "{stats}");
    assert!(stats.contains("\"connections_peak\":"), "{stats}");
    // Byte-identical semantics for the late client too.
    let want = drive_isolated(&script(0));
    for (k, w) in want.iter().enumerate() {
        let g = if k < 7 { &got[k] } else { &got[k + 1] }; // skip stats
        if k == 7 {
            // shutdown response
            assert!(g.contains("\"status\":\"bye\""));
        } else {
            assert_eq!(strip_passes(g), strip_passes(w), "late client line {k}");
        }
    }

    // Phase 3: daemon-scope shutdown drains and joins cleanly.
    let bye = drive_tcp(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    assert!(bye[0].contains("\"status\":\"bye\""), "{:?}", bye);
    let summary = daemon_thread.join().expect("daemon thread");
    assert_eq!(summary.clients_served, 5);
    assert!(
        summary.connections_peak >= 3,
        "three clients were connected at once, peak {}",
        summary.connections_peak
    );
}

#[test]
fn concurrent_clients_match_isolated_sessions_and_share_sccs() {
    concurrent_clients_e2e(Frontend::Event);
}

#[test]
fn concurrent_clients_match_isolated_sessions_threads_frontend() {
    concurrent_clients_e2e(Frontend::Threads);
}

/// Event front end: a client dripping a request one byte at a time (one
/// poller turn per byte) exercises torn-frame reassembly; the responses
/// must match a well-behaved client's byte for byte.
#[test]
fn event_frontend_reassembles_byte_dripped_requests() {
    let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let requests = vec![
        format!(
            "{{\"cmd\":\"open\",\"file\":\"cell.cj\",\"text\":{}}}",
            cj_diag::json_string(CELL)
        ),
        "{\"cmd\":\"check\"}".to_string(),
    ];
    let mut got = Vec::new();
    for request in &requests {
        for byte in request.as_bytes() {
            writer.write_all(std::slice::from_ref(byte)).expect("drip");
            writer.flush().expect("flush");
        }
        writer.write_all(b"\n").expect("terminate");
        writer.flush().expect("flush");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "daemon closed early on `{request}`");
        got.push(response.trim_end().to_string());
    }
    assert!(
        got[1].contains("\"status\":\"well-region-typed\""),
        "{}",
        got[1]
    );
    let want = drive_isolated(&requests);
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(strip_passes(g), strip_passes(w), "dripped answer diverged");
    }
    drop(reader);
    drop(writer);

    let bye = drive_tcp(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    assert!(bye[0].contains("\"status\":\"bye\""), "{bye:?}");
    daemon_thread.join().expect("daemon thread");
}

/// Event front end: several requests arriving in **one** TCP segment are
/// answered in order — the framer holds pipelined lines while a request
/// is in flight instead of dropping or reordering them.
#[test]
fn event_frontend_serves_pipelined_requests_in_order() {
    let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let requests = vec![
        format!(
            "{{\"cmd\":\"open\",\"file\":\"cell.cj\",\"text\":{}}}",
            cj_diag::json_string(CELL)
        ),
        "{\"cmd\":\"check\"}".to_string(),
        "{\"cmd\":\"query\",\"invariant\":\"Cell\"}".to_string(),
        "{\"cmd\":\"shutdown\"}".to_string(),
    ];
    let mut batch = String::new();
    for request in &requests {
        batch.push_str(request);
        batch.push('\n');
    }
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // The whole conversation in a single write: every request after the
    // first waits first in the framer, then behind the paused reader.
    writer.write_all(batch.as_bytes()).expect("send batch");
    writer.flush().expect("flush");
    let mut got = Vec::new();
    for request in &requests {
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "daemon closed early on `{request}`");
        got.push(response.trim_end().to_string());
    }
    let want = drive_isolated(&requests);
    for (k, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(strip_passes(g), strip_passes(w), "pipelined line {k}");
    }
    assert!(got[3].contains("\"status\":\"bye\""), "{}", got[3]);

    let bye = drive_tcp(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    assert!(bye[0].contains("\"status\":\"bye\""), "{bye:?}");
    daemon_thread.join().expect("daemon thread");
}

/// Event front end: a half-open client (partial request, then silence)
/// is evicted by the idle clock with a structured goodbye — and while it
/// idles, a well-behaved client is served in full, proving the one event
/// thread is never pinned by the stalled connection.
#[test]
fn event_frontend_evicts_half_open_client_without_pinning() {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            workers: 1,
            idle_timeout: Duration::from_millis(300),
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // The half-open client: a torn request fragment, then silence. The
    // partial bytes must NOT reset the idle clock.
    let mut half_open = TcpStream::connect(addr).expect("half-open connect");
    half_open
        .write_all(b"{\"cmd\":\"chec")
        .expect("partial write");
    half_open.flush().expect("flush");

    // Meanwhile a full conversation completes on the same event thread.
    let got = drive_tcp(addr, &script(0));
    assert!(
        got[2].contains("\"status\":\"well-region-typed\""),
        "{}",
        got[2]
    );

    // The stalled client is told why it is being disconnected...
    half_open
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(half_open);
    let mut goodbye = String::new();
    reader.read_line(&mut goodbye).expect("idle goodbye");
    assert!(goodbye.contains("\"code\":\"idle\""), "{goodbye}");
    // ...and then actually disconnected.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0, "{rest}");

    let bye = drive_tcp(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    assert!(bye[0].contains("\"status\":\"bye\""), "{bye:?}");
    let summary = daemon_thread.join().expect("daemon thread");
    assert_eq!(summary.clients_served, 3);
}

#[cfg(unix)]
#[test]
fn unix_socket_daemon_serves_and_shuts_down() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!("cjrcd-test-{}.sock", std::process::id()));
    let daemon = Daemon::bind_unix(&path, DaemonConfig::default()).expect("bind unix");
    assert!(daemon.local_addr().is_none());
    assert!(daemon.describe_addr().starts_with("unix://"));
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let stream = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let requests = [
        format!(
            "{{\"cmd\":\"open\",\"file\":\"cell.cj\",\"text\":{}}}",
            cj_diag::json_string(CELL)
        ),
        "{\"cmd\":\"check\"}".to_string(),
        "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
    ];
    let mut responses = Vec::new();
    for line in &requests {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        responses.push(response);
    }
    assert!(responses[1].contains("\"status\":\"well-region-typed\""));
    assert!(responses[2].contains("\"status\":\"bye\""));
    let summary = daemon_thread.join().expect("daemon thread");
    assert_eq!(summary.clients_served, 1);
    let _ = std::fs::remove_file(&path);
}

/// The externally observable stop handle also ends the daemon (what a
/// supervising process would use instead of an in-band request).
#[test]
fn stop_handle_ends_the_accept_loop() {
    let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let stop = daemon.stop_handle();
    let handle = std::thread::spawn(move || daemon.run().expect("run"));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let summary = handle.join().expect("join");
    assert_eq!(summary.clients_served, 0);
}

/// A connected-but-silent client must not block a daemon-scope shutdown:
/// workers poll the stop flag between reads, so `run()` drains and
/// returns even while an idle connection is still open.
#[test]
fn idle_client_does_not_block_daemon_shutdown() {
    let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // The idle client: connects, sends nothing, and stays open.
    let _idle = TcpStream::connect(addr).expect("idle connect");
    let bye = drive_tcp(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    assert!(bye[0].contains("\"status\":\"bye\""), "{bye:?}");
    let summary = daemon_thread
        .join()
        .expect("daemon must not hang on the idle client");
    assert_eq!(summary.clients_served, 2);
}

/// Every execution tier is selectable per request over the wire, the
/// three engines agree on the answer, and an unknown engine comes back
/// as a *coded* structured error — not a silent fallback to the default
/// engine and not a bare prose string.
#[test]
fn run_requests_select_engines_and_reject_unknown_ones() {
    let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let responses = drive_tcp(
        addr,
        &[
            "{\"cmd\":\"open\",\"file\":\"m.cj\",\"text\":\"class M { static int main(int n) { \
             int acc = 0; int i = 0; while (i < n) { acc = acc + i; i = i + 1; } acc } }\"}"
                .to_string(),
            "{\"cmd\":\"run\",\"args\":[100],\"engine\":\"vm\"}".to_string(),
            "{\"cmd\":\"run\",\"args\":[100],\"engine\":\"rvm\"}".to_string(),
            "{\"cmd\":\"run\",\"args\":[100],\"engine\":\"interp\"}".to_string(),
            "{\"cmd\":\"run\",\"args\":[100],\"engine\":\"jit\"}".to_string(),
            "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
        ],
    );
    for (resp, engine) in responses[1..=3].iter().zip(["vm", "rvm", "interp"]) {
        assert!(resp.contains("\"ok\":true"), "[{engine}] {resp}");
        assert!(resp.contains("\"result\":\"4950\""), "[{engine}] {resp}");
        assert!(
            resp.contains(&format!("\"engine\":\"{engine}\"")),
            "[{engine}] {resp}"
        );
    }
    let bad = &responses[4];
    assert!(bad.contains("\"ok\":false"), "{bad}");
    assert!(bad.contains("\"code\":\"unknown-engine\""), "{bad}");
    assert!(bad.contains("unknown engine `jit`"), "{bad}");
    daemon_thread.join().expect("daemon drains");
}

/// A typo'd shutdown scope must be an error, not a connection-scope
/// shutdown the client mistakes for a daemon stop.
#[test]
fn unknown_shutdown_scope_is_rejected() {
    let mut server = Server::new(SessionOptions::default());
    let resp = server.handle_line("{\"cmd\":\"shutdown\",\"scope\":\"Daemon\"}");
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("unknown shutdown scope"), "{resp}");
    assert!(
        !server.is_done(),
        "a rejected shutdown must not stop the session"
    );
    let resp = server.handle_line("{\"cmd\":\"shutdown\",\"scope\":\"connection\"}");
    assert!(resp.contains("\"status\":\"bye\""), "{resp}");
    assert!(server.is_done());
}
