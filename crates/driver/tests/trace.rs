//! End-to-end observability tests: a daemon request traced with
//! `cj-trace` must produce distinct queue-wait / solve / lower / exec
//! spans, the emitted Chrome trace must be well-formed trace-event JSON
//! (the schema Perfetto loads), and the `--metrics-addr` HTTP endpoint
//! plus the in-protocol `metrics` request must expose the unified
//! registry.

use cj_driver::{parse_json, Daemon, DaemonConfig, Frontend, Json, Server, SessionOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const PROGRAM: &str = "class Cell { Object item; Object get() { this.item } } \
                       class M { static int main(int n) { \
                         Cell c = new Cell(null); c.get(); n + 1 } }";

fn open_request(file: &str, text: &str) -> String {
    format!(
        "{{\"cmd\":\"open\",\"file\":\"{file}\",\"text\":{}}}",
        cj_diag::json_string(text)
    )
}

/// Sends `lines` to a live daemon, one response per request.
fn drive(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            let mut response = String::new();
            reader.read_line(&mut response).expect("recv");
            assert!(!response.is_empty(), "daemon closed early on `{line}`");
            response.trim_end().to_string()
        })
        .collect()
}

/// Validates the Chrome trace-event schema Perfetto and
/// `chrome://tracing` load: a `traceEvents` array of objects, each with
/// string `name`/`cat`, `"ph":"X"`, and numeric `pid`/`tid`/`ts`/`dur`.
/// Returns the event names.
fn assert_perfetto_well_formed(trace_json: &str) -> Vec<String> {
    let root = parse_json(trace_json).expect("trace file parses as JSON");
    let Some(Json::Arr(items)) = root.get("traceEvents") else {
        panic!("trace lacks a `traceEvents` array");
    };
    assert!(!items.is_empty(), "trace recorded no events");
    let mut names = Vec::with_capacity(items.len());
    for item in items {
        let name = item.get_str("name").expect("event has a string `name`");
        assert!(item.get_str("cat").is_some(), "event `{name}` lacks `cat`");
        assert_eq!(item.get_str("ph"), Some("X"), "`{name}` is not complete");
        for key in ["pid", "tid", "ts", "dur"] {
            match item.get(key) {
                Some(Json::Num(n)) if *n >= 0.0 => {}
                other => panic!("event `{name}` field `{key}` is not numeric: {other:?}"),
            }
        }
        assert!(
            matches!(item.get("args"), Some(Json::Obj(_))),
            "event `{name}` lacks an `args` object"
        );
        names.push(name.to_string());
    }
    names
}

/// The tentpole acceptance e2e: with tracing installed, one daemon
/// `check` + `run` request sequence yields a trace with *distinct*
/// queue-wait vs solve vs lower vs exec spans, and the exported Chrome
/// trace is schema-valid. Single test for all global-recorder behaviour
/// so parallel tests in this binary never race install/uninstall.
#[test]
fn daemon_request_trace_has_distinct_phase_spans() {
    cj_trace::install();
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            frontend: Frontend::Event,
            workers: 2,
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let responses = drive(
        addr,
        &[
            open_request("cell.cj", PROGRAM),
            "{\"cmd\":\"check\"}".to_string(),
            "{\"cmd\":\"run\",\"args\":[41],\"engine\":\"vm\"}".to_string(),
            "{\"cmd\":\"run\",\"args\":[41],\"engine\":\"rvm\"}".to_string(),
            "{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string(),
        ],
    );
    daemon_thread.join().expect("daemon thread");
    let events = cj_trace::uninstall();

    assert!(responses[1].contains("\"status\":\"well-region-typed\""));
    assert!(responses[2].contains("\"result\":\"42\""));
    assert!(responses[3].contains("\"result\":\"42\""));
    assert!(responses[3].contains("\"engine\":\"rvm\""));

    // The distinct phases the acceptance criterion names, plus the
    // request/frontend wrappers around them.
    for (cat, name) in [
        ("daemon", "queue-wait"),
        ("daemon", "worker-handle"),
        ("pipeline", "parse"),
        ("pipeline", "typecheck"),
        ("pipeline", "infer"),
        ("pipeline", "solve-scc"),
        ("pipeline", "lower"),
        ("pipeline", "vm-exec"),
        ("pipeline", "rvm-lower"),
        ("pipeline", "rvm-exec"),
        ("request", "check"),
        ("request", "run"),
    ] {
        assert!(
            events.iter().any(|e| e.cat == cat && e.name == name),
            "trace lacks a `{cat}/{name}` span; got: {:?}",
            events
                .iter()
                .map(|e| (e.cat, e.name))
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
    // The register tier's spans carry its counters: the lowering span
    // reports how many methods were translated, the execution span how
    // many dispatches retired and how many superinstructions hit.
    let rvm_lower = events.iter().find(|e| e.name == "rvm-lower").unwrap();
    assert!(
        rvm_lower
            .counters
            .iter()
            .any(|&(k, v)| k == "methods_lowered" && v >= 1),
        "rvm-lower counters: {:?}",
        rvm_lower.counters
    );
    let rvm_exec = events.iter().find(|e| e.name == "rvm-exec").unwrap();
    assert!(
        rvm_exec
            .counters
            .iter()
            .any(|&(k, v)| k == "dispatches" && v >= 1),
        "rvm-exec counters: {:?}",
        rvm_exec.counters
    );
    assert!(
        rvm_exec
            .counters
            .iter()
            .any(|&(k, _)| k == "superinstructions_hit"),
        "rvm-exec counters: {:?}",
        rvm_exec.counters
    );

    // Phase spans are distinct events, not aliases: solve, lower and
    // exec each carry their own interval, and the worker-side spans
    // happened on a worker thread, not the reactor/client thread.
    let solve = events.iter().find(|e| e.name == "solve-scc").unwrap();
    let lower = events.iter().find(|e| e.name == "lower").unwrap();
    let exec = events.iter().find(|e| e.name == "vm-exec").unwrap();
    // The client waits for `check` before sending `run`, so the solve
    // (inside check) ends before lowering starts, and lowering ends
    // before the VM executes — all on the shared recording epoch.
    assert!(
        solve.ts_us + solve.dur_us <= lower.ts_us,
        "solve overlaps lower"
    );
    assert!(
        lower.ts_us + lower.dur_us <= exec.ts_us,
        "lower overlaps exec"
    );
    // Pipeline spans nest under the request span that triggered them.
    let check = events
        .iter()
        .find(|e| e.cat == "request" && e.name == "check")
        .unwrap();
    assert!(solve.tid == check.tid && solve.depth > check.depth);

    // The exported file is exactly what `--trace-out` writes: validate
    // the Perfetto schema and that the named phases survive export.
    let trace_json = cj_trace::chrome_trace_json(&events);
    let names = assert_perfetto_well_formed(&trace_json);
    for name in ["queue-wait", "solve-scc", "lower", "vm-exec"] {
        assert!(names.iter().any(|n| n == name), "export dropped `{name}`");
    }

    // And the summary renderer folds them into per-phase rows.
    let rows = cj_trace::summarize(&events);
    let row = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
    assert!(row("solve-scc").count >= 1);
    assert!(row("check").total_us >= row("solve-scc").total_us);
    let table = cj_trace::render_summary(&rows);
    assert!(table.contains("solve-scc") && table.contains("vm-exec"));
}

/// One HTTP exchange against the metrics endpoint.
fn http_get(addr: std::net::SocketAddr, request_line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    write!(stream, "{request_line}\r\n\r\n").expect("send request");
    stream.flush().expect("flush");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response to EOF");
    response
}

#[test]
fn metrics_endpoint_serves_text_and_json_expositions() {
    let daemon = Daemon::bind_tcp(
        "127.0.0.1:0",
        DaemonConfig {
            frontend: Frontend::Event,
            workers: 2,
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..DaemonConfig::default()
        },
    )
    .expect("bind");
    let addr = daemon.local_addr().expect("tcp addr");
    let metrics_addr = daemon.metrics_local_addr().expect("metrics addr");
    let daemon_thread = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // Generate some traffic so the histograms are non-empty.
    let responses = drive(
        addr,
        &[
            open_request("cell.cj", PROGRAM),
            "{\"cmd\":\"check\"}".to_string(),
            "{\"cmd\":\"shutdown\"}".to_string(),
        ],
    );
    assert!(responses[1].contains("\"status\":\"well-region-typed\""));

    // Text exposition: version banner, counters, per-kind quantiles.
    let text = http_get(metrics_addr, "GET /metrics HTTP/1.0");
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
    assert!(text.contains("content-type: text/plain") || text.contains("Content-Type: text/plain"));
    let version = env!("CARGO_PKG_VERSION");
    assert!(text.contains(&format!("cjrc_info{{version=\"{version}\"}} 1")));
    assert!(text.contains("requests_total 3"), "{text}");
    assert!(text.contains("request_us_check_count 1"), "{text}");
    assert!(text.contains("request_us_check{quantile=\"0.99\"}"));
    assert!(text.contains("queue_wait_us_count 3"), "{text}");
    assert!(text.contains("daemon_clients_served 1"), "{text}");
    assert!(text.contains("memo_entries"), "{text}");

    // JSON exposition parses and carries the same registry.
    let json_response = http_get(metrics_addr, "GET /metrics.json HTTP/1.0");
    assert!(
        json_response.starts_with("HTTP/1.0 200 OK"),
        "{json_response}"
    );
    let body_at = json_response.find("\r\n\r\n").expect("header/body split");
    let body = parse_json(json_response[body_at..].trim()).expect("metrics JSON parses");
    assert_eq!(body.get_str("version"), Some(version));
    assert!(matches!(body.get("uptime_ms"), Some(Json::Num(_))));
    let Some(metrics) = body.get("metrics") else {
        panic!("metrics JSON lacks `metrics`");
    };
    let Some(Json::Obj(counters)) = metrics.get("counters") else {
        panic!("metrics JSON lacks `counters`");
    };
    assert!(counters.iter().any(|(k, _)| k == "requests_total"));
    let Some(histograms) = metrics.get("histograms") else {
        panic!("metrics JSON lacks `histograms`");
    };
    let Some(check) = histograms.get("request_us_check") else {
        panic!("metrics JSON lacks the check histogram");
    };
    assert!(matches!(check.get("p99_us"), Some(Json::Num(n)) if *n >= 0.0));

    // Unknown paths 404, non-GET methods 405 — and each scrape bumped
    // the scrape counter itself.
    assert!(http_get(metrics_addr, "GET /nope HTTP/1.0").starts_with("HTTP/1.0 404"));
    assert!(http_get(metrics_addr, "POST /metrics HTTP/1.0").starts_with("HTTP/1.0 405"));
    let again = http_get(metrics_addr, "GET /metrics HTTP/1.0");
    assert!(again.contains("metrics_scrapes 3"), "{again}");

    // A daemon-scope shutdown also stops the metrics reactor thread
    // (run() joins it); afterwards the endpoint must refuse connections.
    drive(
        addr,
        &["{\"cmd\":\"shutdown\",\"scope\":\"daemon\"}".to_string()],
    );
    daemon_thread.join().expect("daemon thread");
    assert!(
        TcpStream::connect(metrics_addr).is_err() || {
            // Accept-then-reset is also a valid observation of a dead server
            // on some kernels: a read must yield no response either way.
            let mut s = TcpStream::connect(metrics_addr).unwrap();
            let _ = write!(s, "GET /metrics HTTP/1.0\r\n\r\n");
            let mut out = String::new();
            s.read_to_string(&mut out).map(|n| n == 0).unwrap_or(true)
        }
    );
}

#[test]
fn metrics_request_and_stats_share_the_registry_view() {
    let mut server = Server::new(SessionOptions::default());
    let responses = [
        server.handle_line(&open_request("cell.cj", PROGRAM)),
        server.handle_line("{\"cmd\":\"check\"}"),
        server.handle_line("{\"cmd\":\"stats\"}"),
        server.handle_line("{\"cmd\":\"metrics\"}"),
    ];
    let version = env!("CARGO_PKG_VERSION");

    // `stats` gained uptime and the crate version.
    assert!(responses[2].contains("\"uptime_ms\":"), "{}", responses[2]);
    assert!(
        responses[2].contains(&format!("\"version\":\"{version}\"")),
        "{}",
        responses[2]
    );

    // `metrics` returns the registry: request mix, per-kind latency
    // histograms, pass totals, memo gauges.
    let metrics = &responses[3];
    assert!(metrics.contains("\"ok\":true"), "{metrics}");
    assert!(metrics.contains("\"uptime_ms\":"), "{metrics}");
    assert!(metrics.contains(&format!("\"version\":\"{version}\"")));
    assert!(metrics.contains("\"requests_total\":3"), "{metrics}");
    assert!(metrics.contains("\"passes_infer\":1"), "{metrics}");
    assert!(metrics.contains("\"memo_entries\":"), "{metrics}");
    assert!(
        metrics.contains("\"request_us_check\":{\"count\":1,"),
        "{metrics}"
    );
    assert!(metrics.contains("\"request_us_open\":{"), "{metrics}");
    // The whole response is parseable JSON with nested histograms.
    let parsed = parse_json(metrics).expect("metrics response parses");
    let p99 = parsed
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("request_us_check"))
        .and_then(|c| c.get("p99_us"))
        .cloned();
    assert!(matches!(p99, Some(Json::Num(n)) if n >= 0.0), "{metrics}");
}
