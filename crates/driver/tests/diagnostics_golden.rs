//! Golden tests for rendered diagnostics: the exact caret snippet and JSON
//! form of one parse error, one typecheck error and one inference error
//! are frozen here. Any change to messages, codes, spans or rendering is a
//! deliberate, reviewed change to this file.

use cj_driver::{Session, SessionOptions};
use cj_infer::{DowncastPolicy, InferOptions, SubtypeMode};

fn diagnose(name: &str, src: &str, opts: SessionOptions) -> (String, String) {
    let mut session = Session::new(src, opts).with_name(name);
    let diags = session.check().expect_err("source must be ill-formed");
    let emitter = session.emitter();
    (emitter.render_all(&diags), emitter.render_json_all(&diags))
}

#[test]
fn parse_error_caret_and_json() {
    let (caret, json) = diagnose(
        "parse.cj",
        "class A {\n  int x\n}",
        SessionOptions::default(),
    );
    assert_eq!(
        caret,
        "error[E0101]: expected `;`, found `}`\n\
        \x20 --> parse.cj:3:1\n\
        \x20  |\n\
        \x203 | }\n\
        \x20  | ^\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0101\",\
         \"message\":\"expected `;`, found `}`\",\"file\":\"parse.cj\",\
         \"span\":{\"lo\":18,\"hi\":19,\"line\":3,\"col\":1},\
         \"labels\":[],\"notes\":[]}\n]"
    );
}

#[test]
fn typecheck_error_caret_and_json() {
    let (caret, json) = diagnose("types.cj", "class A { Pear p; }", SessionOptions::default());
    assert_eq!(
        caret,
        "error[E0200]: unknown class `Pear`\n\
        \x20 --> types.cj:1:11\n\
        \x20  |\n\
        \x201 | class A { Pear p; }\n\
        \x20  |           ^^^^^^^\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0200\",\
         \"message\":\"unknown class `Pear`\",\"file\":\"types.cj\",\
         \"span\":{\"lo\":10,\"hi\":17,\"line\":1,\"col\":11},\
         \"labels\":[],\"notes\":[]}\n]"
    );
}

#[test]
fn infer_error_caret_and_json() {
    let src = "class A { Object x; }\n\
               class B extends A { Object y; }\n\
               class M { static B f(A a) { (B) a } }";
    let (caret, json) = diagnose(
        "infer.cj",
        src,
        SessionOptions::with_infer(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Reject,
            ..Default::default()
        }),
    );
    assert_eq!(
        caret,
        "error[E0300]: downcast in `f` rejected: enable the equate-first or \
         padding downcast policy\n\
        \x20 --> infer.cj:3:29\n\
        \x20  |\n\
        \x203 | class M { static B f(A a) { (B) a } }\n\
        \x20  |                             ^^^^^\n\
        \x20 --> infer.cj:3:29\n\
        \x20  |\n\
        \x203 | class M { static B f(A a) { (B) a } }\n\
        \x20  |                             ----- downcast here, in `f`\n\
        \x20  = note: the `reject` downcast policy refuses all downcasts; \
         pass `--downcast equate-first` or `--downcast padding`\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0300\",\
         \"message\":\"downcast in `f` rejected: enable the equate-first or \
         padding downcast policy\",\"file\":\"infer.cj\",\
         \"span\":{\"lo\":82,\"hi\":87,\"line\":3,\"col\":29},\
         \"labels\":[{\"span\":{\"lo\":82,\"hi\":87,\"line\":3,\"col\":29},\
         \"message\":\"downcast here, in `f`\"}],\
         \"notes\":[\"the `reject` downcast policy refuses all downcasts; \
         pass `--downcast equate-first` or `--downcast padding`\"]}\n]"
    );
}

#[test]
fn every_stage_failure_carries_a_code() {
    // Lex error.
    let mut s = Session::new("class A { in€t x; }", SessionOptions::default());
    if let Err(diags) = s.check() {
        assert!(diags.iter().all(|d| d.code.is_some()), "uncoded: {diags}");
    }
    // Multiple typecheck errors all coded.
    let mut s = Session::new(
        "class A { Unknown u; Missing m; }",
        SessionOptions::default(),
    );
    let diags = s.check().unwrap_err();
    assert!(diags.len() >= 2);
    assert!(diags.iter().all(|d| d.code == Some("E0200")));
}
