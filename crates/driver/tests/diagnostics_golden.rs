//! Golden tests for rendered diagnostics: the exact caret snippet and JSON
//! form of one parse error, one typecheck error and one inference error
//! are frozen here. Any change to messages, codes, spans or rendering is a
//! deliberate, reviewed change to this file.

use cj_driver::{Session, SessionOptions, Workspace};
use cj_infer::{DowncastPolicy, InferOptions, SubtypeMode};

fn diagnose(name: &str, src: &str, opts: SessionOptions) -> (String, String) {
    let mut session = Session::new(src, opts).with_name(name);
    let diags = session.check().expect_err("source must be ill-formed");
    let emitter = session.emitter();
    (emitter.render_all(&diags), emitter.render_json_all(&diags))
}

#[test]
fn parse_error_caret_and_json() {
    let (caret, json) = diagnose(
        "parse.cj",
        "class A {\n  int x\n}",
        SessionOptions::default(),
    );
    assert_eq!(
        caret,
        "error[E0101]: expected `;`, found `}`\n\
        \x20 --> parse.cj:3:1\n\
        \x20  |\n\
        \x203 | }\n\
        \x20  | ^\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0101\",\
         \"message\":\"expected `;`, found `}`\",\"file\":\"parse.cj\",\
         \"span\":{\"lo\":18,\"hi\":19,\"line\":3,\"col\":1},\
         \"labels\":[],\"notes\":[]}\n]"
    );
}

#[test]
fn typecheck_error_caret_and_json() {
    let (caret, json) = diagnose("types.cj", "class A { Pear p; }", SessionOptions::default());
    assert_eq!(
        caret,
        "error[E0200]: unknown class `Pear`\n\
        \x20 --> types.cj:1:11\n\
        \x20  |\n\
        \x201 | class A { Pear p; }\n\
        \x20  |           ^^^^^^^\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0200\",\
         \"message\":\"unknown class `Pear`\",\"file\":\"types.cj\",\
         \"span\":{\"lo\":10,\"hi\":17,\"line\":1,\"col\":11},\
         \"labels\":[],\"notes\":[]}\n]"
    );
}

#[test]
fn infer_error_caret_and_json() {
    let src = "class A { Object x; }\n\
               class B extends A { Object y; }\n\
               class M { static B f(A a) { (B) a } }";
    let (caret, json) = diagnose(
        "infer.cj",
        src,
        SessionOptions::with_infer(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Reject,
            ..Default::default()
        }),
    );
    assert_eq!(
        caret,
        "error[E0300]: downcast in `f` rejected: enable the equate-first or \
         padding downcast policy\n\
        \x20 --> infer.cj:3:29\n\
        \x20  |\n\
        \x203 | class M { static B f(A a) { (B) a } }\n\
        \x20  |                             ^^^^^\n\
        \x20 --> infer.cj:3:29\n\
        \x20  |\n\
        \x203 | class M { static B f(A a) { (B) a } }\n\
        \x20  |                             ----- downcast here, in `f`\n\
        \x20  = note: the `reject` downcast policy refuses all downcasts; \
         pass `--downcast equate-first` or `--downcast padding`\n"
    );
    assert_eq!(
        json,
        "[\n{\"severity\":\"error\",\"code\":\"E0300\",\
         \"message\":\"downcast in `f` rejected: enable the equate-first or \
         padding downcast policy\",\"file\":\"infer.cj\",\
         \"span\":{\"lo\":82,\"hi\":87,\"line\":3,\"col\":29},\
         \"labels\":[{\"span\":{\"lo\":82,\"hi\":87,\"line\":3,\"col\":29},\
         \"message\":\"downcast here, in `f`\"}],\
         \"notes\":[\"the `reject` downcast policy refuses all downcasts; \
         pass `--downcast equate-first` or `--downcast padding`\"]}\n]"
    );
}

#[test]
fn every_stage_failure_carries_a_code() {
    // Lex error.
    let mut s = Session::new("class A { in€t x; }", SessionOptions::default());
    if let Err(diags) = s.check() {
        assert!(diags.iter().all(|d| d.code.is_some()), "uncoded: {diags}");
    }
    // Multiple typecheck errors all coded.
    let mut s = Session::new(
        "class A { Unknown u; Missing m; }",
        SessionOptions::default(),
    );
    let diags = s.check().unwrap_err();
    assert!(diags.len() >= 2);
    assert!(diags.iter().all(|d| d.code == Some("E0200")));
}

// ---- policy diagnostics (E0711/E0712/E0713) --------------------------------

/// Checks `src` under `rules` through the workspace and returns the frozen
/// caret and JSON renderings of the policy diagnostics.
fn policy_diagnose(src: &str, rules: &str) -> (String, String) {
    let mut ws = Workspace::new(SessionOptions::default());
    ws.set_source("policy.cj", src).unwrap();
    ws.set_policy("rules.cjpolicy", rules).unwrap();
    ws.check().expect("program must region-check");
    let outcome = ws.check_policy().expect("policy check must run");
    (
        ws.render(&outcome.diagnostics),
        ws.render_json(&outcome.diagnostics),
    )
}

#[test]
fn policy_no_escape_caret_and_json() {
    let (caret, json) = policy_diagnose(
        "class Cell { Object v; }\nclass M {\n  static Cell leak() { new Cell(null) }\n  static void main() { }\n}\n",
        "no-escape Cell\n",
    );
    assert_eq!(
        caret,
        "error[E0711]: values of class `Cell` must not escape their creation \
         region, but this allocation's region (parameter r1 of `leak`) may \
         outlive the method\n\
        \x20 --> policy.cj:3:24\n\
        \x20  |\n\
        \x203 |   static Cell leak() { new Cell(null) }\n\
        \x20  |                        ^^^^^^^^^^^^^^\n\
        \x20  = note: the region flows out through `leak`'s signature and \
         some call chain binds it to the heap or to the open world\n\
        \x20  = note: rule `no-escape Cell` declared here (rules.cjpolicy:1:1)\n"
    );
    assert_eq!(
        json,
        "[{\"severity\":\"error\",\"code\":\"E0711\",\
         \"message\":\"values of class `Cell` must not escape their creation \
         region, but this allocation's region (parameter r1 of `leak`) may \
         outlive the method\",\
         \"span\":{\"file\":\"policy.cj\",\"lo\":58,\"hi\":72,\"line\":3,\"col\":24},\
         \"labels\":[{\"span\":{\"file\":\"rules.cjpolicy\",\"lo\":0,\"hi\":14,\
         \"line\":1,\"col\":1},\
         \"message\":\"rule `no-escape Cell` declared here\"}],\
         \"notes\":[\"the region flows out through `leak`'s signature and \
         some call chain binds it to the heap or to the open world\"]}]"
    );
}

#[test]
fn policy_confine_caret_and_json() {
    // The rule sits on line 2 of the policy file (after a comment), so the
    // "declared here" label must carry the policy file's own span.
    let (caret, json) = policy_diagnose(
        "class Cell { Object v; }\nclass Box { Cell c; }\nclass M {\n  static void main() { Cell x = new Cell(null); x.v = null; }\n}\n",
        "# Cells live only inside Boxes\nconfine Cell to Box\n",
    );
    assert_eq!(
        caret,
        "error[E0712]: values of class `Cell` may only be allocated into \
         regions owned by `Box`, but this allocation's region is not one of \
         them\n\
        \x20 --> policy.cj:4:33\n\
        \x20  |\n\
        \x204 |   static void main() { Cell x = new Cell(null); x.v = null; }\n\
        \x20  |                                 ^^^^^^^^^^^^^^\n\
        \x20  = note: no `Box`-owned region is in scope in `main`\n\
        \x20  = note: rule `confine Cell to Box` declared here (rules.cjpolicy:2:1)\n"
    );
    assert_eq!(
        json,
        "[{\"severity\":\"error\",\"code\":\"E0712\",\
         \"message\":\"values of class `Cell` may only be allocated into \
         regions owned by `Box`, but this allocation's region is not one of \
         them\",\
         \"span\":{\"file\":\"policy.cj\",\"lo\":89,\"hi\":103,\"line\":4,\"col\":33},\
         \"labels\":[{\"span\":{\"file\":\"rules.cjpolicy\",\"lo\":31,\"hi\":50,\
         \"line\":2,\"col\":1},\
         \"message\":\"rule `confine Cell to Box` declared here\"}],\
         \"notes\":[\"no `Box`-owned region is in scope in `main`\"]}]"
    );
}

#[test]
fn policy_separate_caret_and_json() {
    let (caret, json) = policy_diagnose(
        "class Secret { Object v; }\nclass M {\n  static void log(Object o) { }\n  static void main() {\n    Secret s = new Secret(null);\n    log(s);\n  }\n}\n",
        "separate Secret from log\n",
    );
    assert_eq!(
        caret,
        "error[E0713]: values born in `Secret`-hosting regions must not flow \
         into sink `log`, but argument 1 of this call lives in a region \
         reachable from one\n\
        \x20 --> policy.cj:6:5\n\
        \x20  |\n\
        \x206 |     log(s);\n\
        \x20  |     ^^^^^^\n\
        \x20  = note: the closed constraints entail that a `Secret`-hosting \
         region outlives the argument's region, so the argument can reach \
         `Secret` data\n\
        \x20  = note: rule `separate Secret from log` declared here (rules.cjpolicy:1:1)\n"
    );
    assert_eq!(
        json,
        "[{\"severity\":\"error\",\"code\":\"E0713\",\
         \"message\":\"values born in `Secret`-hosting regions must not flow \
         into sink `log`, but argument 1 of this call lives in a region \
         reachable from one\",\
         \"span\":{\"file\":\"policy.cj\",\"lo\":129,\"hi\":135,\"line\":6,\"col\":5},\
         \"labels\":[{\"span\":{\"file\":\"rules.cjpolicy\",\"lo\":0,\"hi\":24,\
         \"line\":1,\"col\":1},\
         \"message\":\"rule `separate Secret from log` declared here\"}],\
         \"notes\":[\"the closed constraints entail that a `Secret`-hosting \
         region outlives the argument's region, so the argument can reach \
         `Secret` data\"]}]"
    );
}
