//! The staged [`Session`] driver.

use cj_diag::{codes, Diagnostic, Diagnostics, Emitter, IntoDiagnostics, SourceMap, Span};
use cj_frontend::ast;
use cj_frontend::KProgram;
use cj_infer::{InferOptions, InferStats, RProgram};
use cj_runtime::{Outcome, RunConfig, Value};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Result type of every driver stage: success, or a batch of structured
/// diagnostics. No `Box<dyn Error>`, no strings.
pub type CompileResult<T> = Result<T, Diagnostics>;

/// Configuration for a [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Region-inference options used by the option-less staged methods
    /// ([`Session::infer`], [`Session::check`], [`Session::run`]).
    pub infer: InferOptions,
    /// Execution configuration for [`Session::run`].
    pub run: RunConfig,
}

impl SessionOptions {
    /// Options with the given inference configuration and default runtime
    /// configuration.
    pub fn with_infer(infer: InferOptions) -> SessionOptions {
        SessionOptions {
            infer,
            ..SessionOptions::default()
        }
    }
}

/// The product of region inference: the annotated program plus the
/// statistics the Fig 8/9 harnesses report.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The region-annotated program.
    pub program: RProgram,
    /// Inference statistics.
    pub stats: InferStats,
}

/// How many times each pipeline stage actually executed (as opposed to
/// being served from the artifact cache). Lets callers — and the ablation
/// bench — *demonstrate* that one typechecked kernel is shared across
/// subtype modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Parser executions.
    pub parse: u32,
    /// Normal-typecheck executions.
    pub typecheck: u32,
    /// Region-inference executions (one per distinct [`InferOptions`]).
    pub infer: u32,
    /// Region-checker executions.
    pub check: u32,
    /// Interpreter executions.
    pub run: u32,
}

/// A compiler driver holding one source text and every artifact derived
/// from it.
///
/// The pipeline `parse → typecheck → infer → check → run` is exposed as
/// staged methods; each stage memoizes its artifact, so repeated calls —
/// and later stages — reuse earlier work. Inference artifacts are cached
/// *per [`InferOptions`]*, sharing the single parsed and typechecked
/// kernel: ablating the three `SubtypeMode`s runs the front end once, not
/// three times.
///
/// # Examples
///
/// ```
/// use cj_driver::{Session, SessionOptions};
/// use cj_infer::{InferOptions, SubtypeMode};
///
/// let mut session = Session::new(
///     "class Cell { Object item; Object get() { this.item } }",
///     SessionOptions::default(),
/// );
/// for mode in SubtypeMode::ALL {
///     session.check_with(InferOptions::with_mode(mode)).unwrap();
/// }
/// // One front-end pass serves all three modes.
/// assert_eq!(session.pass_counts().typecheck, 1);
/// assert_eq!(session.pass_counts().infer, 3);
/// ```
#[derive(Debug)]
pub struct Session {
    name: String,
    source: String,
    opts: SessionOptions,
    map: SourceMap,
    ast: Option<Arc<ast::Program>>,
    kernel: Option<Arc<KProgram>>,
    inferred: HashMap<InferOptions, Arc<Compilation>>,
    checked: HashSet<InferOptions>,
    counts: PassCounts,
}

impl Session {
    /// A session over `source` with the given options. The source is
    /// displayed as `<input>` in rendered diagnostics; see
    /// [`with_name`](Session::with_name).
    pub fn new(source: impl Into<String>, opts: SessionOptions) -> Session {
        let source = source.into();
        let map = SourceMap::new(&source);
        Session {
            name: "<input>".to_string(),
            source,
            opts,
            map,
            ast: None,
            kernel: None,
            inferred: HashMap::new(),
            checked: HashSet::new(),
            counts: PassCounts::default(),
        }
    }

    /// Reads `path` and builds a session named after it.
    ///
    /// # Errors
    ///
    /// An [`codes::IO`] diagnostic when the file cannot be read.
    pub fn from_file(path: impl AsRef<Path>, opts: SessionOptions) -> CompileResult<Session> {
        let path = path.as_ref();
        let source = std::fs::read_to_string(path).map_err(|e| {
            Diagnostics::from_one(
                Diagnostic::error(format!("cannot read {}: {e}", path.display()), Span::DUMMY)
                    .with_code(codes::IO),
            )
        })?;
        Ok(Session::new(source, opts).with_name(path.display().to_string()))
    }

    /// Sets the display name used in rendered diagnostics.
    pub fn with_name(mut self, name: impl Into<String>) -> Session {
        self.name = name.into();
        self
    }

    /// The source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The display name of the source.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        &self.opts
    }

    /// The line index of the source.
    pub fn source_map(&self) -> &SourceMap {
        &self.map
    }

    /// How many times each stage has actually executed so far.
    pub fn pass_counts(&self) -> PassCounts {
        self.counts
    }

    /// An emitter that renders diagnostics against this session's source.
    pub fn emitter(&self) -> Emitter<'_> {
        Emitter::new(&self.name, &self.source)
    }

    // ---- staged pipeline -------------------------------------------------

    /// Stage 1: parses the source (cached).
    ///
    /// # Errors
    ///
    /// Lexical ([`codes::LEX`]) and syntactic ([`codes::PARSE`])
    /// diagnostics.
    pub fn parse(&mut self) -> CompileResult<Arc<ast::Program>> {
        if let Some(ast) = &self.ast {
            return Ok(Arc::clone(ast));
        }
        self.counts.parse += 1;
        let program = cj_frontend::parser::parse_program(&self.source)?;
        let program = Arc::new(program);
        self.ast = Some(Arc::clone(&program));
        Ok(program)
    }

    /// Stage 2: normal-typechecks and lowers to kernel form (cached).
    ///
    /// # Errors
    ///
    /// Parse diagnostics, or type errors ([`codes::TYPECHECK`]).
    pub fn typecheck(&mut self) -> CompileResult<Arc<KProgram>> {
        if let Some(kernel) = &self.kernel {
            return Ok(Arc::clone(kernel));
        }
        let ast = self.parse()?;
        self.counts.typecheck += 1;
        let kernel = cj_frontend::typecheck::check(&ast)?;
        let kernel = Arc::new(kernel);
        self.kernel = Some(Arc::clone(&kernel));
        Ok(kernel)
    }

    /// Stage 3: region inference under the session's options (cached).
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures ([`codes::INFER`]).
    pub fn infer(&mut self) -> CompileResult<Arc<Compilation>> {
        self.infer_with(self.opts.infer)
    }

    /// Stage 3, parameterized: region inference under `opts`.
    ///
    /// Artifacts are cached per [`InferOptions`]; every variant shares the
    /// one parsed and typechecked kernel.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures ([`codes::INFER`]).
    pub fn infer_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        if let Some(c) = self.inferred.get(&opts) {
            return Ok(Arc::clone(c));
        }
        let kernel = self.typecheck()?;
        self.counts.infer += 1;
        let (program, stats) =
            cj_infer::infer(&kernel, opts).map_err(IntoDiagnostics::into_diagnostics)?;
        let compilation = Arc::new(Compilation { program, stats });
        self.inferred.insert(opts, Arc::clone(&compilation));
        Ok(compilation)
    }

    /// Stage 4: region-checks the inferred program (cached), returning it.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations
    /// ([`codes::REGION_CHECK`] — a Theorem 1 breach, i.e. an inference
    /// bug).
    pub fn check(&mut self) -> CompileResult<Arc<Compilation>> {
        self.check_with(self.opts.infer)
    }

    /// Stage 4, parameterized: region-checks under `opts`.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations.
    pub fn check_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        let compilation = self.infer_with(opts)?;
        if !self.checked.contains(&opts) {
            self.counts.check += 1;
            cj_check::check(&compilation.program).map_err(IntoDiagnostics::into_diagnostics)?;
            self.checked.insert(opts);
        }
        Ok(compilation)
    }

    /// Stage 5: compiles (through [`check`](Session::check)) and executes
    /// `main` with integer arguments on a big-stack worker thread.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault
    /// ([`codes::RUNTIME`]).
    pub fn run(&mut self, args: &[i64]) -> CompileResult<Outcome> {
        let values: Vec<Value> = args.iter().map(|&v| Value::Int(v)).collect();
        self.run_values(&values)
    }

    /// Stage 5 with explicit runtime [`Value`]s.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values(&mut self, args: &[Value]) -> CompileResult<Outcome> {
        let run_config = self.opts.run;
        let compilation = self.check()?;
        self.counts.run += 1;
        cj_runtime::run_main_big_stack(&compilation.program, args, run_config)
            .map_err(IntoDiagnostics::into_diagnostics)
    }

    // ---- derived reports -------------------------------------------------

    /// Renders the inferred program in the paper's annotation syntax.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn annotate(&mut self) -> CompileResult<String> {
        let compilation = self.infer()?;
        Ok(cj_infer::pretty::program_to_string(&compilation.program))
    }

    /// Runs the Sec 5 backward flow analysis on the typechecked kernel.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics.
    pub fn downcast_analysis(&mut self) -> CompileResult<cj_downcast::DowncastAnalysis> {
        let kernel = self.typecheck()?;
        Ok(cj_downcast::analyze(&kernel))
    }
}
