//! The staged [`Session`] driver — a single-file facade over
//! [`Workspace`].
//!
//! A session holds one source text and exposes the staged pipeline
//! `parse → typecheck → infer → check → run` with per-stage memoization.
//! All artifact caching, invalidation and inference reuse live in the
//! underlying workspace; `Session` adds the single-source conveniences
//! (one display name, a borrowed [`Emitter`], integer `main` arguments).

use crate::workspace::{PassCounts, Workspace};
use cj_diag::{codes, Diagnostic, Diagnostics, Emitter, SourceMap, Span};
use cj_frontend::ast;
use cj_frontend::KProgram;
use cj_infer::{InferOptions, InferStats, RProgram};
use cj_runtime::{Outcome, RunConfig, Value};
use std::path::Path;
use std::sync::Arc;

/// Result type of every driver stage: success, or a batch of structured
/// diagnostics. No `Box<dyn Error>`, no strings.
pub type CompileResult<T> = Result<T, Diagnostics>;

/// The file name a [`Session`]'s source occupies inside its workspace.
const SESSION_FILE: &str = "<input>";

/// Configuration for a [`Session`] or [`Workspace`].
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// Region-inference options used by the option-less staged methods
    /// ([`Session::infer`], [`Session::check`], [`Session::run`]).
    pub infer: InferOptions,
    /// Execution configuration for [`Session::run`].
    pub run: RunConfig,
}

impl SessionOptions {
    /// Options with the given inference configuration and default runtime
    /// configuration.
    pub fn with_infer(infer: InferOptions) -> SessionOptions {
        SessionOptions {
            infer,
            ..SessionOptions::default()
        }
    }
}

/// The product of region inference: the annotated program plus the
/// statistics the Fig 8/9 harnesses report.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The region-annotated program.
    pub program: RProgram,
    /// Inference statistics.
    pub stats: InferStats,
}

/// A compiler driver holding one source text and every artifact derived
/// from it.
///
/// The pipeline `parse → typecheck → infer → check → run` is exposed as
/// staged methods; each stage memoizes its artifact, so repeated calls —
/// and later stages — reuse earlier work. Inference artifacts are cached
/// *per [`InferOptions`]*, sharing the single parsed and typechecked
/// kernel: ablating the three `SubtypeMode`s runs the front end once, not
/// three times.
///
/// # Examples
///
/// ```
/// use cj_driver::{Session, SessionOptions};
/// use cj_infer::{InferOptions, SubtypeMode};
///
/// let mut session = Session::new(
///     "class Cell { Object item; Object get() { this.item } }",
///     SessionOptions::default(),
/// );
/// for mode in SubtypeMode::ALL {
///     session.check_with(InferOptions::with_mode(mode)).unwrap();
/// }
/// // One front-end pass serves all three modes.
/// assert_eq!(session.pass_counts().typecheck, 1);
/// assert_eq!(session.pass_counts().infer, 3);
/// ```
#[derive(Debug)]
pub struct Session {
    name: String,
    ws: Workspace,
    map: SourceMap,
    /// Set when the source was rejected at ingestion (oversized); surfaced
    /// by the first staged call.
    ingest_error: Option<Diagnostics>,
}

impl Session {
    /// A session over `source` with the given options. The source is
    /// displayed as `<input>` in rendered diagnostics; see
    /// [`with_name`](Session::with_name).
    pub fn new(source: impl Into<String>, opts: SessionOptions) -> Session {
        let source = source.into();
        let map = SourceMap::new(&source);
        let mut ws = Workspace::new(opts);
        let ingest_error = ws.set_source(SESSION_FILE, source).err();
        Session {
            name: SESSION_FILE.to_string(),
            ws,
            map,
            ingest_error,
        }
    }

    /// Reads `path` and builds a session named after it.
    ///
    /// # Errors
    ///
    /// An [`codes::IO`] diagnostic when the file cannot be read.
    pub fn from_file(path: impl AsRef<Path>, opts: SessionOptions) -> CompileResult<Session> {
        let path = path.as_ref();
        let source = std::fs::read_to_string(path).map_err(|e| {
            Diagnostics::from_one(
                Diagnostic::error(format!("cannot read {}: {e}", path.display()), Span::DUMMY)
                    .with_code(codes::IO),
            )
        })?;
        Ok(Session::new(source, opts).with_name(path.display().to_string()))
    }

    /// Sets the display name used in rendered diagnostics.
    pub fn with_name(mut self, name: impl Into<String>) -> Session {
        self.name = name.into();
        self
    }

    /// The source text.
    pub fn source(&self) -> &str {
        self.ws.source(SESSION_FILE).unwrap_or("")
    }

    /// The display name of the source.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The session options.
    pub fn options(&self) -> &SessionOptions {
        self.ws.options()
    }

    /// The line index of the source.
    pub fn source_map(&self) -> &SourceMap {
        &self.map
    }

    /// How many times each stage has actually executed so far.
    pub fn pass_counts(&self) -> PassCounts {
        self.ws.pass_counts()
    }

    /// Attaches an on-disk SCC cache (see
    /// [`Workspace::attach_disk_cache`]); returns the number of entries
    /// warm-loaded.
    pub fn attach_disk_cache(&mut self, cache: std::sync::Arc<cj_persist::SccDiskCache>) -> usize {
        self.ws.attach_disk_cache(cache)
    }

    /// Persists newly solved SCCs to the attached cache (see
    /// [`Workspace::flush_disk_cache`]; a no-op without an attached
    /// cache, O(new entries) — the journal auto-compacts past its byte
    /// budget).
    ///
    /// # Errors
    ///
    /// Cache-file write failures.
    pub fn flush_disk_cache(&self) -> std::io::Result<usize> {
        self.ws.flush_disk_cache()
    }

    /// Persists newly solved SCCs to the attached cache and folds its
    /// journal into the snapshot (see [`Workspace::compact_disk_cache`]);
    /// a no-op without an attached cache.
    ///
    /// # Errors
    ///
    /// Cache-file write failures.
    pub fn compact_disk_cache(&self) -> std::io::Result<usize> {
        self.ws.compact_disk_cache()
    }

    /// An emitter that renders diagnostics against this session's source.
    pub fn emitter(&self) -> Emitter<'_> {
        Emitter::new(&self.name, self.source())
    }

    fn ingest_ok(&self) -> CompileResult<()> {
        match &self.ingest_error {
            Some(diags) => Err(diags.clone()),
            None => Ok(()),
        }
    }

    // ---- staged pipeline -------------------------------------------------

    /// Stage 1: parses the source (cached).
    ///
    /// # Errors
    ///
    /// Lexical ([`codes::LEX`]) and syntactic ([`codes::PARSE`])
    /// diagnostics.
    pub fn parse(&mut self) -> CompileResult<Arc<ast::Program>> {
        self.ingest_ok()?;
        self.ws.merged_ast()
    }

    /// Stage 2: normal-typechecks and lowers to kernel form (cached).
    ///
    /// # Errors
    ///
    /// Parse diagnostics, or type errors ([`codes::TYPECHECK`]).
    pub fn typecheck(&mut self) -> CompileResult<Arc<KProgram>> {
        self.ingest_ok()?;
        self.ws.typecheck()
    }

    /// Stage 3: region inference under the session's options (cached).
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures ([`codes::INFER`]).
    pub fn infer(&mut self) -> CompileResult<Arc<Compilation>> {
        self.infer_with(self.ws.options().infer)
    }

    /// Stage 3, parameterized: region inference under `opts`.
    ///
    /// Artifacts are cached per [`InferOptions`]; every variant shares the
    /// one parsed and typechecked kernel.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures ([`codes::INFER`]).
    pub fn infer_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        self.ingest_ok()?;
        self.ws.infer_with(opts)
    }

    /// Stage 4: region-checks the inferred program (cached), returning it.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations
    /// ([`codes::REGION_CHECK`] — a Theorem 1 breach, i.e. an inference
    /// bug).
    pub fn check(&mut self) -> CompileResult<Arc<Compilation>> {
        self.check_with(self.ws.options().infer)
    }

    /// Stage 4, parameterized: region-checks under `opts`.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations.
    pub fn check_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        self.ingest_ok()?;
        self.ws.check_with(opts)
    }

    /// Lowers the program to VM bytecode under the session's options
    /// (cached; see [`Workspace::compiled_with`]).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn compiled(&mut self) -> CompileResult<Arc<cj_vm::CompiledProgram>> {
        self.compiled_with(self.ws.options().infer)
    }

    /// [`compiled`](Session::compiled) under explicit inference options.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn compiled_with(
        &mut self,
        opts: InferOptions,
    ) -> CompileResult<Arc<cj_vm::CompiledProgram>> {
        self.ingest_ok()?;
        self.ws.compiled_with(opts)
    }

    /// Register-lowers the program for the rvm tier under the session's
    /// options (cached; see [`Workspace::rvm_with`]).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn rvm_compiled(&mut self) -> CompileResult<Arc<cj_rvm::RvmProgram>> {
        self.rvm_compiled_with(self.ws.options().infer)
    }

    /// [`rvm_compiled`](Session::rvm_compiled) under explicit inference
    /// options.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn rvm_compiled_with(
        &mut self,
        opts: InferOptions,
    ) -> CompileResult<Arc<cj_rvm::RvmProgram>> {
        self.ingest_ok()?;
        self.ws.rvm_with(opts)
    }

    /// Stage 5: compiles (through [`check`](Session::check)) and executes
    /// `main` with integer arguments on the configured engine (the
    /// bytecode VM by default).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault
    /// ([`codes::RUNTIME`]).
    pub fn run(&mut self, args: &[i64]) -> CompileResult<Outcome> {
        let values: Vec<Value> = args.iter().map(|&v| Value::Int(v)).collect();
        self.run_values(&values)
    }

    /// Stage 5 with explicit runtime [`Value`]s.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values(&mut self, args: &[Value]) -> CompileResult<Outcome> {
        self.ingest_ok()?;
        self.ws.run_values(args)
    }

    /// Stage 5 under explicit inference options (engine and limits come
    /// from the session's [`RunConfig`]).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values_with(
        &mut self,
        opts: InferOptions,
        args: &[Value],
    ) -> CompileResult<Outcome> {
        self.ingest_ok()?;
        self.ws.run_values_with(opts, args)
    }

    // ---- derived reports -------------------------------------------------

    /// Renders the inferred program in the paper's annotation syntax.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn annotate(&mut self) -> CompileResult<String> {
        self.ingest_ok()?;
        self.ws.annotate()
    }

    /// Runs the Sec 5 backward flow analysis on the typechecked kernel.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics.
    pub fn downcast_analysis(&mut self) -> CompileResult<cj_downcast::DowncastAnalysis> {
        self.ingest_ok()?;
        self.ws.downcast_analysis()
    }
}
