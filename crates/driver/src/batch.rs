//! Batch compilation across worker threads.

use crate::session::{Compilation, CompileResult, Session, SessionOptions};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One input to [`compile_many`]: a display name plus source text.
#[derive(Debug, Clone)]
pub struct SourceInput {
    /// Name used in rendered diagnostics (file path, benchmark name, …).
    pub name: String,
    /// Core-Java source text.
    pub source: String,
}

impl SourceInput {
    /// A named source.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> SourceInput {
        SourceInput {
            name: name.into(),
            source: source.into(),
        }
    }
}

/// Compiles independent sources in parallel on worker threads, each
/// through the full `parse → typecheck → infer → check` pipeline under the
/// same options.
///
/// Results preserve input order; each entry is the compiled artifact or
/// that source's structured diagnostics. Worker count is
/// `min(len, available_parallelism)` — sources are pulled from a shared
/// queue, so stragglers don't serialize the batch.
pub fn compile_many(
    sources: &[SourceInput],
    opts: &SessionOptions,
) -> Vec<CompileResult<Compilation>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(sources.len())
        .max(1);
    if workers <= 1 {
        return sources.iter().map(|s| compile_one(s, opts)).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<CompileResult<Compilation>>>> =
        sources.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(input) = sources.get(i) else { break };
                let outcome = compile_one(input, opts);
                *results[i].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

fn compile_one(input: &SourceInput, opts: &SessionOptions) -> CompileResult<Compilation> {
    let mut session =
        Session::new(input.source.clone(), opts.clone()).with_name(input.name.clone());
    let compilation = session.check()?;
    // Dropping the session releases its cached Arc, so the unwrap is
    // clone-free in the common case.
    drop(session);
    Ok(std::sync::Arc::try_unwrap(compilation).unwrap_or_else(|arc| Compilation::clone(&arc)))
}
