//! # cj-driver — the `Workspace` / `Session` compiler drivers
//!
//! The driver layer over the PLDI 2004 region-inference pipeline, built
//! around the multi-file, demand-driven [`Workspace`]:
//!
//! ```text
//! set_source ─▶ per-file AST ─▶ merged program ─▶ kernel ─▶ per-options
//!               (slot-stable spans)                          compilation
//! ```
//!
//! Every derived artifact is a memoized query with fine-grained
//! invalidation: editing one file re-parses **only that file**, and
//! re-inference replays per-method symbolic results and per-SCC solved
//! abstractions from content-addressed caches — re-running only what the
//! edit dirtied, while producing output bit-identical to a from-scratch
//! compile. The closed constraint-abstraction environment `Q` is
//! queryable ([`Workspace::q`], [`Workspace::precondition`],
//! [`Workspace::invariant`], [`Workspace::entails`]) without re-solving.
//!
//! [`Session`] is the single-source facade (one file named `<input>`),
//! [`Server`] the JSON-lines compile-server loop behind `cjrc serve`,
//! [`Daemon`] the `cjrcd` socket front end multiplexing many such servers
//! over one shared cross-client SCC solve memo, and [`compile_many`]
//! batch-compiles independent sources on worker threads.
//! Errors from every stage are structured
//! [`Diagnostics`](cj_diag::Diagnostics) with spans, stable codes, caret
//! rendering and a JSON form; no stage returns `Box<dyn Error>` or
//! strings.
//!
//! # Examples
//!
//! ```
//! use cj_driver::{Session, SessionOptions};
//!
//! let mut session = Session::new(
//!     "class Pair { Object fst; Object snd;
//!        void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
//!      }",
//!     SessionOptions::default(),
//! );
//! let compilation = session.check().unwrap();      // parse → … → check
//! assert!(compilation.stats.regions_created > 0);
//! let annotated = session.annotate().unwrap();     // reuses all artifacts
//! assert!(annotated.contains("Pair<"));
//! assert_eq!(session.pass_counts().parse, 1);
//! ```
//!
//! Errors render as caret snippets or JSON:
//!
//! ```
//! use cj_driver::{Session, SessionOptions};
//!
//! let mut session = Session::new("class A { Pear p; }", SessionOptions::default());
//! let diagnostics = session.check().unwrap_err();
//! let text = session.emitter().render_all(&diagnostics);
//! assert!(text.contains("error[E0200]"));
//! ```
#![forbid(unsafe_code)]

pub mod batch;
pub mod daemon;
pub mod server;
pub mod session;
pub mod telemetry;
pub mod workspace;

pub use batch::{compile_many, SourceInput};
pub use daemon::{Daemon, DaemonConfig, DaemonStats, DaemonSummary, Frontend};
pub use server::{parse_json, Json, Server};
pub use session::{Compilation, CompileResult, Session, SessionOptions};
pub use telemetry::Telemetry;
pub use workspace::{PassCounts, PolicyOutcome, Workspace, FILE_SPAN_STRIDE};
