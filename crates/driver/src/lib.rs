//! # cj-driver — the `Session` compiler driver
//!
//! The driver-style API over the PLDI 2004 region-inference pipeline:
//! a [`Session`] holds one source text and exposes the staged methods
//!
//! ```text
//! parse → typecheck → infer → check → run
//! ```
//!
//! Every stage memoizes its artifact, and inference artifacts are cached
//! per [`InferOptions`](cj_infer::InferOptions) — so ablating the three
//! region-subtyping modes runs the front end **once**, and tools can
//! inspect intermediate artifacts (AST, kernel, annotated program)
//! without recompiling. Errors from every stage are structured
//! [`Diagnostics`](cj_diag::Diagnostics) with spans, stable codes, caret
//! rendering and a JSON form; no stage returns `Box<dyn Error>` or
//! strings.
//!
//! [`compile_many`] batch-compiles independent sources on worker
//! threads.
//!
//! # Examples
//!
//! ```
//! use cj_driver::{Session, SessionOptions};
//!
//! let mut session = Session::new(
//!     "class Pair { Object fst; Object snd;
//!        void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
//!      }",
//!     SessionOptions::default(),
//! );
//! let compilation = session.check().unwrap();      // parse → … → check
//! assert!(compilation.stats.regions_created > 0);
//! let annotated = session.annotate().unwrap();     // reuses all artifacts
//! assert!(annotated.contains("Pair<"));
//! assert_eq!(session.pass_counts().parse, 1);
//! ```
//!
//! Errors render as caret snippets or JSON:
//!
//! ```
//! use cj_driver::{Session, SessionOptions};
//!
//! let mut session = Session::new("class A { Pear p; }", SessionOptions::default());
//! let diagnostics = session.check().unwrap_err();
//! let text = session.emitter().render_all(&diagnostics);
//! assert!(text.contains("error[E0200]"));
//! ```
#![forbid(unsafe_code)]

pub mod batch;
pub mod session;

pub use batch::{compile_many, SourceInput};
pub use session::{Compilation, CompileResult, PassCounts, Session, SessionOptions};
