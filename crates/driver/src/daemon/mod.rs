//! `cjrcd` — the multi-client compile daemon behind `cjrc daemon`.
//!
//! A [`Daemon`] listens on a TCP or Unix-domain socket and speaks the
//! `cjrc serve` JSON-lines protocol ([`crate::server`]) *per connection*:
//! every client gets its own [`crate::server::Server`] over its own
//! [`crate::workspace::Workspace`] (private files, revisions and pass
//! counters), while all workspaces feed **one shared content-addressed
//! SCC solve memo** ([`cj_regions::incremental::SolveMemo`]). The memo
//! keys are α-invariant and name-independent, so a
//! constraint-abstraction SCC solved for one client is a hit for every
//! other client compiling an equivalent fragment — cross-client reuse
//! the `stats` command reports as `shared_memo.shared_hits` (and
//! per-compilation as `sccs_shared_hits`).
//!
//! # Front ends
//!
//! Two interchangeable connection front ends feed the same worker pool
//! ([`DaemonConfig::frontend`]):
//!
//! - [`Frontend::Event`] (default): **one event thread** multiplexes
//!   every connection through a readiness-driven reactor
//!   ([`cj_net::EventLoop`] — epoll on Linux, `poll(2)` elsewhere).
//!   Sockets are nonblocking; request lines are framed incrementally as
//!   bytes arrive and handed to the worker pool, and responses flow back
//!   over a wakeup pipe with write-side backpressure. Thousands of
//!   mostly-idle editor connections cost one thread plus per-connection
//!   buffers.
//! - [`Frontend::Threads`]: the classic **thread-per-connection** model —
//!   each accepted connection occupies one pool worker for its lifetime,
//!   reading with a short timeout so the stop flag and idle clock stay
//!   observed. Simple and fine under a handful of busy clients; idle
//!   connections hold workers hostage.
//!
//! Protocol behaviour — request/response bytes, capacity rejection, idle
//! eviction, daemon-scope shutdown with drain-and-join — is identical
//! across front ends; both share one bounded line framer
//! ([`cj_net::LineFramer`]) so framing edge cases cannot drift apart.
//!
//! # Production hardening
//!
//! - **Persistence** ([`DaemonConfig::cache_dir`]): the shared memo is
//!   warm-loaded from an on-disk [`SccDiskCache`] at bind, flushed by a
//!   background thread while the daemon runs, and compacted at shutdown —
//!   so a restarted daemon serves `sccs_disk_hits` instead of re-solving
//!   the world. A corrupt/version-bumped cache cold-starts; output is
//!   bit-identical either way.
//! - **Backpressure** ([`DaemonConfig::max_clients`]): connections beyond
//!   the in-flight bound receive a structured
//!   `{"ok":false,...,"code":"capacity"}` line and are closed, instead of
//!   hanging in the accept queue.
//! - **Idle eviction** ([`DaemonConfig::idle_timeout`]): a client that
//!   completes no request within the bound is told
//!   (`{"ok":false,...,"code":"idle"}`) and disconnected, so a stalled or
//!   half-open peer cannot pin a pool worker (threads) or leak a
//!   connection slot (event).
//!
//! # Connection lifecycle
//!
//! 1. connect (TCP `host:port` or Unix socket path);
//! 2. send one JSON request per line, read one JSON response per line —
//!    exactly the `serve` protocol (`open`/`edit`/`close`/`check`/
//!    `annotate`/`run`/`query`/`stats`/`shutdown`);
//! 3. `{"cmd":"shutdown"}` (or EOF) ends the connection; the daemon keeps
//!    running;
//! 4. `{"cmd":"shutdown","scope":"daemon"}` ends the connection **and**
//!    stops the daemon: the accept loop exits, in-flight requests are
//!    drained, workers join, and [`Daemon::run`] returns.
//!
//! # Example (in-process)
//!
//! ```no_run
//! use cj_driver::{Daemon, DaemonConfig};
//!
//! let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).unwrap();
//! println!("listening on {}", daemon.describe_addr());
//! let summary = daemon.run().unwrap(); // until a daemon-scope shutdown
//! println!("served {} clients", summary.clients_served);
//! ```

mod event;
mod threads;

use crate::server::parse_json;
use crate::session::SessionOptions;
use cj_persist::SccDiskCache;
use cj_regions::incremental::SolveMemo;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which connection front end a daemon runs. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// One readiness-driven event thread multiplexing every connection
    /// (the default).
    #[default]
    Event,
    /// Thread-per-connection: each client occupies a pool worker for its
    /// whole lifetime.
    Threads,
}

impl Frontend {
    /// The CLI / stats-report spelling (`"event"` / `"threads"`).
    pub fn name(self) -> &'static str {
        match self {
            Frontend::Event => "event",
            Frontend::Threads => "threads",
        }
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Frontend, String> {
        match s {
            "event" => Ok(Frontend::Event),
            "threads" => Ok(Frontend::Threads),
            other => Err(format!(
                "unknown front end `{other}` (expected `event` or `threads`)"
            )),
        }
    }
}

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Default session (inference + runtime) options for every client;
    /// requests may still override `mode`/`downcast` per call.
    pub opts: SessionOptions,
    /// The connection front end (event-loop or thread-per-connection).
    pub frontend: Frontend,
    /// Worker threads executing requests. Under [`Frontend::Threads`]
    /// this is also the number of clients served concurrently (further
    /// connections queue); under [`Frontend::Event`] connections are not
    /// tied to workers and only CPU-bound request handling queues here.
    pub workers: usize,
    /// Worker threads each compilation's per-SCC solve fans out over
    /// (1 = sequential; output is identical either way).
    pub solve_threads: usize,
    /// On-disk SCC cache directory: loaded into the shared memo at bind,
    /// flushed periodically and compacted at shutdown. `None` = no
    /// persistence.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Backpressure bound: with more than this many connections in
    /// flight, further ones are rejected immediately with a structured
    /// JSON error instead of hanging in the accept queue. 0 = unbounded.
    pub max_clients: usize,
    /// Per-connection idle bound: a client that completes no request for
    /// this long is disconnected (with a structured JSON error).
    /// [`Duration::ZERO`] disables eviction.
    pub idle_timeout: Duration,
    /// How often the background thread flushes newly solved SCCs to the
    /// cache (only with `cache_dir`; shutdown always flushes).
    pub flush_interval: Duration,
    /// TCP address of the HTTP metrics scrape endpoint (`GET /metrics`,
    /// `GET /metrics.json`), e.g. `"127.0.0.1:9464"`. `None` = no
    /// endpoint. Served by its own [`cj_net::EventLoop`] reactor thread,
    /// independent of the protocol front end.
    pub metrics_addr: Option<String>,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            opts: SessionOptions::default(),
            frontend: Frontend::default(),
            workers: 4,
            solve_threads: 1,
            cache_dir: None,
            max_clients: 0,
            idle_timeout: Duration::from_secs(600),
            flush_interval: Duration::from_secs(30),
            metrics_addr: None,
        }
    }
}

/// Live serving counters shared between the front end and every
/// connection's `Server`, so the `stats` command reports the daemon's
/// serving health alongside compilation statistics.
#[derive(Debug)]
pub struct DaemonStats {
    frontend: Frontend,
    clients_served: AtomicU64,
    clients_rejected: AtomicU64,
    connections_current: AtomicU64,
    connections_peak: AtomicU64,
}

impl DaemonStats {
    fn new(frontend: Frontend) -> DaemonStats {
        DaemonStats {
            frontend,
            clients_served: AtomicU64::new(0),
            clients_rejected: AtomicU64::new(0),
            connections_current: AtomicU64::new(0),
            connections_peak: AtomicU64::new(0),
        }
    }

    fn record_accept(&self) {
        self.clients_served.fetch_add(1, Ordering::Relaxed);
        let now = self.connections_current.fetch_add(1, Ordering::SeqCst) + 1;
        self.connections_peak.fetch_max(now, Ordering::SeqCst);
    }

    fn record_reject(&self) {
        self.clients_rejected.fetch_add(1, Ordering::Relaxed);
    }

    fn record_close(&self) {
        self.connections_current.fetch_sub(1, Ordering::SeqCst);
    }

    /// The front end serving this daemon.
    pub fn frontend(&self) -> Frontend {
        self.frontend
    }

    /// Connections accepted (and handed to the protocol layer) so far.
    pub fn clients_served(&self) -> u64 {
        self.clients_served.load(Ordering::Relaxed)
    }

    /// Connections turned away by the `max_clients` bound so far.
    pub fn clients_rejected(&self) -> u64 {
        self.clients_rejected.load(Ordering::Relaxed)
    }

    /// Connections open right now.
    pub fn connections_current(&self) -> u64 {
        self.connections_current.load(Ordering::SeqCst)
    }

    /// The concurrent-connection high-water mark.
    pub fn connections_peak(&self) -> u64 {
        self.connections_peak.load(Ordering::SeqCst)
    }

    /// The `stats` response's `"daemon"` object.
    pub(crate) fn to_json(&self) -> String {
        ServingReport {
            frontend: self.frontend,
            clients_served: self.clients_served(),
            clients_rejected: self.clients_rejected(),
            connections_current: Some(self.connections_current()),
            connections_peak: self.connections_peak(),
            cache: None,
        }
        .to_json()
    }
}

/// The one serializer behind every daemon serving-counter report: the
/// `stats` response's `"daemon"` object (live, with
/// `connections_current`) and the `cjrc daemon --json` exit summary
/// (final, with the cache tallies). One code path keeps the shared field
/// names from drifting apart.
#[derive(Debug, Clone, Copy)]
struct ServingReport {
    frontend: Frontend,
    clients_served: u64,
    clients_rejected: u64,
    connections_current: Option<u64>,
    connections_peak: u64,
    cache: Option<(usize, usize)>,
}

impl ServingReport {
    fn to_json(self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "{{\"frontend\":\"{}\",\"clients_served\":{},\"clients_rejected\":{}",
            self.frontend.name(),
            self.clients_served,
            self.clients_rejected
        );
        if let Some(current) = self.connections_current {
            let _ = write!(out, ",\"connections_current\":{current}");
        }
        let _ = write!(out, ",\"connections_peak\":{}", self.connections_peak);
        if let Some((loaded, persisted)) = self.cache {
            let _ = write!(
                out,
                ",\"cache_entries_loaded\":{loaded},\"cache_entries_persisted\":{persisted}"
            );
        }
        out.push('}');
        out
    }
}

/// What a finished daemon reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// The front end that served.
    pub frontend: Frontend,
    /// Connections accepted over the daemon's lifetime.
    pub clients_served: u64,
    /// Connections rejected by the `max_clients` backpressure bound.
    pub clients_rejected: u64,
    /// The concurrent-connection high-water mark.
    pub connections_peak: u64,
    /// Solve-memo entries warm-loaded from the on-disk cache at bind.
    pub cache_entries_loaded: usize,
    /// Entries retained on disk by the shutdown compaction (0 without a
    /// cache).
    pub cache_entries_persisted: usize,
}

impl DaemonSummary {
    /// The `cjrc daemon --json` exit-summary line (same serializer as the
    /// `stats` response's `"daemon"` object).
    pub fn to_json(&self) -> String {
        ServingReport {
            frontend: self.frontend,
            clients_served: self.clients_served,
            clients_rejected: self.clients_rejected,
            connections_current: None,
            connections_peak: self.connections_peak,
            cache: Some((self.cache_entries_loaded, self.cache_entries_persisted)),
        }
        .to_json()
    }
}

pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(false),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

/// Accept errors that should be retried rather than kill the daemon.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
    )
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The socket front end multiplexing many `serve`-protocol clients over
/// one shared solve memo. See the module docs.
pub struct Daemon {
    listener: Listener,
    config: DaemonConfig,
    memo: Arc<SolveMemo>,
    cache: Option<Arc<SccDiskCache>>,
    cache_entries_loaded: usize,
    stop: Arc<AtomicBool>,
    stats: Arc<DaemonStats>,
    telemetry: Arc<crate::telemetry::Telemetry>,
    metrics_listener: Option<TcpListener>,
}

impl Daemon {
    /// Binds a TCP daemon (use port `0` to let the OS pick; read the
    /// result back with [`local_addr`](Daemon::local_addr)).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind_tcp(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        Daemon::over(Listener::Tcp(listener), config)
    }

    /// Binds a Unix-domain-socket daemon at `path` (removed first if a
    /// stale socket file is present).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, config: DaemonConfig) -> std::io::Result<Daemon> {
        use std::os::unix::fs::FileTypeExt as _;
        if let Ok(meta) = std::fs::symlink_metadata(path) {
            if !meta.file_type().is_socket() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("refusing to replace non-socket file `{}`", path.display()),
                ));
            }
            if UnixStream::connect(path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on `{}`", path.display()),
                ));
            }
            // A socket nothing answers on: stale leftover, safe to reclaim.
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Daemon::over(Listener::Unix(listener), config)
    }

    fn over(listener: Listener, config: DaemonConfig) -> std::io::Result<Daemon> {
        let memo = Arc::new(SolveMemo::new());
        // Load the cache at bind, so even the first connection compiles
        // warm. A corrupt or version-mismatched cache loads 0 entries; an
        // *unopenable* cache directory is a real error the operator must
        // see (the flag would otherwise silently do nothing).
        let mut cache_entries_loaded = 0;
        let cache = match &config.cache_dir {
            Some(dir) => {
                let cache = SccDiskCache::open(dir)?;
                cache_entries_loaded = cache.load_into(&memo);
                Some(Arc::new(cache))
            }
            None => None,
        };
        let stats = Arc::new(DaemonStats::new(config.frontend));
        // Bind the scrape endpoint eagerly so `--metrics-addr` failures
        // surface at startup, and port 0 can be read back before `run`.
        let metrics_listener = match &config.metrics_addr {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        Ok(Daemon {
            listener,
            config,
            memo,
            cache,
            cache_entries_loaded,
            stop: Arc::new(AtomicBool::new(false)),
            stats,
            telemetry: Arc::new(crate::telemetry::Telemetry::new()),
            metrics_listener,
        })
    }

    /// The bound TCP address (`None` for a Unix-socket daemon).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// A printable form of the listening address (`tcp://…` /  `unix://…`).
    pub fn describe_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp://{a}"),
                Err(_) => "tcp://<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => match a.as_pathname() {
                    Some(p) => format!("unix://{}", p.display()),
                    None => "unix://<unnamed>".to_string(),
                },
                Err(_) => "unix://<unknown>".to_string(),
            },
        }
    }

    /// The cross-client solve memo (shared with every connection).
    pub fn shared_memo(&self) -> Arc<SolveMemo> {
        Arc::clone(&self.memo)
    }

    /// The on-disk cache (when configured via
    /// [`DaemonConfig::cache_dir`]).
    pub fn disk_cache(&self) -> Option<Arc<SccDiskCache>> {
        self.cache.clone()
    }

    /// How many solved-SCC entries the bind-time cache load installed
    /// into the shared memo (0 without a cache, or for a cold one).
    pub fn cache_entries_loaded(&self) -> usize {
        self.cache_entries_loaded
    }

    /// Whether the configured cache directory's writer lease is held by
    /// another live process (this daemon then runs the cache read-only:
    /// warm loads work, nothing new is persisted). Always `false`
    /// without a cache.
    pub fn cache_read_only(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| c.is_read_only())
    }

    /// A handle that stops the accept loop when set (the in-band
    /// alternative is a `{"cmd":"shutdown","scope":"daemon"}` request).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// The live serving counters (front end, served/rejected, current and
    /// peak connections) this daemon reports under `stats.daemon`.
    pub fn stats_handle(&self) -> Arc<DaemonStats> {
        Arc::clone(&self.stats)
    }

    /// The daemon-wide telemetry hub every connection's server records
    /// into (request latencies, pass totals, queue waits).
    pub fn telemetry_handle(&self) -> Arc<crate::telemetry::Telemetry> {
        Arc::clone(&self.telemetry)
    }

    /// The bound address of the HTTP metrics endpoint (`None` unless
    /// [`DaemonConfig::metrics_addr`] was set).
    pub fn metrics_local_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// Serves connections until a daemon-scope shutdown arrives (or the
    /// [`stop_handle`](Daemon::stop_handle) is set), then drains
    /// in-flight work, joins every worker, compacts the on-disk cache
    /// (when configured) and returns.
    ///
    /// # Errors
    ///
    /// Fatal listener/poller errors; individual connection I/O errors
    /// only terminate that connection, and cache flush errors are
    /// reported once at shutdown.
    pub fn run(mut self) -> std::io::Result<DaemonSummary> {
        // The HTTP scrape endpoint runs on its own reactor thread for the
        // daemon's whole lifetime, whichever protocol front end serves.
        let metrics_thread = match self.metrics_listener.take() {
            Some(listener) => Some(crate::telemetry::spawn_metrics_endpoint(
                listener,
                Arc::clone(&self.telemetry),
                Some(Arc::clone(&self.memo)),
                Some(Arc::clone(&self.stats)),
                Arc::clone(&self.stop),
            )?),
            None => None,
        };
        // The periodic cache flush: newly solved SCCs reach disk while
        // the daemon runs, so even a crash (no compaction) loses at most
        // one interval of work. Front-end independent.
        let flusher = self.cache.as_ref().map(|cache| {
            let cache = Arc::clone(cache);
            let memo = Arc::clone(&self.memo);
            let stop = Arc::clone(&self.stop);
            let interval = self.config.flush_interval.max(Duration::from_millis(50));
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                    if last.elapsed() >= interval {
                        let _ = cache.flush(&memo);
                        last = Instant::now();
                    }
                }
            })
        });
        let fatal = match self.config.frontend {
            Frontend::Threads => threads::serve(&self),
            Frontend::Event => event::serve(&self),
        }
        .err();
        // Unblock the flusher's and metrics endpoint's poll loops even on
        // a fatal listener error.
        self.stop.store(true, Ordering::SeqCst);
        if let Some(flusher) = flusher {
            let _ = flusher.join();
        }
        if let Some(metrics_thread) = metrics_thread {
            let _ = metrics_thread.join();
        }
        // Final persistence pass: everything solved over the daemon's
        // lifetime reaches the snapshot, bounded by the cache's GC budget.
        let mut cache_entries_persisted = 0;
        let mut cache_error = None;
        if let Some(cache) = &self.cache {
            // Compaction alone persists everything a flush would: the
            // snapshot is rewritten as memo ∪ disk.
            match cache.compact(&self.memo) {
                Ok(kept) => cache_entries_persisted = kept,
                Err(e) => cache_error = Some(e),
            }
        }
        match fatal.or(cache_error) {
            Some(e) => Err(e),
            None => Ok(DaemonSummary {
                frontend: self.config.frontend,
                clients_served: self.stats.clients_served(),
                clients_rejected: self.stats.clients_rejected(),
                connections_peak: self.stats.connections_peak(),
                cache_entries_loaded: self.cache_entries_loaded,
                cache_entries_persisted,
            }),
        }
    }
}

/// The backpressure reject line — the same `{"ok":false,...}` shape every
/// protocol error uses, plus a machine-readable `"code"` so clients can
/// distinguish "retry later" from a malformed request.
fn capacity_reject_line(limit: usize) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"daemon at capacity ({limit} active \
         client{}); retry later\",\"code\":\"capacity\"}}",
        if limit == 1 { "" } else { "s" }
    )
}

/// The idle-eviction goodbye line.
fn idle_goodbye_line(idle_timeout: Duration) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"idle timeout: no request \
         completed in {}s\",\"code\":\"idle\"}}",
        idle_timeout.as_secs_f64()
    )
}

/// Whether a request line asks for a daemon-scope shutdown.
fn is_daemon_shutdown(line: &str) -> bool {
    parse_json(line).is_ok_and(|req| {
        req.get_str("cmd") == Some("shutdown") && req.get_str("scope") == Some("daemon")
    })
}

/// Largest accepted request line. Workspace files are capped at 1 MiB,
/// so even a fully escaped `open` fits comfortably; anything bigger is a
/// protocol violation (or an attack) and must not grow worker memory.
pub(crate) const MAX_REQUEST_BYTES: usize = 16 << 20;

/// Decodes a request line for the protocol layer: move in the
/// (overwhelmingly common) valid-UTF-8 case, lossy copy only for a
/// malformed client.
fn decode_request(line: Vec<u8>) -> String {
    match String::from_utf8(line) {
        Ok(s) => s,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    }
}
